//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Implements the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, range strategies, tuple strategies, `prop_map`, and
//! `prop::collection::vec`. Unlike real proptest there is **no input
//! shrinking** — a failing case reports the case number and message and
//! the test fails immediately. Case generation is deterministic: the
//! RNG is seeded from a hash of the test name, so failures reproduce
//! exactly on re-run. Vendored because the build environment has no
//! crates.io access.

#![warn(missing_docs)]

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a property.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold; carries the assertion message.
        Fail(String),
        /// The generated input was rejected (counted, not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// FNV-1a hash of the test name: the deterministic per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Admissible element counts for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length falls in `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Fail the property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ..) { body }` items. The body may use `prop_assert!` and
/// `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                    $crate::test_runner::seed_for(stringify!($name)),
                );
            for case in 0..cfg.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(e) => {
                        panic!(
                            "proptest property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, cfg.cases, e,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u32) -> Result<(), TestCaseError> {
        prop_assert!(x < u32::MAX, "boundless");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 2usize..=8, b in 1u64..100) {
            prop_assert!((2..=8).contains(&a));
            prop_assert!((1..100).contains(&b));
        }

        #[test]
        fn tuples_and_maps_compose(v in prop::collection::vec((0u8..10, any::<u16>()), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (small, _any) in &v {
                prop_assert!(*small < 10);
            }
        }

        #[test]
        fn prop_map_transforms(x in (0usize..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            helper(x as u32)?;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = 0usize..1000;
        let mut r1 = StdRng::seed_from_u64(crate::test_runner::seed_for("x"));
        let mut r2 = StdRng::seed_from_u64(crate::test_runner::seed_for("x"));
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
