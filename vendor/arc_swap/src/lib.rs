//! Offline shim for the subset of `arc-swap` this workspace uses.
//!
//! [`ArcSwap<T>`] is an atomic cell holding an `Arc<T>`: readers
//! ([`ArcSwap::load_full`]) obtain their own `Arc` clone without taking a
//! lock, while a writer ([`ArcSwap::store`]) publishes a replacement
//! atomically. Vendored because the build environment has no crates.io
//! access; the algorithm is a small slot-based design rather than the
//! upstream crate's hazard-pointer machinery, but the exposed API and the
//! guarantees the workspace relies on (wait-free-in-practice reads,
//! atomic publication, no torn values) match.
//!
//! # Algorithm
//!
//! The cell owns `SLOTS` slots, each a reference count plus an
//! `Option<Arc<T>>`, and a `current` index naming the live slot.
//!
//! * A **reader** loads `current` (Acquire), pins that slot by
//!   incrementing its count (AcqRel), then re-checks that the slot is not
//!   under writer ownership and is still `current`. On success it clones
//!   the `Arc` out and unpins (Release). On failure it unpins and
//!   retries — failure requires a concurrent `store`, so reads are
//!   lock-free and, absent writers, complete in one pass.
//! * A **writer** picks any slot other than `current` whose count it can
//!   CAS from 0 to a `WRITER` mark (AcqRel). Owning the mark, it drops
//!   the slot's previous occupant, installs the new `Arc`, clears the
//!   mark (Release), and finally publishes `current = slot` (Release).
//!
//! # Why this is sound
//!
//! The slot value is only mutated while the `WRITER` bit is held, and the
//! CAS acquires it only when the count is exactly 0 — no reader pin, no
//! other writer. A reader that pins *after* the CAS observes the `WRITER`
//! bit in its own RMW result and bails without touching the value, so the
//! writer's `&mut`-equivalent access is exclusive. Publication order is
//! the classic message-passing pair: the writer's Release store to
//! `current` happens-after its value install, and a reader's Acquire load
//! of `current` therefore sees the fully-installed `Arc`. An old
//! generation's `Arc` is dropped only when its slot is recycled (counts
//! back at 0), so at most `SLOTS − 1` superseded generations linger — the
//! lazy-reclamation analogue of upstream's deferred hazard reclamation.
//!
//! With one writer at a time (the workspace's use), `store` succeeds on
//! its first or second slot probe; concurrent writers serialize on the
//! CAS and the last `current` store wins, same as upstream.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SLOTS: usize = 4;
const WRITER: usize = 1 << (usize::BITS - 1);

struct Slot<T> {
    refs: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

/// An atomic cell holding an `Arc<T>`, supporting lock-free reads
/// concurrent with atomic replacement.
pub struct ArcSwap<T> {
    current: AtomicUsize,
    slots: [Slot<T>; SLOTS],
}

// Readers on any thread clone `Arc<T>` out and writers move `Arc<T>` in,
// so the usual `Arc` bounds apply. The interior `UnsafeCell` is only
// touched under the WRITER/pin protocol documented above.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Create a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        let mut first = Some(value);
        let slots = std::array::from_fn(|_| Slot {
            refs: AtomicUsize::new(0),
            value: UnsafeCell::new(first.take()),
        });
        ArcSwap { current: AtomicUsize::new(0), slots }
    }

    /// Create a cell from an owned value (`Arc::new` included).
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Read the current value, cloning the `Arc` out. Lock-free: retries
    /// only when a concurrent [`ArcSwap::store`] moves `current` or marks
    /// the slot mid-read.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let cur = self.current.load(Ordering::Acquire);
            let slot = &self.slots[cur];
            // Pin the slot. The returned previous count tells us whether a
            // writer owned it at the instant of the RMW.
            let prev = slot.refs.fetch_add(1, Ordering::AcqRel);
            if prev & WRITER == 0 && self.current.load(Ordering::Acquire) == cur {
                // Safe: the pin (count > 0) blocks any writer CAS, and the
                // slot held a value from the moment it became `current`.
                let arc = unsafe { (*slot.value.get()).as_ref().expect("current slot is occupied") }
                    .clone();
                slot.refs.fetch_sub(1, Ordering::Release);
                return arc;
            }
            slot.refs.fetch_sub(1, Ordering::Release);
            std::hint::spin_loop();
        }
    }

    /// Atomically publish `value` as the new current value. Readers in
    /// flight keep the generation they pinned; readers arriving after the
    /// final publication see `value`.
    pub fn store(&self, value: Arc<T>) {
        let mut value = Some(value);
        loop {
            let cur = self.current.load(Ordering::Relaxed);
            for (s, slot) in self.slots.iter().enumerate() {
                if s == cur {
                    continue;
                }
                if slot
                    .refs
                    .compare_exchange(0, WRITER, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    // Exclusive: count was 0 (no pins) and is now marked,
                    // so no reader clones from this slot until we clear.
                    unsafe {
                        *slot.value.get() = value.take();
                    }
                    slot.refs.fetch_and(!WRITER, Ordering::Release);
                    self.current.store(s, Ordering::Release);
                    return;
                }
            }
            std::hint::spin_loop();
        }
    }
}

impl<T> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        for g in 3..40u64 {
            cell.store(Arc::new(g));
            assert_eq!(*cell.load_full(), g);
        }
    }

    #[test]
    fn old_generations_survive_while_held() {
        let cell = ArcSwap::from_pointee(10u64);
        let old = cell.load_full();
        cell.store(Arc::new(20));
        cell.store(Arc::new(30));
        assert_eq!(*old, 10, "a pinned generation outlives its replacement");
        assert_eq!(*cell.load_full(), 30);
    }

    #[test]
    fn concurrent_readers_never_tear() {
        // Each generation is (g, g*3): a torn or half-published read
        // would break the invariant.
        let cell = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let (cell, stop) = (Arc::clone(&cell), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    loop {
                        let v = cell.load_full();
                        assert_eq!(v.1, v.0 * 3, "torn read: {v:?}");
                        reads += 1;
                        // Keep reading while stores are in flight, but
                        // never finish with fewer than 100 reads even if
                        // the writer outruns thread start-up.
                        if reads >= 100 && stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    reads
                })
            })
            .collect();
        for g in 1..=2000u64 {
            cell.store(Arc::new((g, g * 3)));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0);
        let last = cell.load_full();
        assert_eq!(*last, (2000, 6000));
    }

    #[test]
    fn concurrent_writers_last_publication_wins() {
        let cell = Arc::new(ArcSwap::from_pointee(0u64));
        let writers: Vec<_> = (1..=3u64)
            .map(|w| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        cell.store(Arc::new(w * 10_000 + i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let v = *cell.load_full();
        assert!((1..=3).contains(&(v / 10_000)) && v % 10_000 == 499);
    }
}
