//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Provides `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size`), `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple adaptive loop: one warm-up call sizes the batch, then the
//! batch is timed and mean/min/max per-iteration times are printed.
//! Vendored because the build environment has no crates.io access.
//!
//! Environment knobs:
//! * `CRITERION_MEASURE_MS` — target measurement window per benchmark
//!   (default 300 ms; set small in CI smoke runs).
//! * Passing a CLI argument filters benchmarks by substring, matching
//!   `cargo bench -- <filter>` behavior.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects per-iteration timing inside [`Bencher::iter`].
pub struct Bencher {
    target: Duration,
    /// Mean seconds per iteration, filled by `iter`.
    mean: f64,
    min: f64,
    max: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up call doubles as the batch sizer.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_secs_f64() / once.as_secs_f64())
            .clamp(1.0, 100_000.0) as u64;
        let (mut min, mut max, mut total) = (f64::INFINITY, 0.0f64, 0.0f64);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            let dt = t.elapsed().as_secs_f64();
            min = min.min(dt);
            max = max.max(dt);
            total += dt;
        }
        self.mean = total / iters as f64;
        self.min = min;
        self.max = max;
        self.iters = iters;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn measure_target() -> Duration {
    std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(300), Duration::from_millis)
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg acts as a name filter, like
        // `cargo bench -- mttkrp`. Flags (`--bench`, `--exact`, …) that
        // cargo forwards are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter, target: measure_target() }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Self {
        if let Some(flt) = &self.filter {
            if !id.contains(flt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            target: self.target,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{id:<44} time: [{} {} {}]  ({} iters)",
            fmt_time(b.min),
            fmt_time(b.mean),
            fmt_time(b.max),
            b.iters
        );
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive timer ignores
    /// the explicit sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink the measurement window for expensive benchmarks.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.target = d;
        self
    }

    /// Run a benchmark within the group (`group/name` in the report).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.parent.bench_function(&full, f);
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Define a function running a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` invoking one or more benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { filter: None, target: Duration::from_millis(1) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion { filter: Some("nomatch".into()), target: Duration::from_millis(1) };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("x", |b| b.iter(|| ran = true));
        g.finish();
        assert!(!ran, "filter must skip non-matching benchmarks");
    }
}
