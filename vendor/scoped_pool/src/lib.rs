//! Offline shim for the subset of `scoped_pool` this workspace uses.
//!
//! A [`Pool`] owns a fixed set of worker threads that outlive any single
//! batch of work; [`Pool::scoped`] opens a [`Scope`] through which tasks
//! borrowing from the caller's stack can be submitted. `scoped` does not
//! return until every task submitted through its scope has finished, which
//! is what makes the stack borrows sound. Vendored because the build
//! environment has no crates.io access; only `new`/`threads`/`scoped`/
//! `Scope::execute` from the real crate's surface are provided.
//!
//! Panic behavior: a panicking task does not kill its worker thread; the
//! panic is caught, the scope is flagged, and `scoped` re-panics after all
//! tasks of the scope have drained.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work. Jobs are `'static` from the queue's point
/// of view; [`Scope::execute`] erases the scope lifetime after arranging
/// (via the wait in [`Pool::scoped`]) that no job outlives the borrows it
/// captures.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (pending jobs, shutting down)
    ready: Condvar,
}

/// A fixed-size pool of reusable worker threads.
pub struct Pool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.workers.len()).finish()
    }
}

impl Pool {
    /// Spawn a pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Pool {
        assert!(threads > 0, "pool needs at least one thread");
        let queue = Arc::new(Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("scoped-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Open a scope: tasks submitted via [`Scope::execute`] may borrow
    /// anything that outlives the `scoped` call. Returns `f`'s result
    /// after **all** submitted tasks have completed; re-panics if any
    /// task panicked.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                drained: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _marker: PhantomData,
        };
        // The guard waits for the scope to drain even if `f` unwinds —
        // without it a panic in `f` would free borrowed stack slots while
        // workers still hold them.
        struct Drain<'a>(&'a ScopeState);
        impl Drop for Drain<'_> {
            fn drop(&mut self) {
                self.0.wait_drained();
            }
        }
        let out = {
            let _guard = Drain(&scope.state);
            f(&scope)
        };
        if scope.state.panicked.load(Ordering::SeqCst) {
            panic!("scoped_pool: a scoped task panicked");
        }
        out
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.queue.jobs.lock().unwrap();
            q.1 = true;
        }
        self.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut q = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = q.0.pop_front() {
                    break job;
                }
                if q.1 {
                    return; // shutting down and no work left
                }
                q = queue.ready.wait(q).unwrap();
            }
        };
        job();
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn wait_drained(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.drained.wait(pending).unwrap();
        }
    }
}

/// Handle for submitting borrowing tasks to a [`Pool`]; see
/// [`Pool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    // Invariant over 'scope: a scope must not be coerced to a shorter
    // lifetime, or tasks could capture borrows that end too early.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submit a task. It may run on any worker, at any time before the
    /// enclosing [`Pool::scoped`] returns.
    pub fn execute<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.drained.notify_all();
            }
        });
        // SAFETY: `Pool::scoped` blocks (via the `Drain` guard) until
        // `pending` reaches zero, i.e. until this closure has run to
        // completion, so nothing borrowed for 'scope is dropped while the
        // erased job can still touch it.
        let wrapped: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped)
        };
        {
            let mut q = self.pool.queue.jobs.lock().unwrap();
            q.0.push_back(wrapped);
        }
        self.pool.queue.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..100 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_stack_data() {
        let pool = Pool::new(3);
        let mut slots = [0usize; 16];
        pool.scoped(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.execute(move || *slot = i * i);
            }
        });
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = Pool::new(2);
        for round in 0..5 {
            let total = AtomicUsize::new(0);
            pool.scoped(|scope| {
                for _ in 0..10 {
                    scope.execute(|| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), 10, "round {round}");
        }
    }

    #[test]
    fn scoped_returns_closure_result() {
        let pool = Pool::new(2);
        let out = pool.scoped(|_| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_propagates_after_drain() {
        let pool = Pool::new(2);
        let done = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("boom"));
                for _ in 0..8 {
                    scope.execute(|| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(res.is_err(), "scope must re-panic");
        // All non-panicking siblings still ran — and the pool survives.
        assert_eq!(done.load(Ordering::SeqCst), 8);
        let ok = AtomicUsize::new(0);
        pool.scoped(|scope| {
            scope.execute(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }
}
