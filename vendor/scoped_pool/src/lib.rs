//! Offline shim for the subset of `scoped_pool` this workspace uses.
//!
//! A [`Pool`] owns a fixed set of worker threads that outlive any single
//! batch of work; [`Pool::scoped`] opens a [`Scope`] through which tasks
//! borrowing from the caller's stack can be submitted. `scoped` does not
//! return until every task submitted through its scope has finished, which
//! is what makes the stack borrows sound. Vendored because the build
//! environment has no crates.io access; only `new`/`threads`/`scoped`/
//! `Scope::execute` from the real crate's surface are provided.
//!
//! Panic behavior: a panicking task does not kill its worker thread; the
//! panic is caught, the scope is flagged, and `scoped` re-panics after all
//! tasks of the scope have drained.
//!
//! Beyond the real crate's surface, this shim adds [`Pool::run_indexed`]:
//! an allocation-free broadcast that runs one shared closure over an index
//! range. Where `scoped` boxes one `Job` per task, `run_indexed` publishes
//! a single borrowed closure through pool-resident state and lets workers
//! claim indices with an atomic counter — zero heap traffic per dispatch,
//! which is what keeps the solver's threaded steady state at 0 allocations
//! per iteration (see `tests/alloc_budget.rs` at the workspace root).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work. Jobs are `'static` from the queue's point
/// of view; [`Scope::execute`] erases the scope lifetime after arranging
/// (via the wait in [`Pool::scoped`]) that no job outlives the borrows it
/// captures.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Wide pointer to the caller's broadcast closure with its borrow
/// lifetime erased. Sound for the same reason `Scope::execute`'s
/// transmute is: [`Pool::run_indexed`] blocks until every index has run,
/// so the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-call safe from any thread) and
// `run_indexed` keeps it alive until the broadcast completes, so moving
// the pointer between threads is sound.
unsafe impl Send for TaskPtr {}

/// An in-flight [`Pool::run_indexed`] broadcast: the shared closure plus
/// the index range workers claim from `Queue::bc_next`.
#[derive(Clone, Copy)]
struct Broadcast {
    task: TaskPtr,
    count: usize,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
    /// Current broadcast, if any. At most one per pool; the publishing
    /// caller removes is-some before `run_indexed` returns (the last
    /// finishing worker clears it), so `Some` here always means live.
    bc: Option<Broadcast>,
}

struct Queue {
    jobs: Mutex<State>,
    ready: Condvar,
    /// Next broadcast index to claim. Lives in the pool (not per call) so
    /// a dispatch allocates nothing.
    bc_next: AtomicUsize,
    /// Broadcast indices finished so far.
    bc_done: AtomicUsize,
    /// Whether any index of the current broadcast panicked.
    bc_panicked: AtomicBool,
    /// Signalled (under `jobs`) when a broadcast completes.
    bc_complete: Condvar,
}

/// A fixed-size pool of reusable worker threads.
pub struct Pool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.workers.len()).finish()
    }
}

impl Pool {
    /// Spawn a pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Pool {
        assert!(threads > 0, "pool needs at least one thread");
        let queue = Arc::new(Queue {
            jobs: Mutex::new(State { jobs: VecDeque::new(), shutdown: false, bc: None }),
            ready: Condvar::new(),
            bc_next: AtomicUsize::new(0),
            bc_done: AtomicUsize::new(0),
            bc_panicked: AtomicBool::new(false),
            bc_complete: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("scoped-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Open a scope: tasks submitted via [`Scope::execute`] may borrow
    /// anything that outlives the `scoped` call. Returns `f`'s result
    /// after **all** submitted tasks have completed; re-panics if any
    /// task panicked.
    pub fn scoped<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                drained: Condvar::new(),
                panicked: AtomicBool::new(false),
            }),
            _marker: PhantomData,
        };
        // The guard waits for the scope to drain even if `f` unwinds —
        // without it a panic in `f` would free borrowed stack slots while
        // workers still hold them.
        struct Drain<'a>(&'a ScopeState);
        impl Drop for Drain<'_> {
            fn drop(&mut self) {
                self.0.wait_drained();
            }
        }
        let out = {
            let _guard = Drain(&scope.state);
            f(&scope)
        };
        if scope.state.panicked.load(Ordering::SeqCst) {
            panic!("scoped_pool: a scoped task panicked");
        }
        out
    }

    /// Run `task(i)` for every `i in 0..count` across the pool's workers
    /// without boxing anything: the closure is shared by reference and
    /// workers claim indices from a pool-resident atomic counter. Blocks
    /// until every index has run; re-panics if any index panicked.
    ///
    /// Each index is claimed by exactly one worker, which is what lets
    /// callers hand out disjoint `&mut` access indexed by `i`.
    ///
    /// Concurrent `run_indexed` calls from *different* threads serialize
    /// against each other (one broadcast in flight per pool). Calling it
    /// from **inside** a pool task is unsupported and deadlocks: the
    /// nested call would wait for a broadcast slot its own caller holds.
    pub fn run_indexed(&self, count: usize, task: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        let queue = &*self.queue;
        {
            let mut q = queue.jobs.lock().unwrap();
            // Wait for any previous broadcast to finish (its last worker
            // clears `bc` and signals `bc_complete`).
            while q.bc.is_some() {
                q = queue.bc_complete.wait(q).unwrap();
            }
            queue.bc_next.store(0, Ordering::SeqCst);
            queue.bc_done.store(0, Ordering::SeqCst);
            queue.bc_panicked.store(false, Ordering::SeqCst);
            // SAFETY (lifetime erasure): this function blocks below until
            // `bc` is cleared, which only happens once all `count` indices
            // have run, so no worker dereferences the pointer after `task`
            // dies.
            let task = TaskPtr(unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
            });
            q.bc = Some(Broadcast { task, count });
        }
        queue.ready.notify_all();
        let mut q = queue.jobs.lock().unwrap();
        while q.bc.is_some() {
            q = queue.bc_complete.wait(q).unwrap();
        }
        drop(q);
        if queue.bc_panicked.load(Ordering::SeqCst) {
            panic!("scoped_pool: a broadcast task panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.queue.jobs.lock().unwrap();
            q.shutdown = true;
        }
        self.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Work a thread pulled off the queue: either a boxed scoped job or one
/// claimed index of the current broadcast.
enum Work {
    Job(Job),
    Bc { task: TaskPtr, index: usize, count: usize },
}

fn worker_loop(queue: &Queue) {
    loop {
        let work = {
            let mut q = queue.jobs.lock().unwrap();
            loop {
                if let Some(bc) = q.bc {
                    // The relaxed pre-check keeps an exhausted-but-live
                    // broadcast from inflating `bc_next` on every wake.
                    if queue.bc_next.load(Ordering::Relaxed) < bc.count {
                        let index = queue.bc_next.fetch_add(1, Ordering::SeqCst);
                        if index < bc.count {
                            break Work::Bc { task: bc.task, index, count: bc.count };
                        }
                    }
                }
                if let Some(job) = q.jobs.pop_front() {
                    break Work::Job(job);
                }
                if q.shutdown {
                    return; // shutting down and no work left
                }
                q = queue.ready.wait(q).unwrap();
            }
        };
        match work {
            Work::Job(job) => job(),
            Work::Bc { task, index, count } => {
                // SAFETY: `run_indexed` blocks until `bc_done == count`,
                // so the closure behind `task` is still alive here.
                let f = unsafe { &*task.0 };
                if catch_unwind(AssertUnwindSafe(|| f(index))).is_err() {
                    queue.bc_panicked.store(true, Ordering::SeqCst);
                }
                if queue.bc_done.fetch_add(1, Ordering::SeqCst) + 1 == count {
                    // Last index: retire the broadcast and wake both the
                    // blocked caller and any caller queued for the slot.
                    queue.jobs.lock().unwrap().bc = None;
                    queue.bc_complete.notify_all();
                }
            }
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
    panicked: AtomicBool,
}

impl ScopeState {
    fn wait_drained(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.drained.wait(pending).unwrap();
        }
    }
}

/// Handle for submitting borrowing tasks to a [`Pool`]; see
/// [`Pool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    // Invariant over 'scope: a scope must not be coerced to a shorter
    // lifetime, or tasks could capture borrows that end too early.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'_, 'scope> {
    /// Submit a task. It may run on any worker, at any time before the
    /// enclosing [`Pool::scoped`] returns.
    pub fn execute<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                state.panicked.store(true, Ordering::SeqCst);
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.drained.notify_all();
            }
        });
        // SAFETY: `Pool::scoped` blocks (via the `Drain` guard) until
        // `pending` reaches zero, i.e. until this closure has run to
        // completion, so nothing borrowed for 'scope is dropped while the
        // erased job can still touch it.
        let wrapped: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped)
        };
        {
            let mut q = self.pool.queue.jobs.lock().unwrap();
            q.jobs.push_back(wrapped);
        }
        self.pool.queue.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..100 {
                scope.execute(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_stack_data() {
        let pool = Pool::new(3);
        let mut slots = [0usize; 16];
        pool.scoped(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.execute(move || *slot = i * i);
            }
        });
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = Pool::new(2);
        for round in 0..5 {
            let total = AtomicUsize::new(0);
            pool.scoped(|scope| {
                for _ in 0..10 {
                    scope.execute(|| {
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.load(Ordering::SeqCst), 10, "round {round}");
        }
    }

    #[test]
    fn scoped_returns_closure_result() {
        let pool = Pool::new(2);
        let out = pool.scoped(|_| 41 + 1);
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_propagates_after_drain() {
        let pool = Pool::new(2);
        let done = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("boom"));
                for _ in 0..8 {
                    scope.execute(|| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(res.is_err(), "scope must re-panic");
        // All non-panicking siblings still ran — and the pool survives.
        assert_eq!(done.load(Ordering::SeqCst), 8);
        let ok = AtomicUsize::new(0);
        pool.scoped(|scope| {
            scope.execute(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn run_indexed_claims_each_index_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn run_indexed_borrows_stack_data_mutably() {
        struct Ptr(*mut usize);
        unsafe impl Sync for Ptr {}
        let pool = Pool::new(3);
        let mut slots = [0usize; 64];
        let base = Ptr(slots.as_mut_ptr());
        pool.run_indexed(slots.len(), &move |i| {
            // SAFETY: each index is claimed exactly once, so the derived
            // `&mut` references are disjoint.
            let base = &base;
            unsafe { *base.0.add(i) = i * i };
        });
        for (i, &s) in slots.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn run_indexed_is_reusable_and_mixes_with_scoped() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..5 {
            pool.run_indexed(10, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
            pool.scoped(|scope| {
                scope.execute(|| {
                    total.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 5 * 11);
    }

    #[test]
    fn run_indexed_zero_count_is_a_noop() {
        let pool = Pool::new(2);
        pool.run_indexed(0, &|_| panic!("must not run"));
    }

    #[test]
    fn run_indexed_propagates_panics_after_completion() {
        let pool = Pool::new(2);
        let done = AtomicUsize::new(0);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(16, &|i| {
                if i == 7 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(res.is_err(), "broadcast must re-panic");
        assert_eq!(done.load(Ordering::SeqCst), 15);
        // The pool survives for the next broadcast.
        let ok = AtomicUsize::new(0);
        pool.run_indexed(4, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn run_indexed_serializes_concurrent_broadcasts() {
        let pool = Pool::new(2);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        pool.run_indexed(8, &|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 8);
    }
}
