//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly, recovering from poison instead
//! of returning a `Result`). Vendored because the build environment has
//! no crates.io access.

#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-safe interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike `std`, a
    /// poisoned lock (panic while held) is transparently recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-safe interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value in an rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
