//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of primitives it needs: a seeded deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits with `random::<T>()` and `random_range(a..b)`,
//! and [`seq::SliceRandom::shuffle`]. The value streams differ from the
//! real `rand` crate, but every consumer in this repo only relies on
//! *determinism for a fixed seed*, never on specific values.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range, `bool` fair).
    fn random<T: distr::StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Sample uniformly from a range, e.g. `rng.random_range(0..n)`.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ with SplitMix64
    /// seed expansion. Same-seed streams are identical across runs and
    /// platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro requires a non-zero state; seed 0 expands to
            // non-zero words under SplitMix64, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Standard-distribution sampling and range sampling.
pub mod distr {
    use super::RngCore;

    /// Types samplable via [`super::Rng::random`].
    pub trait StandardValue: Sized {
        /// Draw one value from the type's standard distribution.
        fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardValue for f64 {
        #[inline]
        fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardValue for f32 {
        #[inline]
        fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl StandardValue for bool {
        #[inline]
        fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardValue for $t {
                #[inline]
                fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform sampling of `n` in `[0, bound)` without modulo bias
    /// (Lemire's widening-multiply method).
    #[inline]
    pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = (rng.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                m = (rng.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Ranges samplable via [`super::Rng::random_range`].
    pub trait SampleRange<T> {
        /// Draw one value uniformly from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width range: every word is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
        )*};
    }
    impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let u = f64::from_rng(rng);
            self.start + u * (self.end - self.start)
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::distr::bounded_u64;
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` if empty).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.random_range(3..=5u32);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
