//! `distenc` — command-line tensor completion.
//!
//! ```text
//! distenc generate --kind error --dims 40,40,40 --nnz 8000 --out data.coo
//! distenc complete --input data.coo --rank 5 --out model.kruskal \
//!                  [--similarity sim.coo@0]... [--alpha 2.0] [--iters 60]
//! distenc evaluate --model model.kruskal --test held_out.coo
//! distenc predict  --model model.kruskal --at 3,17,2
//! distenc predict  --model model.kruskal --at-file queries.coo
//! distenc predict  --model model.kruskal --top-k 10 --mode 1 --at 3,_,2
//! distenc serve-bench --model model.kruskal --queries 100000
//! ```
//!
//! Tensors are plain-text COO files (`# shape: …` header, one
//! `i j k value` line per entry); similarity matrices are 2-order COO
//! files attached to a mode with `path@mode`. Models round-trip through
//! the same text format (`distenc_tensor::io`). Prediction and the
//! serving benchmark go through `distenc_serve::Engine`, so scores are
//! bit-identical to `KruskalTensor::eval` on the loaded model.

use distenc::core::{AdmmConfig, AdmmSolver, Checkpoint, CheckpointPolicy, LayoutKind};
use distenc::graph::{Laplacian, SparseSym};
use distenc::serve::{
    open_loop_trace, synth_trace, AdmissionControl, ApproxTopK, Engine, EngineConfig,
    MetricsSnapshot, ModelRegistry, OpenLoopConfig, QueueConfig, Request, Response,
    RetryPolicy, ServeError, ServeQueue, Ticket, TopKQuery, TraceConfig,
};
use distenc::tensor::{io, CooTensor, KruskalTensor};
use std::collections::{BTreeMap, VecDeque};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "complete" => cmd_complete(rest),
        "resume" => cmd_resume(rest),
        "stream" => cmd_stream(rest),
        "evaluate" => cmd_evaluate(rest),
        "predict" => cmd_predict(rest),
        "serve-bench" => cmd_serve_bench(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
distenc — trace-regularized tensor completion (DisTenC, ICDE 2018)

USAGE:
  distenc generate --kind <scalability|error|skewed> --dims d1,d2,.. \\
                   --nnz N --out FILE [--seed S]
  distenc complete --input FILE --rank R --out MODEL
                   [--similarity FILE@MODE].. [--alpha A] [--lambda L]
                   [--iters T] [--tol EPS] [--eigen-k K] [--seed S] [--nonneg]
                   [--threads N]      (N >= 2 enables the thread-pool backend;
                                       results are bit-identical either way)
                   [--sketched] [--samples N] [--polish P]
                                      (sampled MTTKRP tier: N draws per step,
                                       last P iterations polished exactly;
                                       DISTENC_TIER=sketched[:N[:P]] is the
                                       env equivalent)
                   [--layout coo|csf|tiled]
                                      (residual storage layout; coo and tiled
                                       are bit-identical, csf matches to
                                       rounding. Precedence: --layout, then
                                       DISTENC_LAYOUT, then the legacy
                                       default. Unknown names are errors)
                   [--checkpoint FILE] [--checkpoint-every N]
                                      (snapshot the solver state to FILE every
                                       N iterations, default 5; atomic,
                                       checksummed, resumable)
  distenc resume   --checkpoint FILE --input FILE --out MODEL
                   [--similarity FILE@MODE].. [--threads N]
                   [--checkpoint-every N] [--layout coo|csf|tiled]
                   (continue an interrupted `complete` from its snapshot;
                    the finished model is bit-identical to the run that was
                    never interrupted. --checkpoint-every keeps snapshotting
                    to the same FILE while resuming)
  distenc stream   --input FILE --delta FILE.. --rank R --out MODEL
                   [--iters T] [--budget-iters T] [--tol EPS] [--seed S]
                   [--layout coo|csf|tiled]
                   (each --delta is a COO file; entries on observed cells
                    become value updates, new cells become inserts, and a
                    larger `# shape:` header grows the tensor — the model
                    is warm re-solved after every batch)
  distenc evaluate --model MODEL --test FILE
  distenc predict  --model MODEL --at i1,i2,..
  distenc predict  --model MODEL --at-file FILE         (scores every index)
  distenc predict  --model MODEL --top-k K --mode M --at i1,_,..
                   [--budget-ms MS]
  distenc serve-bench [--model MODEL | --dims d1,d2,.. --rank R]
                   [--queries N] [--point-frac F] [--batch-frac F]
                   [--batch-size B] [--k K] [--zipf S] [--budget-ms MS]
                   [--cache N] [--shard-rows N] [--workers W]
                   [--window-us U] [--capacity N] [--max-batch N] [--seed S]
                   [--approx-scan N | --approx-coverage F] [--recall-every N]
                   [--qps Q] [--tenants N] [--tenant-zipf S] [--json]
                   [--shed-watermark N] [--tenant-share N] [--deadline-ms MS]

serve-bench replays a closed-loop Zipf trace by default; --qps switches to
an open-loop (offered-load) harness with Poisson arrivals, admission
control, per-tenant fair queuing when --tenants > 1, and a --json report
of throughput, shed rate, e2e latency quantiles, recall@K, and per-tenant
queue occupancy.";

/// Parse `--key value` pairs (plus bare flags listed in `flags`).
fn parse_opts(
    args: &[String],
    flags: &[&str],
) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got `{a}`"))?;
        if flags.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
        } else {
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            // Repeatable options accumulate separated by '\n'.
            out.entry(key.to_string())
                .and_modify(|cur| {
                    cur.push('\n');
                    cur.push_str(v);
                })
                .or_insert_with(|| v.clone());
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a BTreeMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: `{s}`"))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, String> {
    s.split(',').map(|p| parse_num(p.trim(), what)).collect()
}

/// `--layout coo|csf|tiled`. Unknown names are errors, never fallbacks —
/// a typo must not silently change which kernels run.
fn parse_layout(opts: &BTreeMap<String, String>) -> Result<Option<LayoutKind>, String> {
    opts.get("layout")
        .map(|s| LayoutKind::parse(s).map_err(|e| e.to_string()))
        .transpose()
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let kind = req(&opts, "kind")?;
    let dims = parse_list(req(&opts, "dims")?, "dimension")?;
    let nnz: usize = parse_num(req(&opts, "nnz")?, "nnz")?;
    let out = req(&opts, "out")?;
    let seed: u64 = opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?;

    use distenc::datagen::synthetic;
    let tensor = match kind {
        "scalability" => synthetic::scalability_tensor(&dims, nnz, seed),
        "skewed" => synthetic::skewed_tensor(&dims, nnz, seed),
        "error" => {
            let data = synthetic::error_tensor(&dims, 5, nnz, seed);
            // Also emit the chain similarities next to the tensor.
            for (n, sim) in data.similarities.iter().enumerate() {
                let path = format!("{out}.sim{n}");
                write_similarity(sim, &path)?;
                eprintln!("wrote mode-{n} similarity to {path}");
            }
            data.observed
        }
        other => return Err(format!("unknown --kind `{other}`")),
    };
    io::write_coo_file(&tensor, out).map_err(|e| e.to_string())?;
    eprintln!("wrote {} entries of shape {:?} to {out}", tensor.nnz(), tensor.shape());
    Ok(())
}

fn write_similarity(s: &SparseSym, path: &str) -> Result<(), String> {
    let mut coo = CooTensor::new(vec![s.dim(), s.dim()]);
    for i in 0..s.dim() {
        let (cols, vals) = s.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            if j >= i {
                coo.push(&[i, j], v).map_err(|e| e.to_string())?;
            }
        }
    }
    io::write_coo_file(&coo, path).map_err(|e| e.to_string())
}

fn read_similarity(path: &str) -> Result<SparseSym, String> {
    let coo = io::read_coo_file(path).map_err(|e| e.to_string())?;
    if coo.order() != 2 || coo.shape()[0] != coo.shape()[1] {
        return Err(format!("{path}: similarity must be a square 2-order COO file"));
    }
    let triplets: Vec<(usize, usize, f64)> = coo
        .iter()
        .filter(|(idx, _)| idx[0] <= idx[1]) // upper triangle; mirrored on build
        .map(|(idx, v)| (idx[0], idx[1], v))
        .collect();
    Ok(SparseSym::from_triplets(coo.shape()[0], &triplets))
}

fn cmd_complete(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &["nonneg", "sketched"])?;
    let input = req(&opts, "input")?;
    let out = req(&opts, "out")?;
    let observed = io::read_coo_file(input).map_err(|e| e.to_string())?;

    // --sketched [--samples N] [--polish P] selects the sampled solver
    // tier; without the flag the DISTENC_TIER-driven default applies
    // (and --samples/--polish refine it when that default is sketched).
    let solver_tier = {
        let default = distenc::core::SolverTier::default();
        if opts.contains_key("sketched") || default.is_sketched() {
            let (mut samples, mut polish_iters) = match default {
                distenc::core::SolverTier::Sketched { samples, polish_iters } => {
                    (samples, polish_iters)
                }
                distenc::core::SolverTier::Exact => {
                    (4096, distenc::core::DEFAULT_POLISH_ITERS)
                }
            };
            if let Some(s) = opts.get("samples") {
                samples = parse_num(s, "samples")?;
            }
            if let Some(p) = opts.get("polish") {
                polish_iters = parse_num(p, "polish")?;
            }
            distenc::core::SolverTier::Sketched { samples, polish_iters }
        } else {
            distenc::core::SolverTier::Exact
        }
    };

    let checkpoint = parse_checkpoint(&opts)?;
    if checkpoint.is_some() && solver_tier.is_sketched() {
        eprintln!(
            "warning: checkpoints are exact-tier artifacts; the sketched solve will not snapshot"
        );
    }
    let cfg = AdmmConfig {
        solver_tier,
        checkpoint,
        layout: parse_layout(&opts)?,
        rank: parse_num(req(&opts, "rank")?, "rank")?,
        lambda: opts.get("lambda").map_or(Ok(0.1), |s| parse_num(s, "lambda"))?,
        alpha: opts.get("alpha").map_or(Ok(1.0), |s| parse_num(s, "alpha"))?,
        max_iters: opts.get("iters").map_or(Ok(60), |s| parse_num(s, "iters"))?,
        tol: opts.get("tol").map_or(Ok(1e-4), |s| parse_num(s, "tol"))?,
        eigen_k: opts.get("eigen-k").map_or(Ok(20), |s| parse_num(s, "eigen-k"))?,
        seed: opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?,
        nonneg: opts.contains_key("nonneg"),
        exec: match opts.get("threads") {
            Some(s) => match parse_num::<usize>(s, "threads")? {
                n if n >= 2 => distenc_dataflow::ExecMode::Threads(n),
                _ => distenc_dataflow::ExecMode::Sequential,
            },
            // Unset: inherit the DISTENC_THREADS-driven default.
            None => distenc_dataflow::ExecMode::default(),
        },
        ..Default::default()
    };

    let laps = parse_similarities(&opts, observed.order())?;
    let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(|l| l.as_ref()).collect();

    let solver = AdmmSolver::new(cfg).map_err(|e| e.to_string())?;
    let result = solver.solve(&observed, &lap_refs).map_err(|e| e.to_string())?;
    eprintln!(
        "completed in {} iterations (converged: {}, train RMSE {:.6})",
        result.iterations,
        result.converged,
        result.trace.final_rmse().unwrap_or(f64::NAN)
    );
    io::write_kruskal_file(&result.model, out).map_err(|e| e.to_string())?;
    eprintln!("wrote rank-{} model to {out}", result.model.rank());
    Ok(())
}

/// `--similarity FILE@MODE`, repeatable.
fn parse_similarities(
    opts: &BTreeMap<String, String>,
    order: usize,
) -> Result<Vec<Option<Laplacian>>, String> {
    let mut laps: Vec<Option<Laplacian>> = vec![None; order];
    if let Some(specs) = opts.get("similarity") {
        for spec in specs.split('\n') {
            let (path, mode) = spec
                .rsplit_once('@')
                .ok_or_else(|| format!("--similarity needs FILE@MODE, got `{spec}`"))?;
            let mode: usize = parse_num(mode, "similarity mode")?;
            if mode >= order {
                return Err(format!("mode {mode} out of range for order {order}"));
            }
            laps[mode] = Some(Laplacian::from_similarity(read_similarity(path)?));
        }
    }
    Ok(laps)
}

/// `--checkpoint FILE [--checkpoint-every N]` (default cadence 5).
fn parse_checkpoint(
    opts: &BTreeMap<String, String>,
) -> Result<Option<CheckpointPolicy>, String> {
    let Some(path) = opts.get("checkpoint") else {
        if opts.contains_key("checkpoint-every") {
            return Err("--checkpoint-every needs --checkpoint FILE".into());
        }
        return Ok(None);
    };
    let every: usize =
        opts.get("checkpoint-every").map_or(Ok(5), |s| parse_num(s, "checkpoint-every"))?;
    Ok(Some(CheckpointPolicy::every(every).with_path(path)))
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let ckpt_path = req(&opts, "checkpoint")?;
    let input = req(&opts, "input")?;
    let out = req(&opts, "out")?;
    let observed = io::read_coo_file(input).map_err(|e| e.to_string())?;
    let ckpt = Checkpoint::read_file(std::path::Path::new(ckpt_path))
        .map_err(|e| format!("reading {ckpt_path}: {e}"))?;

    // The solve numerics come from the snapshot; only the environment
    // knobs are taken from this invocation. `--checkpoint-every` keeps
    // snapshotting to the same file while the resumed run progresses.
    let mut cfg = ckpt.config.clone();
    cfg.checkpoint = opts
        .get("checkpoint-every")
        .map(|s| parse_num(s, "checkpoint-every"))
        .transpose()?
        .map(|every| CheckpointPolicy::every(every).with_path(ckpt_path));
    cfg.exec = match opts.get("threads") {
        Some(s) => match parse_num::<usize>(s, "threads")? {
            n if n >= 2 => distenc_dataflow::ExecMode::Threads(n),
            _ => distenc_dataflow::ExecMode::Sequential,
        },
        None => distenc_dataflow::ExecMode::default(),
    };
    cfg.layout = parse_layout(&opts)?;

    let laps = parse_similarities(&opts, observed.order())?;
    let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(|l| l.as_ref()).collect();

    let solver = AdmmSolver::new(cfg).map_err(|e| e.to_string())?;
    let result = solver.resume(&observed, &lap_refs, &ckpt).map_err(|e| e.to_string())?;
    eprintln!(
        "resumed at iteration {} and finished at {} (converged: {}, train RMSE {:.6})",
        ckpt.iters_done,
        result.iterations,
        result.converged,
        result.trace.final_rmse().unwrap_or(f64::NAN)
    );
    io::write_kruskal_file(&result.model, out).map_err(|e| e.to_string())?;
    eprintln!("wrote rank-{} model to {out}", result.model.rank());
    Ok(())
}

fn cmd_stream(args: &[String]) -> Result<(), String> {
    use distenc::stream::{DeltaBatch, StreamingSolver};

    let opts = parse_opts(args, &[])?;
    let input = req(&opts, "input")?;
    let out = req(&opts, "out")?;
    let observed = io::read_coo_file(input).map_err(|e| e.to_string())?;
    let order = observed.order();

    let cfg = AdmmConfig {
        layout: parse_layout(&opts)?,
        rank: parse_num(req(&opts, "rank")?, "rank")?,
        max_iters: opts.get("iters").map_or(Ok(60), |s| parse_num(s, "iters"))?,
        tol: opts.get("tol").map_or(Ok(1e-4), |s| parse_num(s, "tol"))?,
        seed: opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?,
        ..Default::default()
    };
    let budget: usize =
        opts.get("budget-iters").map_or(Ok(cfg.max_iters), |s| parse_num(s, "budget-iters"))?;
    let tol = cfg.tol;

    let mut solver =
        StreamingSolver::new(observed, vec![None; order], cfg).map_err(|e| e.to_string())?;
    let first = solver.solve().map_err(|e| e.to_string())?;
    eprintln!(
        "initial solve: {} iterations, train RMSE {:.6}",
        first.iterations,
        first.trace.final_rmse().unwrap_or(f64::NAN)
    );

    // Each --delta COO file is one batch: its entries are split into
    // updates (cells already observed) and inserts (new cells); a larger
    // shape header grows the tensor.
    solver.set_budget(budget, tol).map_err(|e| e.to_string())?;
    for path in req(&opts, "delta")?.split('\n') {
        let delta = io::read_coo_file(path).map_err(|e| e.to_string())?;
        if delta.order() != order {
            return Err(format!("{path}: delta is order {}, tensor is {order}", delta.order()));
        }
        let base = solver.observed().shape().to_vec();
        let growth: Vec<usize> = delta
            .shape()
            .iter()
            .zip(&base)
            .map(|(&d, &b)| d.saturating_sub(b))
            .collect();
        let (mut inserts, mut updates) = (Vec::new(), Vec::new());
        for (idx, v) in delta.iter() {
            if solver.observed().position_of(idx).is_some() {
                updates.push((idx.to_vec(), v));
            } else {
                inserts.push((idx.to_vec(), v));
            }
        }
        let batch = DeltaBatch::try_new(&base, &growth, inserts, updates)
            .map_err(|e| format!("{path}: {e}"))?;
        solver.apply(&batch).map_err(|e| format!("{path}: {e}"))?;
        let r = solver.solve().map_err(|e| e.to_string())?;
        eprintln!(
            "{path}: applied {} entries -> generation {}: {} iterations, train RMSE {:.6}",
            delta.nnz(),
            solver.generation(),
            r.iterations,
            r.trace.final_rmse().unwrap_or(f64::NAN)
        );
    }

    let model = solver.model().expect("solved at least once");
    io::write_kruskal_file(model, out).map_err(|e| e.to_string())?;
    eprintln!("wrote rank-{} model to {out}", model.rank());
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let model = io::read_kruskal_file(req(&opts, "model")?).map_err(|e| e.to_string())?;
    let test = io::read_coo_file(req(&opts, "test")?).map_err(|e| e.to_string())?;
    if test.shape() != model.shape().as_slice() {
        return Err(format!(
            "test shape {:?} does not match model shape {:?}",
            test.shape(),
            model.shape()
        ));
    }
    let rmse = distenc::tensor::residual::observed_rmse(&test, &model)
        .map_err(|e| e.to_string())?;
    let mut num = 0.0;
    let mut den = 0.0;
    for (idx, truth) in test.iter() {
        let p = model.eval(idx);
        num += (p - truth) * (p - truth);
        den += truth * truth;
    }
    let rel = if den > 0.0 { (num / den).sqrt() } else { 0.0 };
    println!("entries: {}", test.nnz());
    println!("rmse: {rmse:.6}");
    println!("relative_error: {rel:.6}");
    Ok(())
}

/// Parse an index list where `_` or `*` marks the free-mode placeholder.
fn parse_index_spec(s: &str, what: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            let p = p.trim();
            if p == "_" || p == "*" {
                Ok(0)
            } else {
                parse_num(p, what)
            }
        })
        .collect()
}

fn parse_budget(opts: &BTreeMap<String, String>) -> Result<Option<Duration>, String> {
    opts.get("budget-ms")
        .map(|s| parse_num::<u64>(s, "budget-ms").map(Duration::from_millis))
        .transpose()
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let model = io::read_kruskal_file(req(&opts, "model")?).map_err(|e| e.to_string())?;
    let engine = Engine::new(&model, EngineConfig::default()).map_err(|e| e.to_string())?;

    if let Some(k) = opts.get("top-k") {
        // Rank the free mode with everything else pinned.
        let k: usize = parse_num(k, "top-k")?;
        let mode: usize = parse_num(req(&opts, "mode")?, "mode")?;
        let at = parse_index_spec(req(&opts, "at")?, "index")?;
        let res = engine
            .topk(&TopKQuery { mode, at, k }, parse_budget(&opts)?)
            .map_err(|e| e.to_string())?;
        if res.degraded {
            eprintln!(
                "warning: budget expired after {} of {} candidates; showing best-so-far",
                res.scanned,
                model.shape()[mode]
            );
        }
        for item in &res.items {
            println!("{} {}", item.index, item.score);
        }
    } else if let Some(path) = opts.get("at-file") {
        // Score every index of a COO-style list in one batch pass
        // (values in the file, if any, are ignored).
        let queries = io::read_coo_file(path).map_err(|e| format!("reading {path}: {e}"))?;
        if queries.shape() != model.shape().as_slice() {
            return Err(format!(
                "query shape {:?} does not match model shape {:?}",
                queries.shape(),
                model.shape()
            ));
        }
        let indices: Vec<Vec<usize>> = queries.iter().map(|(idx, _)| idx.to_vec()).collect();
        let scores = engine.batch(&indices).map_err(|e| e.to_string())?;
        for (idx, score) in indices.iter().zip(scores) {
            let coords: Vec<String> = idx.iter().map(|i| i.to_string()).collect();
            println!("{} {score}", coords.join(" "));
        }
    } else {
        let idx = parse_list(req(&opts, "at")?, "index")?;
        println!("{}", engine.point(&idx).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &["json"])?;
    let seed: u64 = opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?;
    let model = match opts.get("model") {
        Some(path) => io::read_kruskal_file(path).map_err(|e| e.to_string())?,
        None => {
            let dims = opts
                .get("dims")
                .map(|s| parse_list(s, "dimension"))
                .transpose()?
                .unwrap_or_else(|| vec![2000, 500, 20]);
            let rank: usize = opts.get("rank").map_or(Ok(8), |s| parse_num(s, "rank"))?;
            KruskalTensor::random(&dims, rank, seed)
        }
    };
    let approx_topk = match (opts.get("approx-scan"), opts.get("approx-coverage")) {
        (Some(_), Some(_)) => {
            return Err("--approx-scan and --approx-coverage are mutually exclusive".into())
        }
        (Some(s), None) => Some(ApproxTopK::ScanLimit(parse_num(s, "approx-scan")?)),
        (None, Some(c)) => Some(ApproxTopK::NormCoverage(parse_num(c, "approx-coverage")?)),
        (None, None) => None,
    };
    let engine_cfg = EngineConfig {
        shard_rows: opts.get("shard-rows").map_or(Ok(4096), |s| parse_num(s, "shard-rows"))?,
        topk_cache: opts.get("cache").map_or(Ok(1024), |s| parse_num(s, "cache"))?,
        approx_topk,
        recall_check_every: opts
            .get("recall-every")
            .map_or(Ok(0), |s| parse_num(s, "recall-every"))?,
        ..Default::default()
    };

    let trace_cfg = TraceConfig {
        queries: opts.get("queries").map_or(Ok(100_000), |s| parse_num(s, "queries"))?,
        point_frac: opts.get("point-frac").map_or(Ok(0.6), |s| parse_num(s, "point-frac"))?,
        batch_frac: opts.get("batch-frac").map_or(Ok(0.2), |s| parse_num(s, "batch-frac"))?,
        batch_size: opts.get("batch-size").map_or(Ok(32), |s| parse_num(s, "batch-size"))?,
        k: opts.get("k").map_or(Ok(10), |s| parse_num(s, "k"))?,
        topk_budget: parse_budget(&opts)?,
        zipf_exponent: opts.get("zipf").map_or(Ok(1.1), |s| parse_num(s, "zipf"))?,
        seed,
    };
    if !(0.0..=1.0).contains(&trace_cfg.point_frac)
        || !(0.0..=1.0).contains(&trace_cfg.batch_frac)
        || trace_cfg.point_frac + trace_cfg.batch_frac > 1.0
    {
        return Err(format!(
            "--point-frac ({}) and --batch-frac ({}) must be non-negative and sum to at most 1",
            trace_cfg.point_frac, trace_cfg.batch_frac
        ));
    }
    if let Some(qps) = opts.get("qps") {
        return serve_bench_open_loop(
            &opts,
            &model,
            engine_cfg,
            trace_cfg,
            parse_num(qps, "qps")?,
        );
    }

    let engine = Arc::new(Engine::new(&model, engine_cfg).map_err(|e| e.to_string())?);
    let shape = model.shape();
    let trace = synth_trace(&shape, &trace_cfg);
    let store = engine.store();
    eprintln!(
        "replaying {} requests against shape {:?} rank {} ({} shards, {:.1} MiB store)",
        trace.len(),
        shape,
        model.rank(),
        (0..store.order()).map(|m| store.num_shards(m)).sum::<usize>(),
        store.mem_bytes() as f64 / (1024.0 * 1024.0),
    );

    let workers: usize = opts.get("workers").map_or(Ok(0), |s| parse_num(s, "workers"))?;
    let total = trace.len();
    let start = Instant::now();
    if workers == 0 {
        // Direct replay: every request hits the engine synchronously.
        for request in &trace {
            match request {
                Request::Point { index } => {
                    engine.point(index).map_err(|e| e.to_string())?;
                }
                Request::Batch { indices } => {
                    engine.batch(indices).map_err(|e| e.to_string())?;
                }
                Request::TopK { query, budget } => {
                    engine.topk(query, *budget).map_err(|e| e.to_string())?;
                }
            }
        }
    } else {
        // Queued replay: submissions flow through the bounded batching
        // queue. Backpressure is absorbed in two steps: a short
        // retry-with-backoff first (workers usually free capacity within
        // microseconds), then — if the queue is still full — the replayer
        // waits for its oldest in-flight ticket before trying again.
        let retry = RetryPolicy::default();
        let queue_cfg = QueueConfig {
            capacity: opts.get("capacity").map_or(Ok(1024), |s| parse_num(s, "capacity"))?,
            max_batch: opts.get("max-batch").map_or(Ok(64), |s| parse_num(s, "max-batch"))?,
            window: Duration::from_micros(
                opts.get("window-us").map_or(Ok(200), |s| parse_num(s, "window-us"))?,
            ),
            workers,
            ..Default::default()
        };
        let queue =
            ServeQueue::new(Arc::clone(&engine), queue_cfg).map_err(|e| e.to_string())?;
        let mut pending: VecDeque<Ticket> = VecDeque::new();
        for request in trace {
            loop {
                match queue.submit_with_retry(request.clone(), &retry) {
                    Ok(ticket) => {
                        pending.push_back(ticket);
                        break;
                    }
                    Err(ServeError::QueueFull { .. }) => match pending.pop_front() {
                        Some(ticket) => {
                            ticket.wait();
                        }
                        None => std::thread::yield_now(),
                    },
                    Err(e) => return Err(e.to_string()),
                }
            }
        }
        for ticket in pending {
            ticket.wait();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "replayed {total} requests in {elapsed:.3} s ({:.0} req/s)",
        total as f64 / elapsed.max(1e-9)
    );
    println!("{}", engine.snapshot());
    Ok(())
}

/// Spin/sleep until `start + offset` (sleep for coarse gaps, spin the
/// final stretch — high-QPS inter-arrival gaps are far below OS sleep
/// granularity).
fn pace(start: Instant, offset: Duration) {
    let target = start + offset;
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        if target - now > Duration::from_micros(300) {
            std::thread::sleep(target - now - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Open-loop serve-bench: offered load at a fixed QPS (Poisson
/// arrivals), optional admission control, multi-tenant fair queuing, and
/// a machine-readable `--json` report.
fn serve_bench_open_loop(
    opts: &BTreeMap<String, String>,
    model: &KruskalTensor,
    engine_cfg: EngineConfig,
    trace_cfg: TraceConfig,
    qps: f64,
) -> Result<(), String> {
    let tenants: usize = opts.get("tenants").map_or(Ok(1), |s| parse_num(s, "tenants"))?;
    if tenants == 0 {
        return Err("--tenants must be at least 1".into());
    }
    let workers: usize = opts.get("workers").map_or(Ok(2), |s| parse_num(s, "workers"))?;
    if workers == 0 {
        return Err("open-loop mode needs --workers >= 1".into());
    }
    let deadline = opts
        .get("deadline-ms")
        .map(|s| parse_num::<u64>(s, "deadline-ms").map(Duration::from_millis))
        .transpose()?;
    let queue_cfg = QueueConfig {
        capacity: opts.get("capacity").map_or(Ok(1024), |s| parse_num(s, "capacity"))?,
        max_batch: opts.get("max-batch").map_or(Ok(64), |s| parse_num(s, "max-batch"))?,
        window: Duration::from_micros(
            opts.get("window-us").map_or(Ok(200), |s| parse_num(s, "window-us"))?,
        ),
        workers,
        admission: AdmissionControl {
            shed_watermark: opts
                .get("shed-watermark")
                .map(|s| parse_num(s, "shed-watermark"))
                .transpose()?,
            deadline_aware: deadline.is_some(),
            tenant_share: opts
                .get("tenant-share")
                .map(|s| parse_num(s, "tenant-share"))
                .transpose()?,
        },
        ..Default::default()
    };

    // Single tenant fronts one engine; several front a model registry
    // (every tenant serving this same model, each with its own engine).
    enum Fleet {
        Single(Arc<Engine>),
        Multi(Arc<ModelRegistry>),
    }
    let names: Vec<String> = (0..tenants).map(|i| format!("tenant-{i}")).collect();
    let (queue, fleet) = if tenants > 1 {
        let reg = Arc::new(ModelRegistry::new());
        for name in &names {
            reg.register(name, model, engine_cfg.clone()).map_err(|e| e.to_string())?;
        }
        let queue =
            ServeQueue::with_registry(Arc::clone(&reg), queue_cfg).map_err(|e| e.to_string())?;
        (queue, Fleet::Multi(reg))
    } else {
        let engine = Arc::new(Engine::new(model, engine_cfg).map_err(|e| e.to_string())?);
        let queue =
            ServeQueue::new(Arc::clone(&engine), queue_cfg).map_err(|e| e.to_string())?;
        (queue, Fleet::Single(engine))
    };

    let open_cfg = OpenLoopConfig {
        qps,
        tenants,
        tenant_zipf: opts.get("tenant-zipf").map_or(Ok(1.0), |s| parse_num(s, "tenant-zipf"))?,
        trace: trace_cfg,
    };
    let shape = model.shape();
    let trace = open_loop_trace(&shape, &open_cfg);
    eprintln!(
        "offering {} requests at {qps:.0} qps across {tenants} tenant(s), shape {shape:?} rank {}",
        trace.len(),
        model.rank(),
    );

    let mut tickets = Vec::with_capacity(trace.len());
    let mut rejected = 0u64;
    let start = Instant::now();
    for tr in &trace {
        pace(start, tr.offset);
        let submitted = if tenants > 1 {
            queue.submit_for_with_deadline(&names[tr.tenant], tr.request.clone(), deadline)
        } else {
            queue.submit_with_deadline(tr.request.clone(), deadline)
        };
        match submitted {
            Ok(t) => tickets.push((tr.tenant, t)),
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut served = vec![0u64; tenants];
    let mut shed = vec![0u64; tenants];
    let (mut timed_out, mut errors) = (0u64, 0u64);
    for (tenant, ticket) in tickets {
        match ticket.wait() {
            Response::Value(_) | Response::Values(_) | Response::TopK(_) => served[tenant] += 1,
            Response::Shed(_) => shed[tenant] += 1,
            Response::TimedOut => timed_out += 1,
            Response::Error(_) => errors += 1,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let occupancy = queue.occupancy();
    drop(queue);

    let snap: MetricsSnapshot = match &fleet {
        Fleet::Single(engine) => engine.snapshot(),
        Fleet::Multi(reg) => reg.snapshot(),
    };
    // The fleet block never sees recall samples (each tenant's engine
    // records its own), so aggregate recall across tenant snapshots.
    let (recall_overlap, recall_possible, recall_checks) = match &fleet {
        Fleet::Single(engine) => {
            let s = engine.snapshot();
            (s.recall_overlap, s.recall_possible, s.recall_checks)
        }
        Fleet::Multi(reg) => reg.tenant_snapshots().iter().fold((0, 0, 0), |acc, (_, s)| {
            (acc.0 + s.recall_overlap, acc.1 + s.recall_possible, acc.2 + s.recall_checks)
        }),
    };
    let recall = if recall_possible == 0 {
        0.0
    } else {
        recall_overlap as f64 / recall_possible as f64
    };
    let total_served: u64 = served.iter().sum();
    let total_shed: u64 = shed.iter().sum();
    let achieved = total_served as f64 / wall.max(1e-9);

    if opts.contains_key("json") {
        let tenant_rows: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let peak =
                    occupancy.iter().find(|(n, _, _)| n == name || (tenants == 1 && n == "default"))
                        .map_or(0, |(_, _, p)| *p);
                format!(
                    "    {{ \"tenant\": \"{name}\", \"served\": {}, \"shed\": {}, \"queued_peak\": {peak} }}",
                    served[i], shed[i]
                )
            })
            .collect();
        println!(
            "{{\n  \"offered_qps\": {qps:.0},\n  \"achieved_qps\": {achieved:.0},\n  \"wall_secs\": {wall:.3},\n  \"requests\": {},\n  \"served\": {total_served},\n  \"shed\": {total_shed},\n  \"sheds_queue_depth\": {},\n  \"sheds_deadline\": {},\n  \"sheds_tenant_share\": {},\n  \"rejected\": {rejected},\n  \"timed_out\": {timed_out},\n  \"errors\": {errors},\n  \"shed_rate\": {:.4},\n  \"queue_depth_peak\": {},\n  \"e2e_us\": {{ \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"mean\": {:.1} }},\n  \"recall_at_k\": {recall:.4},\n  \"recall_checks\": {recall_checks},\n  \"tenants\": [\n{}\n  ]\n}}",
            trace.len(),
            snap.sheds_queue_depth,
            snap.sheds_deadline,
            snap.sheds_tenant_share,
            snap.shed_rate(),
            snap.queue_depth_peak,
            snap.e2e_p50.as_secs_f64() * 1e6,
            snap.e2e_p90.as_secs_f64() * 1e6,
            snap.e2e_p99.as_secs_f64() * 1e6,
            snap.e2e_mean.as_secs_f64() * 1e6,
            tenant_rows.join(",\n"),
        );
    } else {
        println!(
            "offered {} requests at {qps:.0} qps in {wall:.3} s: {total_served} served ({achieved:.0} qps), {total_shed} shed, {rejected} rejected, {timed_out} timed out, {errors} errors",
            trace.len(),
        );
        println!("{snap}");
        for (i, name) in names.iter().enumerate() {
            let peak = occupancy
                .iter()
                .find(|(n, _, _)| n == name || (tenants == 1 && n == "default"))
                .map_or(0, |(_, _, p)| *p);
            println!(
                "  {name}: served {} shed {} peak queue {peak}",
                served[i], shed[i]
            );
        }
    }
    Ok(())
}
