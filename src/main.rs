//! `distenc` — command-line tensor completion.
//!
//! ```text
//! distenc generate --kind error --dims 40,40,40 --nnz 8000 --out data.coo
//! distenc complete --input data.coo --rank 5 --out model.kruskal \
//!                  [--similarity sim.coo@0]... [--alpha 2.0] [--iters 60]
//! distenc evaluate --model model.kruskal --test held_out.coo
//! distenc predict  --model model.kruskal --at 3,17,2
//! ```
//!
//! Tensors are plain-text COO files (`# shape: …` header, one
//! `i j k value` line per entry); similarity matrices are 2-order COO
//! files attached to a mode with `path@mode`. Models round-trip through
//! the same text format (`distenc_tensor::io`).

use distenc::core::{AdmmConfig, AdmmSolver};
use distenc::graph::{Laplacian, SparseSym};
use distenc::tensor::{io, CooTensor};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "complete" => cmd_complete(rest),
        "evaluate" => cmd_evaluate(rest),
        "predict" => cmd_predict(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
distenc — trace-regularized tensor completion (DisTenC, ICDE 2018)

USAGE:
  distenc generate --kind <scalability|error|skewed> --dims d1,d2,.. \\
                   --nnz N --out FILE [--seed S]
  distenc complete --input FILE --rank R --out MODEL
                   [--similarity FILE@MODE].. [--alpha A] [--lambda L]
                   [--iters T] [--tol EPS] [--eigen-k K] [--seed S] [--nonneg]
  distenc evaluate --model MODEL --test FILE
  distenc predict  --model MODEL --at i1,i2,..";

/// Parse `--key value` pairs (plus bare flags listed in `flags`).
fn parse_opts(
    args: &[String],
    flags: &[&str],
) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got `{a}`"))?;
        if flags.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
        } else {
            let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            // Repeatable options accumulate separated by '\n'.
            out.entry(key.to_string())
                .and_modify(|cur| {
                    cur.push('\n');
                    cur.push_str(v);
                })
                .or_insert_with(|| v.clone());
        }
    }
    Ok(out)
}

fn req<'a>(opts: &'a BTreeMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: `{s}`"))
}

fn parse_list(s: &str, what: &str) -> Result<Vec<usize>, String> {
    s.split(',').map(|p| parse_num(p.trim(), what)).collect()
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let kind = req(&opts, "kind")?;
    let dims = parse_list(req(&opts, "dims")?, "dimension")?;
    let nnz: usize = parse_num(req(&opts, "nnz")?, "nnz")?;
    let out = req(&opts, "out")?;
    let seed: u64 = opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?;

    use distenc::datagen::synthetic;
    let tensor = match kind {
        "scalability" => synthetic::scalability_tensor(&dims, nnz, seed),
        "skewed" => synthetic::skewed_tensor(&dims, nnz, seed),
        "error" => {
            let data = synthetic::error_tensor(&dims, 5, nnz, seed);
            // Also emit the chain similarities next to the tensor.
            for (n, sim) in data.similarities.iter().enumerate() {
                let path = format!("{out}.sim{n}");
                write_similarity(sim, &path)?;
                eprintln!("wrote mode-{n} similarity to {path}");
            }
            data.observed
        }
        other => return Err(format!("unknown --kind `{other}`")),
    };
    io::write_coo_file(&tensor, out).map_err(|e| e.to_string())?;
    eprintln!("wrote {} entries of shape {:?} to {out}", tensor.nnz(), tensor.shape());
    Ok(())
}

fn write_similarity(s: &SparseSym, path: &str) -> Result<(), String> {
    let mut coo = CooTensor::new(vec![s.dim(), s.dim()]);
    for i in 0..s.dim() {
        let (cols, vals) = s.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            if j >= i {
                coo.push(&[i, j], v).map_err(|e| e.to_string())?;
            }
        }
    }
    io::write_coo_file(&coo, path).map_err(|e| e.to_string())
}

fn read_similarity(path: &str) -> Result<SparseSym, String> {
    let coo = io::read_coo_file(path).map_err(|e| e.to_string())?;
    if coo.order() != 2 || coo.shape()[0] != coo.shape()[1] {
        return Err(format!("{path}: similarity must be a square 2-order COO file"));
    }
    let triplets: Vec<(usize, usize, f64)> = coo
        .iter()
        .filter(|(idx, _)| idx[0] <= idx[1]) // upper triangle; mirrored on build
        .map(|(idx, v)| (idx[0], idx[1], v))
        .collect();
    Ok(SparseSym::from_triplets(coo.shape()[0], &triplets))
}

fn cmd_complete(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &["nonneg"])?;
    let input = req(&opts, "input")?;
    let out = req(&opts, "out")?;
    let observed = io::read_coo_file(input).map_err(|e| e.to_string())?;

    let cfg = AdmmConfig {
        rank: parse_num(req(&opts, "rank")?, "rank")?,
        lambda: opts.get("lambda").map_or(Ok(0.1), |s| parse_num(s, "lambda"))?,
        alpha: opts.get("alpha").map_or(Ok(1.0), |s| parse_num(s, "alpha"))?,
        max_iters: opts.get("iters").map_or(Ok(60), |s| parse_num(s, "iters"))?,
        tol: opts.get("tol").map_or(Ok(1e-4), |s| parse_num(s, "tol"))?,
        eigen_k: opts.get("eigen-k").map_or(Ok(20), |s| parse_num(s, "eigen-k"))?,
        seed: opts.get("seed").map_or(Ok(42), |s| parse_num(s, "seed"))?,
        nonneg: opts.contains_key("nonneg"),
        ..Default::default()
    };

    // --similarity FILE@MODE, repeatable.
    let mut laps: Vec<Option<Laplacian>> = vec![None; observed.order()];
    if let Some(specs) = opts.get("similarity") {
        for spec in specs.split('\n') {
            let (path, mode) = spec
                .rsplit_once('@')
                .ok_or_else(|| format!("--similarity needs FILE@MODE, got `{spec}`"))?;
            let mode: usize = parse_num(mode, "similarity mode")?;
            if mode >= observed.order() {
                return Err(format!("mode {mode} out of range for order {}", observed.order()));
            }
            laps[mode] = Some(Laplacian::from_similarity(read_similarity(path)?));
        }
    }
    let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(|l| l.as_ref()).collect();

    let solver = AdmmSolver::new(cfg).map_err(|e| e.to_string())?;
    let result = solver.solve(&observed, &lap_refs).map_err(|e| e.to_string())?;
    eprintln!(
        "completed in {} iterations (converged: {}, train RMSE {:.6})",
        result.iterations,
        result.converged,
        result.trace.final_rmse().unwrap_or(f64::NAN)
    );
    io::write_kruskal_file(&result.model, out).map_err(|e| e.to_string())?;
    eprintln!("wrote rank-{} model to {out}", result.model.rank());
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let model = io::read_kruskal_file(req(&opts, "model")?).map_err(|e| e.to_string())?;
    let test = io::read_coo_file(req(&opts, "test")?).map_err(|e| e.to_string())?;
    if test.shape() != model.shape().as_slice() {
        return Err(format!(
            "test shape {:?} does not match model shape {:?}",
            test.shape(),
            model.shape()
        ));
    }
    let rmse = distenc::tensor::residual::observed_rmse(&test, &model)
        .map_err(|e| e.to_string())?;
    let mut num = 0.0;
    let mut den = 0.0;
    for (idx, truth) in test.iter() {
        let p = model.eval(idx);
        num += (p - truth) * (p - truth);
        den += truth * truth;
    }
    let rel = if den > 0.0 { (num / den).sqrt() } else { 0.0 };
    println!("entries: {}", test.nnz());
    println!("rmse: {rmse:.6}");
    println!("relative_error: {rel:.6}");
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &[])?;
    let model = io::read_kruskal_file(req(&opts, "model")?).map_err(|e| e.to_string())?;
    let idx = parse_list(req(&opts, "at")?, "index")?;
    let shape = model.shape();
    if idx.len() != shape.len() || idx.iter().zip(&shape).any(|(&i, &d)| i >= d) {
        return Err(format!("index {idx:?} out of bounds for shape {shape:?}"));
    }
    println!("{}", model.eval(&idx));
    Ok(())
}
