//! # distenc
//!
//! A from-scratch Rust reproduction of **DisTenC** (Ge et al., ICDE 2018):
//! distributed low-rank CP tensor completion with auxiliary-information
//! (trace/graph-Laplacian) regularization via ADMM, executed on an
//! in-process Spark-like dataflow engine with virtual-time, memory, and
//! shuffle accounting.
//!
//! This umbrella crate re-exports the workspace so downstream users (and
//! the examples under `examples/`) can depend on a single crate:
//!
//! * [`linalg`] — dense matrices, Cholesky, Jacobi / Lanczos eigensolvers
//! * [`tensor`] — sparse COO tensors and CP/Kruskal algebra
//! * [`graph`] — similarity graphs and graph Laplacians
//! * [`dataflow`] — the simulated cluster and distributed collections
//! * [`partition`] — greedy load-balanced tensor blocking (Algorithm 2)
//! * [`core`] — the DisTenC algorithm itself (Algorithms 1 & 3)
//! * [`baselines`] — ALS, TFAI, SCouT, FlexiFact comparators
//! * [`datagen`] — synthetic workloads mirroring the paper's datasets
//! * [`eval`] — metrics and the figure/table experiment harness
//! * [`serve`] — sharded, batched model serving for completed tensors
//! * [`stream`] — streaming completion: delta batches, warm re-solves,
//!   and live model swap into the serve tier

#![warn(missing_docs)]

pub use distenc_baselines as baselines;
pub use distenc_core as core;
pub use distenc_dataflow as dataflow;
pub use distenc_datagen as datagen;
pub use distenc_eval as eval;
pub use distenc_graph as graph;
pub use distenc_linalg as linalg;
pub use distenc_partition as partition;
pub use distenc_serve as serve;
pub use distenc_stream as stream;
pub use distenc_tensor as tensor;
