//! Failure injection and degenerate-input behaviour across the stack.

use distenc::baselines::{AlsConfig, AlsSolver};
use distenc::core::{AdmmConfig, AdmmSolver, CoreError, DisTenC};
use distenc::dataflow::{Cluster, ClusterConfig, DataflowError};
use distenc::graph::{Laplacian, SparseSym};
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

#[test]
fn straggler_machine_slows_the_run_but_not_the_answer() {
    // Large enough that per-stage compute dwarfs scheduling latency —
    // otherwise a slow machine hides behind fixed overheads.
    let observed = planted(&[40, 40, 40], 4, 100_000, 1);
    let cfg = AdmmConfig { rank: 6, max_iters: 5, tol: 1e-12, ..Default::default() };

    let run = |straggler: Option<(usize, f64)>| {
        let mut cc = ClusterConfig::test(4).with_time_budget(None);
        cc.straggler = straggler;
        let cluster = Cluster::new(cc);
        let res = DisTenC::new(&cluster, cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        (cluster.now(), res.trace.final_rmse().unwrap())
    };
    let (t_healthy, rmse_healthy) = run(None);
    let (t_slow, rmse_slow) = run(Some((2, 20.0)));
    assert!(t_slow > t_healthy * 1.5, "{t_healthy} vs {t_slow}");
    assert_eq!(rmse_healthy, rmse_slow, "stragglers must not change numerics");
}

#[test]
fn sparse_slices_and_empty_planes_are_fine() {
    // A tensor where many slices of mode 0 hold no observations at all:
    // blocks along those slices are empty, factor rows there are never
    // touched by MTTKRP.
    let mut observed = CooTensor::new(vec![30, 10, 10]);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        // Only even mode-0 slices below 10 are populated.
        let idx = [
            rng.random_range(0..5usize) * 2,
            rng.random_range(0..10),
            rng.random_range(0..10),
        ];
        observed.push(&idx, rng.random::<f64>()).unwrap();
    }
    observed.sort_dedup();
    let cfg = AdmmConfig { rank: 2, max_iters: 5, tol: 1e-12, ..Default::default() };
    let cluster = Cluster::new(ClusterConfig::test(4).with_time_budget(None));
    let res = DisTenC::new(&cluster, cfg)
        .unwrap()
        .solve(&observed, &[None, None, None])
        .unwrap();
    assert!(res.trace.final_rmse().unwrap().is_finite());
    assert!(res.model.factors()[0].is_finite());
}

#[test]
fn single_entry_tensor() {
    let observed = CooTensor::from_entries(vec![5, 5, 5], &[(&[1, 2, 3], 4.0)]).unwrap();
    let cfg = AdmmConfig { rank: 1, max_iters: 30, tol: 1e-10, lambda: 1e-6, ..Default::default() };
    let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
    // One observation, rank one: it should be fit almost exactly.
    assert!((res.model.eval(&[1, 2, 3]) - 4.0).abs() < 0.2);
}

#[test]
fn rank_larger_than_some_mode() {
    // Rank 6 on a mode of length 4 — the normal equations stay SPD thanks
    // to the λ + η ridge.
    let observed = planted(&[4, 12, 12], 2, 250, 5);
    let cfg = AdmmConfig { rank: 6, max_iters: 6, tol: 1e-12, ..Default::default() };
    let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
    assert!(res.trace.final_rmse().unwrap().is_finite());
}

#[test]
fn edgeless_similarity_behaves_like_no_aux() {
    let observed = planted(&[15, 15, 15], 2, 400, 7);
    let empty = Laplacian::from_similarity(SparseSym::from_triplets(15, &[]));
    let cfg = AdmmConfig { rank: 2, max_iters: 8, tol: 1e-12, alpha: 5.0, ..Default::default() };
    let with_empty = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(&observed, &[Some(&empty), None, None])
        .unwrap();
    let without = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
    // L = 0 for an edgeless graph, so the trace term vanishes either way.
    for (a, b) in with_empty.model.factors().iter().zip(without.model.factors()) {
        assert!(a.frob_dist(b).unwrap() < 1e-9);
    }
}

#[test]
fn oom_is_reported_not_panicked() {
    let observed = planted(&[40, 40, 40], 6, 5_000, 9);
    let cluster = Cluster::new(ClusterConfig::test(2).with_memory(32 * 1024));
    let cfg = AdmmConfig { rank: 6, max_iters: 3, ..Default::default() };
    match DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]) {
        Err(CoreError::Dataflow(DataflowError::OutOfMemory { needed, capacity, .. })) => {
            assert!(needed > capacity);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn oot_is_reported_not_panicked() {
    let observed = planted(&[30, 30, 30], 4, 3_000, 11);
    let cluster = Cluster::new(ClusterConfig::test(2).with_time_budget(Some(0.05)));
    let cfg = AdmmConfig { rank: 4, max_iters: 200, tol: 1e-15, ..Default::default() };
    match DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]) {
        Err(CoreError::Dataflow(DataflowError::OutOfTime { elapsed, budget })) => {
            assert!(elapsed > budget);
        }
        other => panic!("expected OOT, got {other:?}"),
    }
}

#[test]
fn baselines_survive_degenerate_inputs() {
    // Mode of length 1 (Facebook's 5-slice time mode scaled to absurdity).
    let observed = planted(&[12, 12, 1], 2, 100, 13);
    let als = AlsSolver::new(AlsConfig { rank: 2, max_iters: 5, ..Default::default() })
        .unwrap()
        .solve(&observed)
        .unwrap();
    assert!(als.trace.final_rmse().unwrap().is_finite());
}

#[test]
fn values_with_extreme_magnitudes() {
    let mut observed = planted(&[10, 10, 10], 2, 300, 15);
    for v in observed.values_mut() {
        *v *= 1e8;
    }
    let cfg = AdmmConfig { rank: 2, max_iters: 20, tol: 1e-9, ..Default::default() };
    let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
    let final_rmse = res.trace.final_rmse().unwrap();
    let initial_rmse = res.trace.points[0].train_rmse;
    assert!(final_rmse.is_finite());
    assert!(final_rmse < initial_rmse, "must still make progress at 1e8 scale");
}
