//! Fault-tolerance contracts: deterministic fault injection, lineage
//! recovery on the cluster, and checkpoint/resume on the host.
//!
//! The invariant under test everywhere is **bit-exact recovery**: a solve
//! interrupted by an injected fault and recovered (from a checkpoint
//! image or by a cold restart) must finish with factors, RMSE trace, and
//! iteration count bit-identical to the fault-free run. Virtual-clock
//! metrics are allowed — required, in fact — to differ: recovery work is
//! charged honestly and surfaced in `Metrics::recovery_seconds`.

use distenc::core::{
    AdmmConfig, AdmmSolver, Checkpoint, CheckpointError, CheckpointPolicy, CompletionResult,
    CoreError, DisTenC,
};
use distenc::dataflow::{Cluster, ClusterConfig, DataflowError, Fault, FaultPlan, Metrics};
use distenc::tensor::{CooTensor, KruskalTensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::OnceLock;

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn base_cfg() -> AdmmConfig {
    AdmmConfig { rank: 2, max_iters: 8, tol: 1e-12, ..Default::default() }
}

/// Factor matrices as raw f64 bits, for exact comparison.
fn factor_bits(r: &CompletionResult) -> Vec<Vec<u64>> {
    r.model
        .factors()
        .iter()
        .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Run DisTenC on a fresh cluster with the given fault plan and optional
/// checkpoint interval, returning the result and the cluster's metrics.
fn cluster_solve(
    observed: &CooTensor,
    plan: FaultPlan,
    every: Option<usize>,
) -> (Result<CompletionResult, CoreError>, Metrics) {
    let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None).with_faults(plan));
    let mut cfg = base_cfg();
    cfg.checkpoint = every.map(CheckpointPolicy::every);
    let out = DisTenC::new(&cluster, cfg).unwrap().solve(observed, &[None, None, None]);
    (out, cluster.metrics())
}

fn fault_free(observed: &CooTensor) -> (CompletionResult, Metrics) {
    let (out, m) = cluster_solve(observed, FaultPlan::none(), None);
    (out.unwrap(), m)
}

/// A unique temp path for checkpoint files; callers remove it when done.
fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("distenc_fault_recovery_{}_{tag}.ckpt", std::process::id()))
}

// ---------------------------------------------------------------------------
// Cluster: machine loss + lineage recovery
// ---------------------------------------------------------------------------

#[test]
fn crash_recovery_is_bit_exact_at_every_checkpoint_interval() {
    let observed = planted(&[12, 10, 8], 2, 600, 31);
    let (clean, clean_m) = fault_free(&observed);
    // Pin the crash halfway through the clean run's stage sequence so
    // snapshots exist before it fires (the stage count per iteration is
    // an implementation detail; the clean run's total is not).
    let crash_at = clean_m.stages / 2;

    // With no checkpoint the driver cold-restarts; with intervals 1 and 5
    // it resumes from the newest snapshot image. All three must land on
    // the fault-free answer bit-for-bit.
    let mut faulted_virt = Vec::new();
    for every in [None, Some(1), Some(5)] {
        let plan = FaultPlan::new(vec![Fault::MachineCrash { at_stage: crash_at, machine: 1 }]);
        let (out, m) = cluster_solve(&observed, plan, every);
        let res = out.unwrap();
        assert_eq!(factor_bits(&clean), factor_bits(&res), "interval {every:?}");
        assert_eq!(
            clean.trace.final_rmse().unwrap().to_bits(),
            res.trace.final_rmse().unwrap().to_bits(),
            "interval {every:?}"
        );
        assert_eq!(clean.iterations, res.iterations, "interval {every:?}");
        // Every recomputed iteration reproduces the original trace.
        assert_eq!(clean.trace.points.len(), res.trace.points.len());
        for (a, b) in clean.trace.points.iter().zip(&res.trace.points) {
            assert_eq!(a.train_rmse.to_bits(), b.train_rmse.to_bits());
            assert_eq!(a.factor_delta.to_bits(), b.factor_delta.to_bits());
        }
        // The recovery is charged, not free.
        assert_eq!(m.machines_lost, 1, "interval {every:?}");
        assert!(m.faults_injected >= 1);
        assert!(m.recovery_seconds > 0.0, "interval {every:?}");
        assert!(
            m.virtual_seconds > clean_m.virtual_seconds,
            "recovery must cost virtual time: {} vs {} (interval {every:?})",
            m.virtual_seconds,
            clean_m.virtual_seconds
        );
        faulted_virt.push(m.virtual_seconds);
    }
    // A mid-run crash with per-iteration snapshots resumes from the
    // image instead of recomputing every iteration: even after paying
    // for the snapshots, the run beats the cold restart.
    assert!(
        faulted_virt[1] < faulted_virt[0],
        "interval-1 resume ({}) should beat cold restart ({})",
        faulted_virt[1],
        faulted_virt[0]
    );
}

#[test]
fn crash_before_any_work_cold_restarts_bit_exactly() {
    let observed = planted(&[12, 10, 8], 2, 600, 32);
    let (clean, _) = fault_free(&observed);
    let plan = FaultPlan::new(vec![Fault::MachineCrash { at_stage: 0, machine: 0 }]);
    let (out, m) = cluster_solve(&observed, plan, Some(2));
    let res = out.unwrap();
    assert_eq!(factor_bits(&clean), factor_bits(&res));
    assert_eq!(m.machines_lost, 1);
}

#[test]
fn transient_task_failures_retry_and_stay_bit_exact() {
    let observed = planted(&[12, 10, 8], 2, 600, 33);
    let (clean, clean_m) = fault_free(&observed);
    let plan =
        FaultPlan::new(vec![Fault::TransientTask { at_stage: 5, machine: 2, failures: 2 }]);
    let (out, m) = cluster_solve(&observed, plan, None);
    let res = out.unwrap();
    assert_eq!(factor_bits(&clean), factor_bits(&res));
    assert_eq!(m.task_retries, 2);
    assert_eq!(m.machines_lost, 0);
    assert!(m.recovery_seconds > 0.0, "retried attempts are recovery time");
    assert!(m.virtual_seconds > clean_m.virtual_seconds);
}

#[test]
fn exhausted_task_retries_surface_a_typed_error() {
    let observed = planted(&[12, 10, 8], 2, 600, 34);
    let plan = FaultPlan::new(vec![Fault::TransientTask { at_stage: 5, machine: 0, failures: 9 }])
        .with_max_task_retries(2);
    let (out, m) = cluster_solve(&observed, plan, None);
    match out {
        Err(CoreError::Dataflow(DataflowError::TaskFailed { machine, attempts, .. })) => {
            assert_eq!(machine, 0);
            assert_eq!(attempts, 3, "original run plus the 2-retry budget");
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
    assert_eq!(m.task_retries, 2, "the budget was spent before aborting");
}

#[test]
fn injected_straggler_slows_the_run_but_not_the_answer() {
    let observed = planted(&[12, 10, 8], 2, 600, 35);
    let (clean, clean_m) = fault_free(&observed);
    let plan = FaultPlan::new(vec![Fault::Straggler {
        at_stage: 3,
        machine: 1,
        factor: 10.0,
        stages: 4,
    }]);
    let (out, m) = cluster_solve(&observed, plan, None);
    let res = out.unwrap();
    assert_eq!(factor_bits(&clean), factor_bits(&res));
    assert!(m.recovery_seconds > 0.0, "straggler excess is attributed to recovery");
    assert!(m.virtual_seconds > clean_m.virtual_seconds);
    assert_eq!(m.machines_lost, 0);
    assert_eq!(m.task_retries, 0);
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_fault_support() {
    let observed = planted(&[12, 10, 8], 2, 600, 36);
    let (a, am) = cluster_solve(&observed, FaultPlan::none(), None);
    let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
    let b = DisTenC::new(&cluster, base_cfg())
        .unwrap()
        .solve(&observed, &[None, None, None])
        .unwrap();
    assert_eq!(factor_bits(&a.unwrap()), factor_bits(&b));
    assert_eq!(am, cluster.metrics());
    assert_eq!(am.recovery_seconds, 0.0);
    assert_eq!(am.faults_injected, 0);
}

#[test]
fn checkpointing_without_faults_changes_metrics_not_numerics() {
    let observed = planted(&[12, 10, 8], 2, 600, 37);
    let (clean, clean_m) = fault_free(&observed);
    let (out, m) = cluster_solve(&observed, FaultPlan::none(), Some(2));
    let res = out.unwrap();
    assert_eq!(factor_bits(&clean), factor_bits(&res));
    assert_eq!(clean.iterations, res.iterations);
    // Snapshot gathers are charged work: documented, visible, honest.
    assert!(m.virtual_seconds > clean_m.virtual_seconds);
    assert_eq!(m.recovery_seconds, 0.0, "checkpointing is not recovery");
}

proptest! {
    // Each case is two full distributed solves; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fault schedules never panic: the solver either completes
    /// bit-exactly (absorbing crashes, retries, and stragglers) or
    /// returns a typed dataflow error.
    #[test]
    fn random_fault_schedules_never_panic_and_recover_bit_exactly(seed in any::<u64>()) {
        static BASELINE: OnceLock<(CooTensor, Vec<Vec<u64>>, u64)> = OnceLock::new();
        let (observed, clean_bits, clean_rmse) = BASELINE.get_or_init(|| {
            let observed = planted(&[12, 10, 8], 2, 600, 40);
            let (clean, _) = fault_free(&observed);
            let rmse = clean.trace.final_rmse().unwrap().to_bits();
            let bits = factor_bits(&clean);
            (observed, bits, rmse)
        });
        let plan = FaultPlan::seeded(seed, 3, 40);
        let (out, m) = cluster_solve(observed, plan, Some(2));
        match out {
            Ok(res) => {
                prop_assert_eq!(clean_bits, &factor_bits(&res));
                prop_assert_eq!(*clean_rmse, res.trace.final_rmse().unwrap().to_bits());
            }
            // A plan can legitimately exhaust the retry budget; anything
            // else would be a bug.
            Err(CoreError::Dataflow(DataflowError::TaskFailed { .. })) => {
                prop_assert!(m.task_retries > 0);
            }
            Err(other) => return Err(TestCaseError::fail(format!("untyped failure: {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Host: checkpoint files + `AdmmSolver::resume`
// ---------------------------------------------------------------------------

fn host_solve(observed: &CooTensor, cfg: AdmmConfig) -> CompletionResult {
    AdmmSolver::new(cfg).unwrap().solve(observed, &[None, None, None]).unwrap()
}

#[test]
fn mid_run_resume_is_bit_identical_to_the_uninterrupted_run() {
    let observed = planted(&[12, 10, 8], 2, 600, 50);
    let full = host_solve(&observed, AdmmConfig { max_iters: 10, ..base_cfg() });

    // Simulate an interruption at iteration 5: run with a truncated
    // budget and a snapshot cadence that lands exactly there.
    let path = tmp_path("mid_run");
    let interrupted = AdmmConfig {
        max_iters: 5,
        checkpoint: Some(CheckpointPolicy::every(5).with_path(&path)),
        ..base_cfg()
    };
    host_solve(&observed, interrupted);

    let mut ckpt = Checkpoint::read_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(ckpt.iters_done, 5);
    // Resume under the original (untruncated) budget.
    ckpt.config.max_iters = 10;
    let solver = AdmmSolver::new(AdmmConfig { max_iters: 10, ..base_cfg() }).unwrap();
    let resumed = solver.resume(&observed, &[None, None, None], &ckpt).unwrap();

    assert_eq!(resumed.iterations, full.iterations);
    assert_eq!(factor_bits(&full), factor_bits(&resumed));
    assert_eq!(
        full.trace.final_rmse().unwrap().to_bits(),
        resumed.trace.final_rmse().unwrap().to_bits()
    );
    // The resumed trace is the checkpointed prefix plus the recomputed
    // tail, and every point matches the uninterrupted run bit-for-bit.
    assert_eq!(full.trace.points.len(), resumed.trace.points.len());
    for (a, b) in full.trace.points.iter().zip(&resumed.trace.points) {
        assert_eq!(a.iter, b.iter);
        assert_eq!(a.train_rmse.to_bits(), b.train_rmse.to_bits());
        assert_eq!(a.factor_delta.to_bits(), b.factor_delta.to_bits());
    }
}

#[test]
fn final_checkpoint_reproduces_the_finished_state() {
    let observed = planted(&[12, 10, 8], 2, 600, 51);
    let path = tmp_path("final");
    let cfg =
        AdmmConfig { checkpoint: Some(CheckpointPolicy::every(4).with_path(&path)), ..base_cfg() };
    let run = host_solve(&observed, cfg);
    assert_eq!(run.iterations, 8, "tol is tiny; the budget is spent");

    // The newest snapshot on disk is the iteration-8 state; resuming it
    // has nothing left to do and returns that state verbatim.
    let ckpt = Checkpoint::read_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(ckpt.iters_done, 8);
    let resumed = AdmmSolver::new(base_cfg())
        .unwrap()
        .resume(&observed, &[None, None, None], &ckpt)
        .unwrap();
    assert_eq!(factor_bits(&run), factor_bits(&resumed));
    assert_eq!(
        run.trace.final_rmse().unwrap().to_bits(),
        resumed.trace.final_rmse().unwrap().to_bits()
    );
}

#[test]
fn resume_rejects_a_mismatched_problem() {
    let observed = planted(&[12, 10, 8], 2, 600, 52);
    let path = tmp_path("mismatch");
    let cfg =
        AdmmConfig { checkpoint: Some(CheckpointPolicy::every(4).with_path(&path)), ..base_cfg() };
    host_solve(&observed, cfg);
    let ckpt = Checkpoint::read_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let solver = AdmmSolver::new(base_cfg()).unwrap();
    // Wrong shape.
    let other = planted(&[9, 9, 9], 2, 300, 53);
    let err = solver.resume(&other, &[None, None, None], &ckpt).unwrap_err();
    assert!(matches!(err, CoreError::Invalid(_)), "got {err:?}");
    // Same shape, different support size.
    let thinner = planted(&[12, 10, 8], 2, 200, 54);
    let err = solver.resume(&thinner, &[None, None, None], &ckpt).unwrap_err();
    assert!(matches!(err, CoreError::Invalid(_)), "got {err:?}");
}

#[test]
fn corrupted_checkpoint_files_are_typed_errors_not_panics() {
    let observed = planted(&[12, 10, 8], 2, 600, 55);
    let path = tmp_path("corrupt");
    let cfg =
        AdmmConfig { checkpoint: Some(CheckpointPolicy::every(4).with_path(&path)), ..base_cfg() };
    host_solve(&observed, cfg);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // A flipped payload byte trips the checksum.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    match Checkpoint::from_bytes(&flipped) {
        Err(CheckpointError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum failure, got {other:?}"),
    }

    // Truncation at any prefix is typed, never a panic.
    for cut in [0, 1, 7, bytes.len() / 3, bytes.len() - 1] {
        assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}
