//! Determinism and degeneracy contracts of the sketched solver tier.
//!
//! The sketched tier is randomized, but its randomness is *pinned*: the
//! sampler draws sequentially on the driver thread from a config-seeded
//! RNG, so the whole sampled schedule is a pure function of (tensor,
//! config). These tests hold the tier to that contract:
//!
//! * same seed + config ⇒ bit-identical sampled index sets, and
//!   bit-identical factors under `ExecMode::Sequential` vs
//!   `ExecMode::Threads(4)`, on both the COO and CSF layouts (proptest,
//!   across seeds);
//! * `samples ≥ nnz` degenerates to the exact tier **bit-identically**
//!   (the documented fallback routes through `HostBackend` before any
//!   sketched machinery is built);
//! * negative paths are typed errors or documented fallbacks — never
//!   panics: `samples == 0` and `tol ≤ 0` are rejected at config
//!   validation, `polish_iters ≥ max_iters` falls back to exact, and
//!   `sketched + fused=false` runs the sketch phase's own fused sampled
//!   sweep (the ablation flag only governs the exact path).

use distenc::core::{AdmmConfig, AdmmSolver, CompletionResult, SolverTier};
use distenc::dataflow::ExecMode;
use distenc::tensor::sample::EntrySampler;
use distenc::tensor::{CooTensor, KruskalTensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Planted low-rank data, same construction as the solver unit tests.
fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn solve(observed: &CooTensor, cfg: AdmmConfig) -> CompletionResult {
    let laps = vec![None; observed.order()];
    AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap()
}

/// Factor matrices as raw f64 bits, for exact comparison.
fn factor_bits(r: &CompletionResult) -> Vec<Vec<u64>> {
    r.model
        .factors()
        .iter()
        .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    // Full solves per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sampler_index_sets_are_bit_identical_for_a_seed(
        seed in any::<u64>(),
        count in 1usize..256,
        data_seed in 0u64..64,
    ) {
        let t = planted(&[9, 8, 7], 2, 300, data_seed);
        let s = EntrySampler::norm_proportional(&t).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        s.draw_into(&mut StdRng::seed_from_u64(seed), count, &mut a);
        s.draw_into(&mut StdRng::seed_from_u64(seed), count, &mut b);
        prop_assert_eq!(&a, &b);
        // A freshly built sampler over the same tensor draws the same
        // sets: the distribution is a pure function of the values.
        let s2 = EntrySampler::norm_proportional(&t).unwrap();
        let mut c = Vec::new();
        s2.draw_into(&mut StdRng::seed_from_u64(seed), count, &mut c);
        prop_assert_eq!(&a, &c);
        prop_assert!(a.iter().all(|&p| p < t.nnz()));
    }

    #[test]
    fn sketched_factors_are_bit_identical_across_executors(
        seed in 0u64..256,
        use_csf in any::<bool>(),
    ) {
        let observed = planted(&[12, 10, 8], 2, 700, seed);
        let samples = (observed.nnz() / 3).max(1);
        let base = AdmmConfig {
            rank: 2,
            max_iters: 8,
            tol: 1e-12,
            seed,
            use_csf,
            solver_tier: SolverTier::Sketched { samples, polish_iters: 3 },
            ..Default::default()
        };
        let seq = solve(&observed, AdmmConfig { exec: ExecMode::Sequential, ..base.clone() });
        let par = solve(&observed, AdmmConfig { exec: ExecMode::Threads(4), ..base });
        prop_assert_eq!(seq.iterations, par.iterations);
        prop_assert_eq!(factor_bits(&seq), factor_bits(&par));
        // The traces agree bit-for-bit too (sampled RMSE estimates
        // included) — seconds are wall-clock and excluded.
        for (a, b) in seq.trace.points.iter().zip(&par.trace.points) {
            prop_assert_eq!(a.train_rmse.to_bits(), b.train_rmse.to_bits());
            prop_assert_eq!(a.factor_delta.to_bits(), b.factor_delta.to_bits());
        }
    }
}

#[test]
fn oversized_sample_budget_is_bit_identical_to_exact() {
    let observed = planted(&[10, 9, 8], 2, 500, 21);
    let base = AdmmConfig { rank: 2, max_iters: 10, tol: 1e-12, ..Default::default() };
    let exact = solve(&observed, base.clone());
    for samples in [observed.nnz(), observed.nnz() + 1, observed.nnz() * 10] {
        let sk = solve(
            &observed,
            AdmmConfig {
                solver_tier: SolverTier::Sketched { samples, polish_iters: 2 },
                ..base.clone()
            },
        );
        assert_eq!(factor_bits(&exact), factor_bits(&sk), "samples = {samples}");
        assert_eq!(exact.iterations, sk.iterations);
    }
}

#[test]
fn polish_budget_covering_the_run_is_bit_identical_to_exact() {
    let observed = planted(&[10, 9, 8], 2, 500, 22);
    let base = AdmmConfig { rank: 2, max_iters: 6, tol: 1e-12, ..Default::default() };
    let exact = solve(&observed, base.clone());
    for polish_iters in [6, 7, 100] {
        let sk = solve(
            &observed,
            AdmmConfig {
                solver_tier: SolverTier::Sketched { samples: 50, polish_iters },
                ..base.clone()
            },
        );
        assert_eq!(factor_bits(&exact), factor_bits(&sk), "polish = {polish_iters}");
    }
}

#[test]
fn zero_samples_is_a_typed_config_error() {
    let cfg = AdmmConfig {
        solver_tier: SolverTier::Sketched { samples: 0, polish_iters: 2 },
        ..Default::default()
    };
    let err = AdmmSolver::new(cfg).unwrap_err();
    assert!(matches!(err, distenc::core::CoreError::Invalid(_)), "got {err:?}");
    assert!(err.to_string().contains("samples"), "message: {err}");
}

#[test]
fn nonpositive_tol_is_a_typed_config_error() {
    for tol in [0.0, -1e-6, f64::NAN] {
        let cfg = AdmmConfig {
            tol,
            solver_tier: SolverTier::Sketched { samples: 64, polish_iters: 2 },
            ..Default::default()
        };
        let err = AdmmSolver::new(cfg).unwrap_err();
        assert!(matches!(err, distenc::core::CoreError::Invalid(_)), "tol {tol}: {err:?}");
    }
}

#[test]
fn sketched_with_fused_disabled_runs_and_stays_finite() {
    // The `fused` ablation flag governs the exact path only; the sketch
    // phase always uses its own fused sampled sweep (there is no unfused
    // sampled schedule). Documented fallback, not an error — and the
    // polish phase honors the flag.
    let observed = planted(&[10, 9, 8], 2, 500, 23);
    let cfg = AdmmConfig {
        rank: 2,
        max_iters: 10,
        tol: 1e-12,
        fused: false,
        solver_tier: SolverTier::Sketched { samples: 100, polish_iters: 3 },
        ..Default::default()
    };
    let res = solve(&observed, cfg);
    assert_eq!(res.iterations, 10);
    for f in res.model.factors() {
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
    }
    let rmse = distenc::tensor::residual::observed_rmse(&observed, &res.model).unwrap();
    assert!(rmse.is_finite());
}

#[test]
fn polish_phase_continues_trace_numbering_and_timing() {
    let observed = planted(&[10, 9, 8], 2, 500, 24);
    let cfg = AdmmConfig {
        rank: 2,
        max_iters: 9,
        tol: 1e-12,
        solver_tier: SolverTier::Sketched { samples: 100, polish_iters: 4 },
        ..Default::default()
    };
    let res = solve(&observed, cfg);
    assert_eq!(res.iterations, 9);
    assert_eq!(res.trace.points.len(), 9);
    for (i, p) in res.trace.points.iter().enumerate() {
        assert_eq!(p.iter, i, "trace renumbering across the phase boundary");
    }
    // Seconds are cumulative across both phases (shared clock).
    for w in res.trace.points.windows(2) {
        assert!(w[1].seconds >= w[0].seconds);
    }
}
