//! Allocation-budget test for the unified solver core (requires
//! `--features alloc-count`, which installs the counting global
//! allocator; without the feature this file compiles to nothing).
//!
//! The contract (see `distenc-core`'s `solver` module docs): after
//! `SolverState` and the backend size their workspaces, a steady-state
//! host iteration performs **zero** heap allocations on the calling
//! thread in sequential mode, and a thread-count-bounded constant in
//! threaded mode (the executor boxes one job per dispatch unit) — in both
//! cases *independent of `nnz` and rank*.
//!
//! Methodology: the solver is deterministic, so two runs differing only
//! in `max_iters` (2 vs 10) perform identical setup work; the difference
//! in allocation counts divided by 8 is exactly the per-iteration cost.
//! All measurements live in one `#[test]` because the global counters are
//! process-wide and concurrently running tests would pollute each other.

#![cfg(feature = "alloc-count")]

use distenc::core::{AdmmConfig, AdmmSolver};
use distenc::dataflow::alloc;
use distenc::dataflow::ExecMode;
use distenc::tensor::{CooTensor, KruskalTensor};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa11c);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// Thread-local allocation count of one full solve.
fn thread_allocs_of(observed: &CooTensor, cfg: &AdmmConfig) -> u64 {
    let before = alloc::snapshot();
    let res = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(observed, &[None, None, None])
        .unwrap();
    let d = alloc::snapshot().delta(before);
    assert_eq!(res.iterations, cfg.max_iters, "must not converge early");
    drop(res);
    d.thread_allocs
}

/// Global (all-threads) allocation count of one full solve.
fn global_allocs_of(observed: &CooTensor, cfg: &AdmmConfig) -> u64 {
    let before = alloc::snapshot();
    let res = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(observed, &[None, None, None])
        .unwrap();
    let d = alloc::snapshot().delta(before);
    assert_eq!(res.iterations, cfg.max_iters, "must not converge early");
    drop(res);
    d.global_allocs
}

/// Per-steady-iteration allocations: difference between a 10-iteration
/// and a 2-iteration run of the *same* problem, over the 8 extra
/// iterations. Setup allocations cancel exactly (the solver is
/// deterministic and both runs size identical workspaces).
fn per_iter(observed: &CooTensor, cfg: &AdmmConfig, count: fn(&CooTensor, &AdmmConfig) -> u64) -> f64 {
    let short = AdmmConfig { max_iters: 2, ..cfg.clone() };
    let long = AdmmConfig { max_iters: 10, ..cfg.clone() };
    let a = count(observed, &short);
    let b = count(observed, &long);
    (b.saturating_sub(a)) as f64 / 8.0
}

#[test]
fn steady_state_iterations_allocate_o1_heap() {
    // tol far below reachable so every run executes exactly max_iters.
    let base = AdmmConfig { rank: 3, tol: 1e-300, ..Default::default() };
    let small = planted(&[14, 12, 10], 3, 600, 2);
    let large = planted(&[28, 24, 20], 3, 2400, 3);

    // --- Sequential: literally zero allocations per steady iteration. ---
    let seq = AdmmConfig { exec: ExecMode::Sequential, ..base.clone() };
    let seq_small = per_iter(&small, &seq, thread_allocs_of);
    assert_eq!(seq_small, 0.0, "sequential steady state must not allocate");
    let seq_large = per_iter(&large, &seq, thread_allocs_of);
    assert_eq!(seq_large, 0.0, "sequential budget must not grow with nnz");
    let seq_rank5 = per_iter(
        &planted(&[14, 12, 10], 3, 600, 2),
        &AdmmConfig { rank: 5, ..seq.clone() },
        thread_allocs_of,
    );
    assert_eq!(seq_rank5, 0.0, "sequential budget must not grow with rank");

    // --- Threaded: O(threads) job boxes per dispatch, nothing else. ----
    // The count depends only on the dispatch structure (modes × parts),
    // so it must be identical for a 4× larger tensor and a larger rank.
    let thr = AdmmConfig { exec: ExecMode::Threads(4), ..base.clone() };
    let thr_small = per_iter(&small, &thr, global_allocs_of);
    let thr_large = per_iter(&large, &thr, global_allocs_of);
    let thr_rank5 = per_iter(
        &planted(&[14, 12, 10], 3, 600, 2),
        &AdmmConfig { rank: 5, ..thr.clone() },
        global_allocs_of,
    );
    assert_eq!(
        thr_small, thr_large,
        "threaded per-iteration allocations must be independent of nnz"
    );
    assert_eq!(
        thr_small, thr_rank5,
        "threaded per-iteration allocations must be independent of rank"
    );
    // Sanity bound: a handful of boxed jobs per kernel dispatch, not a
    // per-entry or per-row cost.
    assert!(
        thr_small < 256.0,
        "threaded steady iteration allocates {thr_small} times — workspace reuse is broken"
    );
}
