//! Allocation-budget test for the unified solver core (requires
//! `--features alloc-count`, which installs the counting global
//! allocator; without the feature this file compiles to nothing).
//!
//! The contract (see `distenc-core`'s `solver` module docs): after
//! `SolverState` and the backend size their workspaces, a steady-state
//! host iteration performs **zero** heap allocations — sequential *and*
//! threaded, with fusion on (the default) or off. The threaded executor
//! used to box one job per dispatch unit (~32 boxes per iteration); it
//! now hands work to the resident pool through `Pool::run_indexed`, an
//! unboxed index broadcast, so nothing is left to allocate.
//!
//! Methodology: the solver is deterministic, so two runs differing only
//! in `max_iters` (2 vs 10) perform identical setup work; the difference
//! in allocation counts divided by 8 is exactly the per-iteration cost.
//! All measurements live in one `#[test]` because the global counters are
//! process-wide and concurrently running tests would pollute each other.

#![cfg(feature = "alloc-count")]

use distenc::core::{AdmmConfig, AdmmSolver};
use distenc::dataflow::alloc;
use distenc::dataflow::ExecMode;
use distenc::tensor::{CooTensor, KruskalTensor};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa11c);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// Thread-local allocation count of one full solve.
fn thread_allocs_of(observed: &CooTensor, cfg: &AdmmConfig) -> u64 {
    let before = alloc::snapshot();
    let res = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(observed, &[None, None, None])
        .unwrap();
    let d = alloc::snapshot().delta(before);
    assert_eq!(res.iterations, cfg.max_iters, "must not converge early");
    drop(res);
    d.thread_allocs
}

/// Global (all-threads) allocation count of one full solve.
fn global_allocs_of(observed: &CooTensor, cfg: &AdmmConfig) -> u64 {
    let before = alloc::snapshot();
    let res = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(observed, &[None, None, None])
        .unwrap();
    let d = alloc::snapshot().delta(before);
    assert_eq!(res.iterations, cfg.max_iters, "must not converge early");
    drop(res);
    d.global_allocs
}

/// Per-steady-iteration allocations: difference between a 10-iteration
/// and a 2-iteration run of the *same* problem, over the 8 extra
/// iterations. Setup allocations cancel exactly (the solver is
/// deterministic and both runs size identical workspaces).
fn per_iter(observed: &CooTensor, cfg: &AdmmConfig, count: fn(&CooTensor, &AdmmConfig) -> u64) -> f64 {
    let short = AdmmConfig { max_iters: 2, ..cfg.clone() };
    let long = AdmmConfig { max_iters: 10, ..cfg.clone() };
    let a = count(observed, &short);
    let b = count(observed, &long);
    (b.saturating_sub(a)) as f64 / 8.0
}

#[test]
fn steady_state_iterations_allocate_o1_heap() {
    // tol far below reachable so every run executes exactly max_iters.
    let base = AdmmConfig { rank: 3, tol: 1e-300, ..Default::default() };
    let small = planted(&[14, 12, 10], 3, 600, 2);
    let large = planted(&[28, 24, 20], 3, 2400, 3);

    // --- Sequential: literally zero allocations per steady iteration,
    // --- with the fused sweep (default) and without it. -----------------
    let seq = AdmmConfig { exec: ExecMode::Sequential, ..base.clone() };
    let seq_small = per_iter(&small, &seq, thread_allocs_of);
    assert_eq!(seq_small, 0.0, "sequential fused steady state must not allocate");
    let seq_unfused = per_iter(&small, &seq.clone().with_fused(false), thread_allocs_of);
    assert_eq!(seq_unfused, 0.0, "sequential unfused steady state must not allocate");
    let seq_large = per_iter(&large, &seq, thread_allocs_of);
    assert_eq!(seq_large, 0.0, "sequential budget must not grow with nnz");
    let seq_rank5 = per_iter(
        &planted(&[14, 12, 10], 3, 600, 2),
        &AdmmConfig { rank: 5, ..seq.clone() },
        thread_allocs_of,
    );
    assert_eq!(seq_rank5, 0.0, "sequential budget must not grow with rank");

    // --- Threaded: also zero. The unboxed broadcast dispatches through
    // pool-resident state, and on hosts where the pool is bypassed (a
    // single core, or single-chunk work) the inline fast path is the
    // sequential loop above. Measured globally so worker-thread
    // allocations would be caught too.
    let thr = AdmmConfig { exec: ExecMode::Threads(4), ..base.clone() };
    let thr_small = per_iter(&small, &thr, global_allocs_of);
    assert_eq!(thr_small, 0.0, "threaded steady state must not allocate");
    let thr_large = per_iter(&large, &thr, global_allocs_of);
    assert_eq!(thr_large, 0.0, "threaded budget must not grow with nnz");
    let thr_rank5 = per_iter(
        &planted(&[14, 12, 10], 3, 600, 2),
        &AdmmConfig { rank: 5, ..thr.clone() },
        global_allocs_of,
    );
    assert_eq!(thr_rank5, 0.0, "threaded budget must not grow with rank");
}

/// The dispatch mechanism itself, measured directly on the pool: an index
/// broadcast allocates nothing, no matter how many indices it fans out.
/// (The solver-level assertions above inline on single-core hosts; this
/// pins the pool path everywhere.)
#[test]
fn pool_index_broadcast_allocates_nothing() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let pool = scoped_pool::Pool::new(2);
    let hits = AtomicU64::new(0);
    let task = |_i: usize| {
        hits.fetch_add(1, Ordering::Relaxed);
    };
    // Warm up so lazily initialized thread state doesn't bill the
    // measured window.
    pool.run_indexed(64, &task);
    let before = alloc::snapshot();
    for _ in 0..10 {
        pool.run_indexed(64, &task);
    }
    let d = alloc::snapshot().delta(before);
    assert_eq!(hits.load(Ordering::Relaxed), 64 * 11);
    assert_eq!(
        d.global_allocs, 0,
        "run_indexed must not allocate on any thread in steady state"
    );
}
