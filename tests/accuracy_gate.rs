//! The statistical accuracy gate for the sketched solver tier.
//!
//! The sketched tier's contract is not bit-exactness (that's
//! `tests/sketched_equivalence.rs` and the golden trace) but *bounded
//! accuracy loss*: on the planted gate workloads, its final train RMSE
//! must stay within [`accuracy::ACCURACY_GATE_TOL`] of the exact tier's
//! at a 4× entry-touch discount (`samples = nnz/4`).
//!
//! `ci.sh` runs this suite under both `DISTENC_THREADS=1` and
//! `DISTENC_THREADS=4` (the "accuracy gate" steps): the sampled schedule
//! is computed sequentially on the driver, so the thread count must not
//! move the numbers at all — the gate doubles as an end-to-end check
//! that the determinism contract holds on realistic workloads.
//!
//! The tolerance constant lives in exactly one place
//! (`distenc_eval::accuracy`) and is re-exported below so a drive-by
//! reader of this test sees where the documented number comes from.

use distenc::core::DEFAULT_POLISH_ITERS;
use distenc::eval::accuracy::{compare_tiers, gate_config, gate_workloads};

/// The single documented tolerance (see `ACCURACY_GATE_TOL`'s docs for
/// how it was chosen).
pub use distenc::eval::accuracy::ACCURACY_GATE_TOL;

#[test]
fn sketched_tier_passes_the_accuracy_gate_on_all_planted_workloads() {
    for w in gate_workloads() {
        let cfg = gate_config(w.rank);
        let samples = w.observed.nnz() / 4;
        let c = compare_tiers(&w.observed, &cfg, samples, DEFAULT_POLISH_ITERS).unwrap();
        assert!(
            c.passes_gate(),
            "{}: sketched RMSE {:.6} vs exact {:.6} (gap {:+.6} > tol {})",
            w.name,
            c.sketched_rmse,
            c.exact_rmse,
            c.gap(),
            ACCURACY_GATE_TOL,
        );
        // The touch discount the gate is run at — the acceptance bar for
        // the tier is "gate accuracy at ≥ 2× fewer entry touches", and
        // nnz/4 gives 4×.
        assert!(
            c.touch_ratio() >= 2.0,
            "{}: touch ratio {:.2} below the 2x bar",
            w.name,
            c.touch_ratio(),
        );
    }
}

#[test]
fn gate_gap_is_thread_count_invariant() {
    // The gate numbers themselves must not depend on the executor: run
    // one workload under both execution modes explicitly and require the
    // *identical* RMSE (not merely within tolerance). ci.sh additionally
    // runs the whole suite under both DISTENC_THREADS settings; this
    // test pins the invariance even when the suite is run standalone.
    use distenc::core::{AdmmConfig, AdmmSolver, SolverTier};
    use distenc::dataflow::ExecMode;

    let w = &gate_workloads()[0];
    let samples = w.observed.nnz() / 4;
    let tier = SolverTier::Sketched { samples, polish_iters: DEFAULT_POLISH_ITERS };
    let laps = vec![None; w.observed.order()];
    let rmse_of = |exec: ExecMode| {
        let cfg = AdmmConfig { exec, solver_tier: tier, ..gate_config(w.rank) };
        let res = AdmmSolver::new(cfg).unwrap().solve(&w.observed, &laps).unwrap();
        distenc::tensor::residual::observed_rmse(&w.observed, &res.model).unwrap()
    };
    let seq = rmse_of(ExecMode::Sequential);
    let par = rmse_of(ExecMode::Threads(4));
    assert_eq!(
        seq.to_bits(),
        par.to_bits(),
        "sketched gate RMSE differs across executors: {seq} vs {par}"
    );
}
