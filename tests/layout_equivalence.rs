//! Layout equivalence: storage selection never changes the answer.
//!
//! `AdmmConfig::layout` (CLI `--layout`, env `DISTENC_LAYOUT`) picks the
//! residual storage behind [`distenc::tensor::TensorLayout`]. The
//! contract, pinned here at both `DISTENC_THREADS` settings `ci.sh`
//! runs this file under:
//!
//! * **coo ↔ tiled is bit-for-bit.** The tiled layout only reorders the
//!   entry walk *between* output rows (tiles are row-aligned and the
//!   counting sort is stable), so every per-row accumulation chain — and
//!   therefore every factor, RMSE, and trace value — is the sequential
//!   COO fold replayed exactly. This holds for the exact tier, the
//!   sketched tier (sampling gathers from the untouched canonical entry
//!   list), and streaming warm re-solves.
//! * **csf matches to rounding.** CSF tree walks genuinely reassociate
//!   the folds, so the pre-existing ~1e-9 tolerance applies, not bit
//!   equality.
//! * **Unknown layout names are typed errors**, never silent fallbacks —
//!   from both `LayoutKind::parse` (the `--layout` path) and
//!   `DISTENC_LAYOUT` (the one test touching the env lives alone in this
//!   binary's namespace; every other test selects layouts explicitly so
//!   it cannot race).

use distenc::core::{AdmmConfig, AdmmSolver, CompletionResult, LayoutKind, SolverTier};
use distenc::stream::{DeltaBatch, StreamingSolver};
use distenc::tensor::{CooTensor, KruskalTensor, TensorError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a71);
    let mut mask = CooTensor::try_new(shape.to_vec()).unwrap();
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn solve(observed: &CooTensor, cfg: AdmmConfig) -> CompletionResult {
    let laps = vec![None; observed.order()];
    AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap()
}

/// Every observable except wall-clock seconds, bitwise.
fn assert_bit_identical(a: &CompletionResult, b: &CompletionResult, label: &str) {
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.converged, b.converged, "{label}: converged flag");
    for (n, (fa, fb)) in a.model.factors().iter().zip(b.model.factors()).enumerate() {
        let same = fa
            .as_slice()
            .iter()
            .zip(fb.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{label}: factor {n} bits differ");
    }
    for (p, q) in a.trace.points.iter().zip(&b.trace.points) {
        assert_eq!(
            p.train_rmse.to_bits(),
            q.train_rmse.to_bits(),
            "{label}: train RMSE bits at iter {}",
            p.iter
        );
        assert_eq!(
            p.factor_delta.to_bits(),
            q.factor_delta.to_bits(),
            "{label}: factor delta bits at iter {}",
            p.iter
        );
    }
}

#[test]
fn tiled_layout_matches_coo_bit_for_bit() {
    // Ranks cover both specialized kernels (8, 16), the generic fallback
    // (17), and the rank-1 edge; shapes cover orders 3 and 4; both the
    // fused and unfused schedules run through the tiled kernels.
    let cases: &[(&[usize], usize)] = &[
        (&[13, 11, 9], 1),
        (&[13, 11, 9], 3),
        (&[13, 11, 9], 8),
        (&[13, 11, 9], 16),
        (&[13, 11, 9], 17),
        (&[7, 6, 5, 4], 3),
        (&[7, 6, 5, 4], 8),
    ];
    for &(shape, rank) in cases {
        let observed = planted(shape, rank, 60 * shape.len(), rank as u64 + 41);
        for fused in [true, false] {
            let base = AdmmConfig { rank, max_iters: 6, tol: 1e-12, fused, ..Default::default() };
            let coo = solve(&observed, base.clone().with_layout(LayoutKind::Coo));
            let tiled = solve(&observed, base.with_layout(LayoutKind::Tiled));
            let label = format!("shape {shape:?} rank {rank} fused {fused}");
            assert_bit_identical(&coo, &tiled, &label);
        }
    }
}

#[test]
fn csf_layout_matches_coo_to_rounding() {
    // CSF fiber walks reassociate the per-row folds; the established
    // contract (see the solver crate's own csf-vs-coo test) is agreement
    // to ~1e-9, not bit equality.
    let observed = planted(&[14, 12, 10], 3, 700, 19);
    let cfg = AdmmConfig { rank: 3, max_iters: 8, tol: 1e-12, ..Default::default() };
    let coo = solve(&observed, cfg.clone().with_layout(LayoutKind::Coo));
    let csf = solve(&observed, cfg.with_layout(LayoutKind::Csf));
    assert_eq!(coo.iterations, csf.iterations);
    for (n, (fa, fb)) in coo.model.factors().iter().zip(csf.model.factors()).enumerate() {
        let dist: f64 = fa
            .as_slice()
            .iter()
            .zip(fb.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist < 1e-9, "mode {n} factor distance {dist}");
    }
}

#[test]
fn sketched_tier_on_tiled_matches_sketched_on_coo_bitwise() {
    // The sampler draws from the canonical entry list, which the tiled
    // layout carries untouched (the tile permutation is a separate
    // structure), so even the *approximate* tier is layout-invariant to
    // the bit — sketch phase, phase-boundary exact refresh, and polish.
    let observed = planted(&[12, 10, 8], 3, 600, 53);
    let tier = SolverTier::Sketched { samples: observed.nnz() / 3, polish_iters: 2 };
    let cfg = AdmmConfig {
        rank: 3,
        max_iters: 7,
        tol: 1e-12,
        solver_tier: tier,
        ..Default::default()
    };
    let coo = solve(&observed, cfg.clone().with_layout(LayoutKind::Coo));
    let tiled = solve(&observed, cfg.with_layout(LayoutKind::Tiled));
    assert_bit_identical(&coo, &tiled, "sketched tier");
}

#[test]
fn streaming_warm_resolve_on_tiled_is_bit_exact() {
    // A warm re-solve after a delta must land bit-exactly where
    // `solve_from` lands on the final tensor, with the tiled layout doing
    // the residual work on both sides (the handoff carries the canonical
    // residual; tile structure is rebuilt against the new support).
    let observed = planted(&[10, 9, 8], 2, 250, 67);
    let cfg = AdmmConfig { rank: 2, max_iters: 6, tol: 1e-12, ..Default::default() }
        .with_layout(LayoutKind::Tiled);
    let mut s =
        StreamingSolver::new(observed.clone(), vec![None, None, None], cfg.clone()).unwrap();
    s.solve().unwrap();

    // One batch with inserts and an update, then the warm re-solve.
    let mut rng = StdRng::seed_from_u64(0x11ed);
    let mut inserts = Vec::new();
    for _ in 0..6 {
        let idx: Vec<usize> =
            [10usize, 9, 8].iter().map(|&d| rng.random_range(0..d)).collect();
        if observed.position_of(&idx).is_none() && inserts.iter().all(|(i, _)| *i != idx) {
            let v = rng.random_range(-1.0..1.0);
            inserts.push((idx, v));
        }
    }
    let upd_idx = observed.index(0).to_vec();
    let batch =
        DeltaBatch::try_new(&[10, 9, 8], &[0, 0, 0], inserts, vec![(upd_idx, 0.25)]).unwrap();
    s.apply(&batch).unwrap();

    let init = s.model().unwrap().clone();
    let final_tensor = s.observed().clone();
    let warm = s.solve().unwrap();
    let oracle = AdmmSolver::new(cfg)
        .unwrap()
        .solve_from(&final_tensor, &[None, None, None], &init)
        .unwrap();
    assert_bit_identical(&warm, &oracle, "tiled warm re-solve");
}

#[test]
fn unknown_layout_name_is_a_typed_parse_error() {
    // The `--layout` path: parse failures name the offender and never
    // fall back to a default layout.
    for bad in ["blocked", "coo,csf", "z-order", ""] {
        match LayoutKind::parse(bad) {
            Err(TensorError::InvalidLayout(name)) => {
                assert_eq!(name, bad, "error must carry the rejected name")
            }
            other => panic!("{bad:?} must be InvalidLayout, got {other:?}"),
        }
    }
    // Parsing is trim+case-insensitive on the accept side only.
    assert_eq!(LayoutKind::parse(" Tiled\n").unwrap(), LayoutKind::Tiled);
}

#[test]
fn invalid_layout_env_fails_the_solve_with_a_typed_error() {
    // The ONLY test in this binary touching DISTENC_LAYOUT (everything
    // else selects layouts via `with_layout`, which wins over the env, so
    // concurrent test threads cannot observe this mutation).
    let observed = planted(&[8, 7, 6], 2, 150, 91);
    let cfg = AdmmConfig { rank: 2, max_iters: 3, tol: 1e-12, ..Default::default() };
    let laps = vec![None; 3];

    std::env::set_var("DISTENC_LAYOUT", "zorder");
    let err = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &laps).unwrap_err();
    assert!(
        err.to_string().contains("unknown tensor layout \"zorder\""),
        "error must name the bad env value, got: {err}"
    );

    // A valid env value selects the layout (and matches the explicit
    // config selection bit-for-bit).
    std::env::set_var("DISTENC_LAYOUT", "tiled");
    let via_env = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &laps).unwrap();
    std::env::remove_var("DISTENC_LAYOUT");
    let via_cfg = solve(&observed, cfg.with_layout(LayoutKind::Tiled));
    assert_bit_identical(&via_env, &via_cfg, "env vs config selection");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any planted tensor, any rank/schedule in the strategy: the tiled
    /// solve is bit-identical to COO — factors, RMSE trace, and delta
    /// trace alike.
    #[test]
    fn tiled_solve_is_bitwise_coo_on_random_tensors(
        seed in 0u64..1000,
        rank in 1usize..6,
        fused_bit in 0u8..2,
    ) {
        let observed = planted(&[9, 8, 7], rank, 220, seed.wrapping_mul(13).wrapping_add(3));
        let cfg = AdmmConfig {
            rank,
            max_iters: 5,
            tol: 1e-12,
            fused: fused_bit == 1,
            ..Default::default()
        };
        let coo = solve(&observed, cfg.clone().with_layout(LayoutKind::Coo));
        let tiled = solve(&observed, cfg.with_layout(LayoutKind::Tiled));
        prop_assert_eq!(coo.iterations, tiled.iterations);
        for (fa, fb) in coo.model.factors().iter().zip(tiled.model.factors()) {
            for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (p, q) in coo.trace.points.iter().zip(&tiled.trace.points) {
            prop_assert_eq!(p.train_rmse.to_bits(), q.train_rmse.to_bits());
            prop_assert_eq!(p.factor_delta.to_bits(), q.factor_delta.to_bits());
        }
    }
}
