//! Empirical verification of the paper's complexity analysis (§III-E):
//! the engine's accounting counters must scale the way Lemmas 1–3 say.

use distenc::core::{AdmmConfig, DisTenC, WorkloadSpec};
use distenc::dataflow::{Cluster, ClusterConfig, Metrics};
use distenc::datagen::synthetic::scalability_tensor;

fn run(dim: usize, nnz: usize, rank: usize, iters: usize, machines: usize) -> Metrics {
    let observed = scalability_tensor(&[dim; 3], nnz, 99);
    // Zero scheduling latency: the lemmas are about *work*, and at
    // test-sized workloads a fixed per-stage cost would drown the signal.
    let mut cc = ClusterConfig::test(machines).with_time_budget(None);
    cc.cost.stage_latency = 0.0;
    let cluster = Cluster::new(cc);
    let cfg = AdmmConfig { rank, max_iters: iters, tol: 1e-15, ..Default::default() };
    DisTenC::new(&cluster, cfg)
        .unwrap()
        .solve(&observed, &[None, None, None])
        .unwrap();
    cluster.metrics()
}

#[test]
fn lemma1_time_scales_linearly_in_nnz() {
    // Lemma 1's per-iteration cost is dominated by O(nnz·R) terms; with
    // fixed dims/rank/machines, doubling nnz should roughly double the
    // compute-dominated virtual time.
    let t1 = run(60, 20_000, 6, 4, 2).virtual_seconds;
    let t2 = run(60, 40_000, 6, 4, 2).virtual_seconds;
    let ratio = t2 / t1;
    assert!(
        (1.5..2.6).contains(&ratio),
        "nnz doubled, time ratio {ratio:.2} should be ≈ 2"
    );
}

#[test]
fn lemma1_time_scales_linearly_in_rank_at_fixed_sparsity() {
    // At small I the R² terms are negligible and the O(nnz·N·R) sparse
    // sweeps dominate: time ≈ linear in R.
    let t1 = run(50, 30_000, 4, 4, 2).virtual_seconds;
    let t2 = run(50, 30_000, 8, 4, 2).virtual_seconds;
    let ratio = t2 / t1;
    assert!(
        (1.5..2.6).contains(&ratio),
        "rank doubled, time ratio {ratio:.2} should be ≈ 2"
    );
}

#[test]
fn lemma2_memory_scales_with_nnz_and_rank() {
    let base = run(60, 20_000, 4, 2, 2).peak_resident;
    let more_nnz = run(60, 40_000, 4, 2, 2).peak_resident;
    let more_rank = run(60, 20_000, 8, 2, 2).peak_resident;
    assert!(more_nnz as f64 > base as f64 * 1.5, "{base} → {more_nnz}");
    // Factor state is a minor part at this sparsity; rank growth must
    // still be visible.
    assert!(more_rank > base, "{base} → {more_rank}");
}

#[test]
fn lemma2_memory_splits_across_machines() {
    let m2 = run(60, 40_000, 6, 2, 2).peak_resident;
    let m8 = run(60, 40_000, 6, 2, 8).peak_resident;
    assert!(
        (m8 as f64) < m2 as f64 * 0.5,
        "per-machine peak must drop with machines: {m2} → {m8}"
    );
}

#[test]
fn lemma3_shuffle_has_setup_plus_per_iteration_structure() {
    // O(nnz) one-time partitioning plus O(N·M·I·R + N·M·R²) per
    // iteration: the per-iteration increment must be constant.
    let s2 = run(60, 30_000, 6, 2, 4).shuffled_bytes;
    let s4 = run(60, 30_000, 6, 4, 4).shuffled_bytes;
    let s6 = run(60, 30_000, 6, 6, 4).shuffled_bytes;
    let inc1 = s4 - s2;
    let inc2 = s6 - s4;
    let rel = (inc1 as f64 - inc2 as f64).abs() / inc1 as f64;
    assert!(rel < 0.05, "per-iteration shuffle must be constant: {inc1} vs {inc2}");
    // And the setup part scales with nnz.
    let s_small = run(60, 15_000, 6, 2, 4).shuffled_bytes;
    assert!(s2 > s_small, "larger input must shuffle more at setup");
}

#[test]
fn lemma3_per_iteration_shuffle_scales_with_rank() {
    // The per-iteration factor-row traffic is O(I·R): doubling R should
    // roughly double the increment.
    let inc = |rank: usize| {
        let a = run(60, 30_000, rank, 2, 4).shuffled_bytes;
        let b = run(60, 30_000, rank, 4, 4).shuffled_bytes;
        (b - a) as f64
    };
    let r = inc(8) / inc(4);
    assert!((1.7..2.3).contains(&r), "rank-doubling shuffle ratio {r:.2}");
}

#[test]
fn model_and_engine_agree_on_shuffle_order_of_magnitude() {
    // The analytical model (used at 10⁹ scale) and the engine (used at
    // runnable scale) must describe the same algorithm.
    let dim = 60usize;
    let nnz = 30_000usize;
    let rank = 6usize;
    let iters = 4usize;
    let machines = 4usize;
    let metrics = run(dim, nnz, rank, iters, machines);

    use distenc::core::model::{DisTenCModel, MethodModel};
    let w = WorkloadSpec {
        dims: vec![dim as u64; 3],
        nnz: nnz as u64,
        rank: rank as u64,
        eigen_k: 0,
        iters: iters as u64,
    };
    // Match the engine configuration used by `run` (zero latency).
    let mut cc = ClusterConfig::test(machines).with_time_budget(None);
    cc.cost.stage_latency = 0.0;
    let model_seconds = DisTenCModel.seconds(&w, &cc);
    let ratio = model_seconds / metrics.virtual_seconds;
    assert!(
        (0.33..3.0).contains(&ratio),
        "model {model_seconds}s vs engine {}s",
        metrics.virtual_seconds
    );
}
