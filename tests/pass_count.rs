//! The pass-count gate: fusion saves exactly one sweep over the nonzeros
//! per iteration (requires `--features pass-count`; without the feature
//! this file compiles to nothing).
//!
//! Every entry-sweep kernel ticks `distenc_dataflow::passes` once per
//! *invocation* — never per thread, chunk, or block — so the counts are
//! identical on any host and under any `DISTENC_THREADS` setting. The
//! contract (see `distenc-core`'s `solver` module docs): a steady-state
//! iteration of an order-N solve sweeps the entry list
//!
//! * **N+1** times unfused — N MTTKRPs plus the residual refresh,
//! * **N** times fused — N−1 MTTKRPs, one fused refresh+MTTKRP sweep, and
//!   a mode-0 update served from the stash without touching the entries.
//!
//! Methodology mirrors `tests/alloc_budget.rs`: the solver is
//! deterministic, so runs differing only in `max_iters` (2 vs 10) do
//! identical setup; the sweep-count difference over the 8 extra
//! iterations is exactly the per-iteration cost. One `#[test]` because
//! the counter is process-global.

#![cfg(feature = "pass-count")]

use distenc::core::{AdmmConfig, AdmmSolver, DisTenC};
use distenc::dataflow::passes;
use distenc::dataflow::{Cluster, ClusterConfig};
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a55);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// Entry sweeps per steady-state iteration of the host solver.
fn host_sweeps_per_iter(observed: &CooTensor, cfg: &AdmmConfig) -> f64 {
    let count = |iters: usize| {
        let cfg = AdmmConfig { max_iters: iters, ..cfg.clone() };
        let laps = vec![None; observed.order()];
        let before = passes::sweeps();
        let res = AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, iters, "must not converge early");
        passes::sweeps() - before
    };
    (count(10) - count(2)) as f64 / 8.0
}

/// Entry sweeps per steady-state iteration of the distributed solver.
fn distenc_sweeps_per_iter(observed: &CooTensor, cfg: &AdmmConfig) -> f64 {
    let count = |iters: usize| {
        let cfg = AdmmConfig { max_iters: iters, ..cfg.clone() };
        let laps = vec![None; observed.order()];
        let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
        let before = passes::sweeps();
        let res = DisTenC::new(&cluster, cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, iters, "must not converge early");
        passes::sweeps() - before
    };
    (count(10) - count(2)) as f64 / 8.0
}

#[test]
fn fused_iterations_sweep_the_nonzeros_one_time_fewer() {
    let base = AdmmConfig { rank: 3, tol: 1e-300, ..Default::default() };
    let order3 = planted(&[14, 12, 10], 3, 600, 2);
    let order4 = planted(&[9, 8, 7, 6], 3, 700, 3);

    // --- Host solver, COO kernels. -----------------------------------
    let fused = AdmmConfig { fused: true, ..base.clone() };
    let plain = AdmmConfig { fused: false, ..base.clone() };
    assert_eq!(host_sweeps_per_iter(&order3, &fused), 3.0, "order 3 fused");
    assert_eq!(host_sweeps_per_iter(&order3, &plain), 4.0, "order 3 unfused");
    assert_eq!(host_sweeps_per_iter(&order4, &fused), 4.0, "order 4 fused");
    assert_eq!(host_sweeps_per_iter(&order4, &plain), 5.0, "order 4 unfused");

    // --- Host solver, CSF tree walks. --------------------------------
    let csf_fused = AdmmConfig { use_csf: true, ..fused.clone() };
    let csf_plain = AdmmConfig { use_csf: true, ..plain.clone() };
    assert_eq!(host_sweeps_per_iter(&order3, &csf_fused), 3.0, "CSF fused");
    assert_eq!(host_sweeps_per_iter(&order3, &csf_plain), 4.0, "CSF unfused");

    // --- Distributed solver, block-local kernels. --------------------
    assert_eq!(distenc_sweeps_per_iter(&order3, &fused), 3.0, "distenc fused");
    assert_eq!(distenc_sweeps_per_iter(&order3, &plain), 4.0, "distenc unfused");
}
