//! The pass-count gate: fusion saves exactly one sweep over the nonzeros
//! per iteration (requires `--features pass-count`; without the feature
//! this file compiles to nothing).
//!
//! Every entry-sweep kernel ticks `distenc_dataflow::passes` once per
//! *invocation* — never per thread, chunk, or block — so the counts are
//! identical on any host and under any `DISTENC_THREADS` setting. The
//! contract (see `distenc-core`'s `solver` module docs): a steady-state
//! iteration of an order-N solve sweeps the entry list
//!
//! * **N+1** times unfused — N MTTKRPs plus the residual refresh,
//! * **N** times fused — N−1 MTTKRPs, one fused refresh+MTTKRP sweep, and
//!   a mode-0 update served from the stash without touching the entries.
//!
//! Alongside sweeps, the instrument counts **entries touched**, which is
//! what prices the sketched tier: a sampled gather of `S` draws charges
//! `S` entries but zero sweeps (it never traverses the full list). A
//! steady-state *sketch-phase* iteration therefore touches exactly
//! `N·samples` entries — `N−1` sampled MTTKRPs plus one fused sampled
//! sweep that banks the mode-0 estimate — where an exact fused iteration
//! touches `N·nnz`. The gate below pins both counts exactly and the
//! `≥ 2×` discount at the accuracy gate's `samples = nnz/4` budget.
//!
//! Methodology mirrors `tests/alloc_budget.rs`: the solver is
//! deterministic, so runs differing only in `max_iters` (2 vs 10) do
//! identical setup; the sweep-count difference over the 8 extra
//! iterations is exactly the per-iteration cost. For the sketched tier
//! the polish budget is held fixed while `max_iters` grows, so the 8
//! extra iterations are all sketch-phase iterations (the polish phase,
//! the prologue, and the phase-boundary exact refresh are identical in
//! both runs and cancel). One `#[test]` because the counter is
//! process-global.

#![cfg(feature = "pass-count")]

use distenc::core::{AdmmConfig, AdmmSolver, DisTenC, LayoutKind, SolverTier};
use distenc::dataflow::passes;
use distenc::dataflow::{Cluster, ClusterConfig};
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a55);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// Entry sweeps per steady-state iteration of the host solver.
fn host_sweeps_per_iter(observed: &CooTensor, cfg: &AdmmConfig) -> f64 {
    let count = |iters: usize| {
        let cfg = AdmmConfig { max_iters: iters, ..cfg.clone() };
        let laps = vec![None; observed.order()];
        let before = passes::sweeps();
        let res = AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, iters, "must not converge early");
        passes::sweeps() - before
    };
    (count(10) - count(2)) as f64 / 8.0
}

/// Entry sweeps per steady-state iteration of the distributed solver.
fn distenc_sweeps_per_iter(observed: &CooTensor, cfg: &AdmmConfig) -> f64 {
    let count = |iters: usize| {
        let cfg = AdmmConfig { max_iters: iters, ..cfg.clone() };
        let laps = vec![None; observed.order()];
        let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
        let before = passes::sweeps();
        let res = DisTenC::new(&cluster, cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, iters, "must not converge early");
        passes::sweeps() - before
    };
    (count(10) - count(2)) as f64 / 8.0
}

/// Entries touched per steady-state iteration of the host solver.
fn host_entries_per_iter(observed: &CooTensor, cfg: &AdmmConfig) -> f64 {
    let count = |iters: usize| {
        let cfg = AdmmConfig { max_iters: iters, ..cfg.clone() };
        let laps = vec![None; observed.order()];
        let before = passes::entries_touched();
        let res = AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, iters, "must not converge early");
        passes::entries_touched() - before
    };
    (count(10) - count(2)) as f64 / 8.0
}

/// (sweeps, entries) per steady-state *sketch-phase* iteration: the
/// polish budget stays fixed while `max_iters` grows, so the differenced
/// iterations are all sampled ones.
fn sketched_per_iter(
    observed: &CooTensor,
    cfg: &AdmmConfig,
    samples: usize,
    polish_iters: usize,
) -> (f64, f64) {
    let count = |sketch_iters: usize| {
        let cfg = AdmmConfig {
            max_iters: polish_iters + sketch_iters,
            solver_tier: SolverTier::Sketched { samples, polish_iters },
            ..cfg.clone()
        };
        let laps = vec![None; observed.order()];
        let (s0, e0) = (passes::sweeps(), passes::entries_touched());
        let res = AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap();
        assert_eq!(res.iterations, polish_iters + sketch_iters, "must not converge early");
        (passes::sweeps() - s0, passes::entries_touched() - e0)
    };
    let (s_short, e_short) = count(2);
    let (s_long, e_long) = count(10);
    ((s_long - s_short) as f64 / 8.0, (e_long - e_short) as f64 / 8.0)
}

#[test]
fn fused_iterations_sweep_the_nonzeros_one_time_fewer() {
    let base = AdmmConfig { rank: 3, tol: 1e-300, ..Default::default() };
    let order3 = planted(&[14, 12, 10], 3, 600, 2);
    let order4 = planted(&[9, 8, 7, 6], 3, 700, 3);

    // --- Host solver, COO kernels. -----------------------------------
    let fused = AdmmConfig { fused: true, ..base.clone() };
    let plain = AdmmConfig { fused: false, ..base.clone() };
    assert_eq!(host_sweeps_per_iter(&order3, &fused), 3.0, "order 3 fused");
    assert_eq!(host_sweeps_per_iter(&order3, &plain), 4.0, "order 3 unfused");
    assert_eq!(host_sweeps_per_iter(&order4, &fused), 4.0, "order 4 fused");
    assert_eq!(host_sweeps_per_iter(&order4, &plain), 5.0, "order 4 unfused");

    // --- Host solver, CSF tree walks. --------------------------------
    let csf_fused = AdmmConfig { use_csf: true, ..fused.clone() };
    let csf_plain = AdmmConfig { use_csf: true, ..plain.clone() };
    assert_eq!(host_sweeps_per_iter(&order3, &csf_fused), 3.0, "CSF fused");
    assert_eq!(host_sweeps_per_iter(&order3, &csf_plain), 4.0, "CSF unfused");

    // --- Host solver, tiled layout. ----------------------------------
    // Cache-blocking reorders the entry walk but must not add passes:
    // the tiled sweep is one traversal of the (permuted) entry list.
    let tiled_fused = AdmmConfig { layout: Some(LayoutKind::Tiled), ..fused.clone() };
    let tiled_plain = AdmmConfig { layout: Some(LayoutKind::Tiled), ..plain.clone() };
    assert_eq!(host_sweeps_per_iter(&order3, &tiled_fused), 3.0, "tiled fused");
    assert_eq!(host_sweeps_per_iter(&order3, &tiled_plain), 4.0, "tiled unfused");

    // --- Distributed solver, block-local kernels. --------------------
    assert_eq!(distenc_sweeps_per_iter(&order3, &fused), 3.0, "distenc fused");
    assert_eq!(distenc_sweeps_per_iter(&order3, &plain), 4.0, "distenc unfused");

    // --- Entry touches: exact vs sketched. ---------------------------
    // An exact fused iteration touches every nonzero on each of its N
    // sweeps; a sketch-phase iteration touches exactly N·samples — and
    // performs *zero* full sweeps (sampled gathers are charged as
    // entries only).
    let nnz = order3.nnz() as f64;
    assert_eq!(host_entries_per_iter(&order3, &fused), 3.0 * nnz, "exact entries");
    assert_eq!(host_entries_per_iter(&order3, &tiled_fused), 3.0 * nnz, "tiled entries");
    let samples = order3.nnz() / 4;
    let (sk_sweeps, sk_entries) = sketched_per_iter(&order3, &base, samples, 2);
    assert_eq!(sk_sweeps, 0.0, "sketch-phase iterations do no full sweeps");
    assert_eq!(sk_entries, 3.0 * samples as f64, "sketched entries = N·samples");
    assert!(
        sk_entries <= 3.0 * samples as f64,
        "sketched iteration must touch ≤ samples·N entries"
    );
    let ratio = (3.0 * nnz) / sk_entries;
    assert!(ratio >= 2.0, "entry-touch discount {ratio:.2} below the 2x bar");
}
