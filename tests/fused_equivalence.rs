//! The fused N-pass schedule is a *bit-for-bit* no-op on results.
//!
//! `AdmmConfig::fused` (the default) fuses the end-of-iteration residual
//! refresh with the next iteration's mode-0 MTTKRP into one sweep over
//! the nonzeros. Because the fused kernels replay exactly the same
//! floating-point folds as the separate sweeps (see
//! `distenc_tensor::fused`), every observable of a solve — iterates,
//! trace statistics, and for the distributed driver even the virtual
//! clock — must match the unfused schedule to the bit, across ranks
//! (including the specialized R=8/16 kernels and the generic fallback),
//! tensor orders, the COO and CSF layouts, and both execution backends.

use distenc::core::{AdmmConfig, AdmmSolver, CompletionResult, DisTenC};
use distenc::dataflow::{Cluster, ClusterConfig, ExecMode};
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf05e);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// Every observable except wall-clock seconds, bitwise.
fn assert_bit_identical(fused: &CompletionResult, plain: &CompletionResult, label: &str) {
    assert_eq!(fused.iterations, plain.iterations, "{label}: iterations");
    assert_eq!(fused.converged, plain.converged, "{label}: converged flag");
    for (n, (a, b)) in fused.model.factors().iter().zip(plain.model.factors()).enumerate() {
        let same = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{label}: factor {n} bits differ");
    }
    for (p, q) in fused.trace.points.iter().zip(&plain.trace.points) {
        assert_eq!(
            p.train_rmse.to_bits(),
            q.train_rmse.to_bits(),
            "{label}: train RMSE bits at iter {}",
            p.iter
        );
        assert_eq!(
            p.factor_delta.to_bits(),
            q.factor_delta.to_bits(),
            "{label}: factor delta bits at iter {}",
            p.iter
        );
    }
}

#[test]
fn host_solver_fused_matches_unfused_bit_for_bit() {
    // Ranks cover both specialized kernels (8, 16), their neighbors, and
    // the rank-1 edge; shapes cover orders 3 and 4.
    let cases: &[(&[usize], usize)] = &[
        (&[13, 11, 9], 1),
        (&[13, 11, 9], 3),
        (&[13, 11, 9], 8),
        (&[13, 11, 9], 16),
        (&[13, 11, 9], 17),
        (&[7, 6, 5, 4], 3),
        (&[7, 6, 5, 4], 8),
    ];
    for &(shape, rank) in cases {
        let observed = planted(shape, rank, 60 * shape.len(), rank as u64 + 5);
        for use_csf in [false, true] {
            for exec in [ExecMode::Sequential, ExecMode::Threads(4)] {
                let base = AdmmConfig {
                    rank,
                    max_iters: 6,
                    tol: 1e-12,
                    use_csf,
                    exec,
                    ..Default::default()
                };
                let lapses = vec![None; shape.len()];
                let fused = AdmmSolver::new(base.clone().with_fused(true))
                    .unwrap()
                    .solve(&observed, &lapses)
                    .unwrap();
                let plain = AdmmSolver::new(base.with_fused(false))
                    .unwrap()
                    .solve(&observed, &lapses)
                    .unwrap();
                let label =
                    format!("shape {shape:?} rank {rank} csf {use_csf} exec {exec:?}");
                assert_bit_identical(&fused, &plain, &label);
            }
        }
    }
}

#[test]
fn host_solver_fusion_is_transparent_across_early_convergence() {
    // A loose tolerance converges before the cap, exercising the
    // `fuse_next = false` epilogue (the banked MTTKRP would be dead work);
    // the converged iterate must still match bitwise.
    let observed = planted(&[12, 10, 8], 2, 500, 77);
    let base = AdmmConfig { rank: 2, max_iters: 200, tol: 1e-5, ..Default::default() };
    let fused = AdmmSolver::new(base.clone().with_fused(true))
        .unwrap()
        .solve(&observed, &[None, None, None])
        .unwrap();
    let plain = AdmmSolver::new(base.with_fused(false))
        .unwrap()
        .solve(&observed, &[None, None, None])
        .unwrap();
    assert!(fused.converged, "case must actually converge early");
    assert_bit_identical(&fused, &plain, "early convergence");
}

#[test]
fn distenc_fused_matches_unfused_including_virtual_clock() {
    // The cluster backend charges the fused sweep exactly where the
    // unfused refresh charged, so even the virtual-time trace stamps and
    // the communication totals are unchanged.
    for rank in [1usize, 3, 8] {
        let observed = planted(&[15, 12, 10], rank, 500, rank as u64 + 23);
        let base = AdmmConfig { rank, max_iters: 5, tol: 1e-12, ..Default::default() };
        let run = |cfg: AdmmConfig| {
            let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
            let res = DisTenC::new(&cluster, cfg)
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            let m = cluster.metrics();
            (res, m.shuffled_bytes, m.broadcast_bytes, m.stages, cluster.now())
        };
        let (fused, f_shuf, f_bcast, f_stages, f_now) = run(base.clone().with_fused(true));
        let (plain, p_shuf, p_bcast, p_stages, p_now) = run(base.with_fused(false));
        let label = format!("distenc rank {rank}");
        assert_bit_identical(&fused, &plain, &label);
        for (p, q) in fused.trace.points.iter().zip(&plain.trace.points) {
            assert_eq!(
                p.seconds.to_bits(),
                q.seconds.to_bits(),
                "{label}: virtual clock bits at iter {}",
                p.iter
            );
        }
        assert_eq!(f_shuf, p_shuf, "{label}: shuffled bytes");
        assert_eq!(f_bcast, p_bcast, "{label}: broadcast bytes");
        assert_eq!(f_stages, p_stages, "{label}: stage count");
        assert_eq!(f_now.to_bits(), p_now.to_bits(), "{label}: final virtual time");
    }
}
