//! Property-based tests (proptest) of the core invariants across crates.

use distenc::graph::builders::tridiagonal_chain;
use distenc::graph::Laplacian;
use distenc::linalg::{Cholesky, Mat};
use distenc::partition::{greedy_boundaries, TensorBlocks};
use distenc::tensor::khatri_rao::khatri_rao_skip;
use distenc::tensor::mttkrp::{gram_product, mttkrp};
use distenc::tensor::residual::{completed_mttkrp, residual};
use distenc::tensor::split::split_missing;
use distenc::tensor::{io, CooTensor, DenseTensor, KruskalTensor};
use proptest::prelude::*;

/// Recursive dense-tensor equality helper for proptest contexts.
fn check_equal_rec(
    a: &DenseTensor,
    b: &DenseTensor,
    idx: &mut Vec<usize>,
    level: usize,
) -> std::result::Result<(), proptest::test_runner::TestCaseError> {
    if level == a.shape().len() {
        prop_assert!((a.get(idx) - b.get(idx)).abs() < 1e-10);
        return Ok(());
    }
    for i in 0..a.shape()[level] {
        idx[level] = i;
        check_equal_rec(a, b, idx, level + 1)?;
    }
    Ok(())
}

/// Strategy: a random sparse tensor with shape in [2,8]³ and 1–60 entries.
fn coo_strategy() -> impl Strategy<Value = CooTensor> {
    (
        prop::collection::vec(2usize..=8, 3),
        1usize..=60,
        any::<u64>(),
    )
        .prop_map(|(shape, nnz, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = CooTensor::new(shape.clone());
            for _ in 0..nnz {
                let idx: Vec<usize> =
                    shape.iter().map(|&d| rng.random_range(0..d)).collect();
                t.push(&idx, rng.random::<f64>() * 4.0 - 2.0).unwrap();
            }
            t.sort_dedup();
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gram_identity_for_khatri_rao(seed in any::<u64>(), rows_a in 2usize..7, rows_b in 2usize..7, rank in 1usize..5) {
        // (A ⊙ B)ᵀ(A ⊙ B) = AᵀA ∗ BᵀB (Eq. 12).
        let a = Mat::random(rows_a, rank, seed);
        let b = Mat::random(rows_b, rank, seed ^ 1);
        let kr = distenc::tensor::khatri_rao::khatri_rao(&a, &b).unwrap();
        let lhs = kr.gram();
        let rhs = a.gram().hadamard(&b.gram()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn mttkrp_matches_dense_oracle(t in coo_strategy(), seed in any::<u64>()) {
        let rank = 3;
        let model = KruskalTensor::random(t.shape(), rank, seed);
        for mode in 0..t.order() {
            let fast = mttkrp(&t, model.factors(), mode).unwrap();
            let dense = DenseTensor::from_coo(&t);
            let u = khatri_rao_skip(model.factors(), mode).unwrap();
            let want = dense.matricize(mode).matmul(&u).unwrap();
            for (x, y) in fast.as_slice().iter().zip(want.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn blockwise_mttkrp_sums_to_global(t in coo_strategy(), seed in any::<u64>(), parts in 1usize..4) {
        // Σ over blocks of per-block MTTKRP = whole-tensor MTTKRP — the
        // correctness basis of the distributed stage.
        let rank = 2;
        let model = KruskalTensor::random(t.shape(), rank, seed);
        let blocks = TensorBlocks::build(&t, &vec![parts; t.order()]);
        for mode in 0..t.order() {
            let global = mttkrp(&t, model.factors(), mode).unwrap();
            let mut acc = Mat::zeros(t.shape()[mode], rank);
            for (_, block) in &blocks.blocks {
                let part = mttkrp(block, model.factors(), mode).unwrap();
                acc.axpy(1.0, &part).unwrap();
            }
            for (x, y) in acc.as_slice().iter().zip(global.as_slice()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn residual_trick_matches_completed_dense(t in coo_strategy(), seed in any::<u64>()) {
        // Eq. 16 on arbitrary random inputs.
        let rank = 2;
        let model = KruskalTensor::random(t.shape(), rank, seed);
        let e = residual(&t, &model).unwrap();
        let grams: Vec<Mat> = model.factors().iter().map(Mat::gram).collect();
        let mut x = DenseTensor::from_kruskal(&model);
        for (idx, v) in t.iter() {
            x.set(idx, v);
        }
        for mode in 0..t.order() {
            let fast = completed_mttkrp(&e, &model, &grams, mode).unwrap();
            let u = khatri_rao_skip(model.factors(), mode).unwrap();
            let naive = x.matricize(mode).matmul(&u).unwrap();
            for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gram_product_matches_explicit(seed in any::<u64>(), rank in 1usize..5) {
        let shape = [5usize, 4, 6];
        let model = KruskalTensor::random(&shape, rank, seed);
        let grams: Vec<Mat> = model.factors().iter().map(Mat::gram).collect();
        for mode in 0..3 {
            let fast = gram_product(&grams, mode).unwrap();
            let u = khatri_rao_skip(model.factors(), mode).unwrap();
            let want = u.gram();
            for (a, b) in fast.as_slice().iter().zip(want.as_slice()) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn greedy_boundaries_invariants(theta in prop::collection::vec(0usize..50, 1..40), parts in 1usize..8) {
        let b = greedy_boundaries(&theta, parts);
        prop_assert_eq!(b.len(), parts);
        prop_assert_eq!(*b.last().unwrap(), theta.len());
        for w in b.windows(2) {
            prop_assert!(w[0] <= w[1], "boundaries must be non-decreasing");
        }
    }

    #[test]
    fn blocks_partition_the_tensor(t in coo_strategy(), parts in 1usize..4) {
        let blocks = TensorBlocks::build(&t, &vec![parts; t.order()]);
        prop_assert_eq!(blocks.total_nnz(), t.nnz());
        let total_from_mode_load: usize = blocks.mode_load(0).iter().sum();
        prop_assert_eq!(total_from_mode_load, t.nnz());
        for (id, block) in &blocks.blocks {
            for (idx, _) in block.iter() {
                prop_assert_eq!(blocks.block_of(idx), *id);
            }
        }
    }

    #[test]
    fn split_is_partition_of_entries(t in coo_strategy(), rate in 0.0f64..1.0, seed in any::<u64>()) {
        let s = split_missing(&t, rate, seed);
        prop_assert_eq!(s.train.nnz() + s.test.nnz(), t.nnz());
        let mut got: Vec<(Vec<usize>, u64)> = s
            .train
            .iter()
            .chain(s.test.iter())
            .map(|(i, v)| (i.to_vec(), v.to_bits()))
            .collect();
        got.sort();
        let mut want: Vec<(Vec<usize>, u64)> =
            t.iter().map(|(i, v)| (i.to_vec(), v.to_bits())).collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn coo_io_round_trips(t in coo_strategy()) {
        let mut buf = Vec::new();
        io::write_coo(&t, &mut buf).unwrap();
        let back = io::read_coo(&buf[..]).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        prop_assert_eq!(back.nnz(), t.nnz());
        for (a, b) in back.iter().zip(t.iter()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert!((a.1 - b.1).abs() < 1e-12 * (1.0 + b.1.abs()));
        }
    }

    #[test]
    fn cholesky_solves_are_accurate(seed in any::<u64>(), n in 1usize..10) {
        let mut a = Mat::random(n + 2, n, seed).gram();
        a.add_diag(0.5);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::random(n, 3, seed ^ 2);
        let x = ch.solve_mat(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        for (u, v) in ax.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn shifted_inverse_solves_shifted_system(n in 4usize..20, k in 1usize..6, seed in any::<u64>()) {
        // (ηI + αL)·apply(η, α, R) ≈ R when the basis is complete; with a
        // truncated basis the residual must stay bounded by the complement
        // spread.
        let lap = Laplacian::from_similarity(tridiagonal_chain(n));
        let full = lap.truncate_dense(n).unwrap();
        let rhs = Mat::random(n, 2, seed);
        let (eta, alpha) = (1.0, 0.7);
        let out = full.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
        let mut shifted = lap.to_dense().scaled(alpha);
        shifted.add_diag(eta);
        let back = shifted.matmul(&out).unwrap();
        for (a, b) in back.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        // Truncated: still finite and shape-correct.
        let trunc = lap.truncate_dense(k.min(n)).unwrap();
        let approx = trunc.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
        prop_assert!(approx.is_finite());
        prop_assert_eq!(approx.shape(), rhs.shape());
    }

    #[test]
    fn ttm_matches_dense_oracle(t in coo_strategy(), seed in any::<u64>(), cols in 1usize..4) {
        use distenc::tensor::ttm::{ttm, ttm_dense};
        let mode = (seed as usize) % t.order();
        let a = Mat::random(t.shape()[mode], cols, seed);
        let fast = ttm(&t, &a, mode).unwrap();
        let want = ttm_dense(&DenseTensor::from_coo(&t), &a, mode).unwrap();
        let got = DenseTensor::from_coo(&fast);
        prop_assert_eq!(got.shape(), want.shape());
        let mut idx = vec![0usize; t.order()];
        check_equal_rec(&got, &want, &mut idx, 0)?;
    }

    #[test]
    fn engine_sample_within_bounds(n in 1usize..500, frac in 0.0f64..1.0, seed in any::<u64>()) {
        use distenc::dataflow::{Cluster, ClusterConfig, Dist};
        let c = Cluster::new(ClusterConfig::test(2).with_time_budget(None));
        let d = Dist::from_vec(&c, (0..n as u32).collect(), 3).unwrap();
        let s = d.sample(frac, seed).unwrap();
        prop_assert!(s.len() <= n);
        // Sampled records are a subset of the originals.
        let set: std::collections::BTreeSet<u32> = s.collect().unwrap().into_iter().collect();
        prop_assert!(set.iter().all(|&x| (x as usize) < n));
    }

    #[test]
    fn engine_count_by_key_sums_to_total(pairs in prop::collection::vec((0u8..10, any::<u16>()), 1..100)) {
        use distenc::dataflow::{Cluster, ClusterConfig, Dist};
        let c = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
        let n = pairs.len() as u64;
        let d = Dist::from_vec(&c, pairs, 4).unwrap();
        let counts = d.count_by_key(3).unwrap().collect().unwrap();
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn kruskal_norm_matches_dense(seed in any::<u64>(), rank in 1usize..4) {
        let model = KruskalTensor::random(&[4, 5, 3], rank, seed);
        let dense = DenseTensor::from_kruskal(&model);
        let a = model.frob_norm_sq();
        let b = dense.frob_norm_sq();
        prop_assert!((a - b).abs() < 1e-8 * (1.0 + b));
    }
}
