//! Parallel-vs-sequential equivalence suite.
//!
//! The contract of the thread-pool backend (DESIGN.md §9) is that
//! `ExecMode::Threads(n)` is *bit-identical* to `ExecMode::Sequential`
//! for every `n` — not merely close. These properties drive the full
//! solver stack (serial ADMM, distributed DisTenC, and the dataflow
//! primitives) under both backends across random tensors, ranks, and
//! mode counts, and compare results with `==` on the raw f64 bits.

use distenc::core::{AdmmConfig, AdmmSolver, DisTenC};
use distenc::dataflow::{Cluster, ClusterConfig, Dist, ExecMode, Executor};
use distenc::graph::Laplacian;
use distenc::tensor::mttkrp::{mttkrp, mttkrp_blocked};
use distenc::tensor::residual::{residual, residual_into_exec};
use distenc::tensor::CooTensor;
use proptest::prelude::*;

/// Random sparse tensor with 2–4 modes, dims in [2,8], 1–60 entries.
fn coo_strategy() -> impl Strategy<Value = CooTensor> {
    (
        prop::collection::vec(2usize..=8, 2..=4),
        1usize..=60,
        any::<u64>(),
    )
        .prop_map(|(shape, nnz, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = CooTensor::new(shape.clone());
            for _ in 0..nnz {
                let idx: Vec<usize> =
                    shape.iter().map(|&d| rng.random_range(0..d)).collect();
                t.push(&idx, rng.random::<f64>() * 4.0 - 2.0).unwrap();
            }
            t.sort_dedup();
            t
        })
}

/// The thread counts the suite proves equivalent to sequential.
const THREAD_COUNTS: [usize; 3] = [2, 3, 8];

fn solver_cfg(rank: usize, seed: u64, exec: ExecMode) -> AdmmConfig {
    AdmmConfig {
        rank,
        max_iters: 4,
        tol: 1e-12, // never trips in 4 iterations: all runs do equal work
        seed,
        exec,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Serial ADMM: factors, convergence traces (timestamps, RMSE,
    /// deltas), and recomputed residuals are bit-identical across
    /// backends.
    #[test]
    fn admm_solver_threads_bit_identical(
        observed in coo_strategy(),
        rank in 1usize..4,
        seed in any::<u64>(),
    ) {
        let laps: Vec<Option<&Laplacian>> = vec![None; observed.order()];
        let base = AdmmSolver::new(solver_cfg(rank, seed, ExecMode::Sequential))
            .unwrap()
            .solve(&observed, &laps)
            .unwrap();
        let base_resid = residual(&observed, &base.model).unwrap();
        for n in THREAD_COUNTS {
            let run = AdmmSolver::new(solver_cfg(rank, seed, ExecMode::Threads(n)))
                .unwrap()
                .solve(&observed, &laps)
                .unwrap();
            prop_assert_eq!(run.iterations, base.iterations);
            prop_assert_eq!(run.converged, base.converged);
            // The serial solver stamps trace points with *wall* time, so
            // compare everything but the timestamp bit-for-bit.
            prop_assert_eq!(run.trace.points.len(), base.trace.points.len());
            for (a, b) in run.trace.points.iter().zip(&base.trace.points) {
                prop_assert_eq!(a.iter, b.iter);
                prop_assert_eq!(a.train_rmse.to_bits(), b.train_rmse.to_bits(),
                    "RMSE bits differ at {} threads", n);
                prop_assert_eq!(a.factor_delta.to_bits(), b.factor_delta.to_bits(),
                    "delta bits differ at {} threads", n);
            }
            for (a, b) in run.model.factors().iter().zip(base.model.factors()) {
                prop_assert_eq!(a.as_slice(), b.as_slice(), "factor bits differ at {} threads", n);
            }
            let resid = residual(&observed, &run.model).unwrap();
            prop_assert_eq!(&resid, &base_resid);
        }
    }

    /// Distributed DisTenC on a simulated cluster: same bit-for-bit
    /// guarantee, plus identical virtual-time accounting (the backend
    /// must not leak into the cost model).
    #[test]
    fn distenc_threads_bit_identical(
        observed in coo_strategy(),
        rank in 1usize..4,
        seed in any::<u64>(),
        machines in 1usize..5,
    ) {
        let laps: Vec<Option<&Laplacian>> = vec![None; observed.order()];
        let run = |exec: ExecMode| {
            let cluster = Cluster::new(
                ClusterConfig::test(machines).with_time_budget(None).with_exec(exec),
            );
            let cfg = solver_cfg(rank, seed, exec);
            let out = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &laps).unwrap();
            let metrics = cluster.metrics();
            (out, metrics)
        };
        let (base, base_metrics) = run(ExecMode::Sequential);
        for n in THREAD_COUNTS {
            let (got, metrics) = run(ExecMode::Threads(n));
            prop_assert_eq!(got.iterations, base.iterations);
            prop_assert_eq!(&got.trace, &base.trace, "trace differs at {} threads", n);
            for (a, b) in got.model.factors().iter().zip(base.model.factors()) {
                prop_assert_eq!(a.as_slice(), b.as_slice(), "factor bits differ at {} threads", n);
            }
            prop_assert_eq!(metrics.virtual_seconds.to_bits(), base_metrics.virtual_seconds.to_bits());
            prop_assert_eq!(metrics.shuffled_bytes, base_metrics.shuffled_bytes);
            prop_assert_eq!(metrics.stages, base_metrics.stages);
        }
    }

    /// The blocked MTTKRP kernel matches the sequential one bit-for-bit
    /// for arbitrary (valid) boundary placements and every backend.
    #[test]
    fn mttkrp_blocked_bit_identical(
        observed in coo_strategy(),
        rank in 1usize..5,
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let model =
            distenc::tensor::KruskalTensor::random(observed.shape(), rank, seed);
        for mode in 0..observed.order() {
            let dim = observed.shape()[mode];
            let want = mttkrp(&observed, model.factors(), mode).unwrap();
            // Random non-decreasing cuts ending at `dim`.
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(cut_seed ^ mode as u64);
            let parts = rng.random_range(1..=5usize);
            let mut cuts: Vec<usize> =
                (0..parts - 1).map(|_| rng.random_range(0..=dim)).collect();
            cuts.push(dim);
            cuts.sort_unstable();
            for n in THREAD_COUNTS {
                let exec = Executor::new(ExecMode::Threads(n));
                let got =
                    mttkrp_blocked(&observed, model.factors(), mode, &cuts, &exec).unwrap();
                prop_assert_eq!(got.as_slice(), want.as_slice());
            }
        }
    }

    /// The in-place residual refresh is bit-identical across backends
    /// and chunkings.
    #[test]
    fn residual_exec_bit_identical(
        observed in coo_strategy(),
        rank in 1usize..5,
        seed in any::<u64>(),
    ) {
        let model =
            distenc::tensor::KruskalTensor::random(observed.shape(), rank, seed);
        let want = residual(&observed, &model).unwrap();
        for n in THREAD_COUNTS {
            let exec = Executor::new(ExecMode::Threads(n));
            let mut e = CooTensor::new(vec![1]);
            residual_into_exec(&observed, &model, &mut e, &exec).unwrap();
            prop_assert_eq!(&e, &want);
        }
    }

    /// Dataflow primitives (`map`, `map_partitions`, `reduce_by_key`)
    /// return identical partition contents under both backends.
    #[test]
    fn dist_ops_bit_identical(
        data in prop::collection::vec(any::<i32>(), 1..200),
        parts in 1usize..9,
        machines in 1usize..4,
    ) {
        let run = |exec: ExecMode| {
            let cluster = Cluster::new(
                ClusterConfig::test(machines).with_time_budget(None).with_exec(exec),
            );
            let d = Dist::from_vec(&cluster, data.clone(), parts).unwrap();
            let mapped = d.map(1.0, |&x| (x as f64) * 0.5).unwrap();
            let windows = mapped
                .map_partitions(|n| n as f64, |p, part| {
                    part.iter().map(|&v| (p, v + 1.0)).collect()
                })
                .unwrap();
            let keyed = windows.map(1.0, |&(p, v)| (p % 3, v)).unwrap();
            let reduced = keyed.reduce_by_key(parts, 1.0, |a, b| *a += b).unwrap();
            (
                mapped.parts().to_vec(),
                windows.parts().to_vec(),
                reduced.parts().to_vec(),
            )
        };
        let base = run(ExecMode::Sequential);
        for n in THREAD_COUNTS {
            let got = run(ExecMode::Threads(n));
            prop_assert_eq!(&got.0, &base.0);
            prop_assert_eq!(&got.1, &base.1);
            prop_assert_eq!(&got.2, &base.2);
        }
    }
}
