//! Overload-stress gate for the serving queue: drive the queue well past
//! capacity from many threads with mixed deadlines and tenants, and
//! prove the accounting contract holds under contention —
//!
//! * no panics anywhere in the stack,
//! * the queued depth never exceeds the configured capacity,
//! * every submission resolves to **exactly one** outcome: a served
//!   response, a typed shed, a deadline timeout, or a submit-side
//!   `QueueFull` rejection,
//! * the engine's metrics balance against the caller-observed outcome
//!   counts (sheds, rejections, served e2e samples, deadline misses).
//!
//! A proptest sweep then replays the same contract over randomized small
//! queue configurations in deterministic manual-drain mode.

use distenc::serve::{
    AdmissionControl, Engine, EngineConfig, QueueConfig, Request, Response, ServeError,
    ServeQueue, TopKQuery,
};
use distenc::tensor::KruskalTensor;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn test_engine(seed: u64) -> Arc<Engine> {
    let model = KruskalTensor::random(&[40, 20, 10], 4, seed);
    Arc::new(Engine::new(&model, EngineConfig::default()).unwrap())
}

#[test]
fn overload_storm_resolves_every_ticket_exactly_once() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    let engine = test_engine(77);
    let cfg = QueueConfig {
        capacity: 32,
        max_batch: 16,
        window: Duration::from_micros(50),
        workers: 2,
        admission: AdmissionControl {
            shed_watermark: Some(24),
            deadline_aware: true,
            tenant_share: Some(16),
        },
        fair_quantum: 4,
    };
    let queue = Arc::new(ServeQueue::new(Arc::clone(&engine), cfg).unwrap());

    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let depth_violations = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let queue = Arc::clone(&queue);
            let (served, shed, timed_out, errors, rejected, depth_violations) =
                (&served, &shed, &timed_out, &errors, &rejected, &depth_violations);
            s.spawn(move || {
                let tenant = format!("tenant-{}", t % 4);
                for i in 0..PER_THREAD {
                    let req = match i % 3 {
                        0 => Request::Point { index: vec![i % 40, i % 20, i % 10] },
                        1 => Request::Batch {
                            indices: vec![vec![0, 0, 0], vec![i % 40, i % 20, i % 10]],
                        },
                        _ => Request::TopK {
                            query: TopKQuery { mode: 0, at: vec![0, i % 20, i % 10], k: 3 },
                            budget: None,
                        },
                    };
                    // Mixed deadlines: none, comfortable, and tight enough
                    // to be shed at admission or expire in the queue.
                    let deadline = match i % 4 {
                        0 | 1 => None,
                        2 => Some(Duration::from_millis(50)),
                        _ => Some(Duration::from_micros(300)),
                    };
                    match queue.submit_for_with_deadline(&tenant, req, deadline) {
                        Ok(ticket) => match ticket.wait() {
                            Response::Value(_) | Response::Values(_) | Response::TopK(_) => {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Shed(_) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::TimedOut => {
                                timed_out.fetch_add(1, Ordering::Relaxed);
                            }
                            Response::Error(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                        Err(ServeError::QueueFull { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                    if queue.len() > 32 {
                        depth_violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let (served, shed, timed_out, errors, rejected) = (
        served.into_inner(),
        shed.into_inner(),
        timed_out.into_inner(),
        errors.into_inner(),
        rejected.into_inner(),
    );
    // Exactly-once accounting: the five outcome classes tile the storm.
    assert_eq!(
        served + shed + timed_out + errors + rejected,
        (THREADS * PER_THREAD) as u64,
        "served {served} shed {shed} timed_out {timed_out} errors {errors} rejected {rejected}"
    );
    assert_eq!(errors, 0, "every request in the storm is valid");
    assert!(served > 0, "the queue must make forward progress under overload");
    assert_eq!(depth_violations.into_inner(), 0, "queued depth stayed within capacity");
    assert!(queue.is_empty(), "nothing may linger after every ticket resolved");

    // Caller-observed outcomes balance against the engine's own counters.
    let s = engine.snapshot();
    assert_eq!(s.sheds(), shed);
    assert_eq!(s.queue_rejections, rejected);
    assert_eq!(s.e2e_recorded, served);
    // `deadline_misses` counts queue-level timeouts plus top-K scans that
    // degraded inside their clipped budget (each of those also ticks
    // `degraded_results`), so the two streams balance exactly.
    assert_eq!(s.deadline_misses, timed_out + s.degraded_results);
    assert!(s.queue_depth_peak <= 32, "peak {} over capacity", s.queue_depth_peak);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The exactly-once/balance contract over randomized small configs,
    /// in deterministic manual-drain mode: submissions interleave with
    /// drains, and at the end every ticket has resolved, the queue is
    /// empty, and the metrics mirror the observed outcome counts.
    #[test]
    fn accounting_balances_over_small_configs(
        capacity in 1usize..8,
        max_batch in 1usize..5,
        fair_quantum in 1usize..4,
        // 0 encodes "off" (the vendored proptest has no Option strategy).
        watermark_sel in 0usize..9,
        share_sel in 0usize..4,
        n_tenants in 1usize..4,
        submissions in 1usize..40,
        drain_every in 1usize..12,
    ) {
        let engine = test_engine(5);
        let watermark = (watermark_sel > 0).then(|| ((watermark_sel - 1) % capacity) + 1);
        let tenant_share = (share_sel > 0).then_some(share_sel);
        let cfg = QueueConfig {
            capacity,
            max_batch,
            window: Duration::ZERO,
            workers: 0,
            admission: AdmissionControl {
                shed_watermark: watermark,
                deadline_aware: false,
                tenant_share,
            },
            fair_quantum,
        };
        let queue = ServeQueue::new(Arc::clone(&engine), cfg).unwrap();
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for i in 0..submissions {
            let tenant = format!("t{}", i % n_tenants);
            let req = Request::Point { index: vec![i % 6, i % 5, i % 4] };
            match queue.submit_for(&tenant, req) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            prop_assert!(queue.len() <= capacity);
            if i % drain_every == drain_every - 1 {
                queue.drain_once();
            }
        }
        while queue.drain_once() > 0 {}
        let (mut served, mut shed) = (0u64, 0u64);
        for t in tickets {
            match t.wait() {
                Response::Value(_) => served += 1,
                Response::Shed(_) => shed += 1,
                other => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        prop_assert_eq!(served + shed + rejected, submissions as u64);
        prop_assert!(queue.is_empty());
        let s = engine.snapshot();
        prop_assert_eq!(s.sheds(), shed);
        prop_assert_eq!(s.queue_rejections, rejected);
        prop_assert_eq!(s.e2e_recorded, served);
    }
}

/// Deficit-round-robin under live overload: a cold tenant trickling
/// requests through a hot flood is never starved and never shed, because
/// the hot tenant's admission share caps how much queue it can hold and
/// DRR guarantees the cold lane a slice of every batch.
#[test]
fn cold_tenant_survives_hot_flood() {
    let engine = test_engine(99);
    let cfg = QueueConfig {
        capacity: 64,
        max_batch: 16,
        window: Duration::from_micros(50),
        workers: 2,
        admission: AdmissionControl {
            shed_watermark: None,
            deadline_aware: false,
            tenant_share: Some(8),
        },
        fair_quantum: 4,
    };
    let queue = Arc::new(ServeQueue::new(Arc::clone(&engine), cfg).unwrap());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for i in 0..500usize {
                    let req = Request::Point { index: vec![i % 40, i % 20, i % 10] };
                    match queue.submit_for("hot", req) {
                        Ok(t) => drop(t.wait()),
                        Err(ServeError::QueueFull { .. }) => {}
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            });
        }
        // The cold tenant trickles 50 requests while the flood rages.
        let mut cold_served = 0usize;
        for i in 0..50usize {
            let req = Request::Point { index: vec![i % 40, i % 20, i % 10] };
            let ticket = queue.submit_for("cold", req).expect("cold submit");
            if matches!(ticket.wait(), Response::Value(_)) {
                cold_served += 1;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(cold_served, 50, "cold tenant must never be starved or shed");
    });
}
