//! Streaming-vs-batch equivalence.
//!
//! The streaming contract has two tiers, both tested here:
//!
//! 1. **Bit-exact warm restart.** After `apply`, the carried residual is
//!    exactly `Ω∗(T − [[model…]])` on the new support, so a warm
//!    [`StreamingSolver::solve`] must be *bit-identical* to
//!    [`AdmmSolver::solve_from`] on the final tensor with the same
//!    (grown) model — for empty deltas, value updates, inserts, and
//!    dimension growth alike, with and without the CSF path.
//! 2. **Tolerance vs a cold solve.** A delta sequence plus warm
//!    re-solves must land at the same training quality a from-scratch
//!    solve of the final tensor reaches (local minima differ in the
//!    factors, so the comparison is on RMSE, not parameters).
//!
//! `ci.sh` runs this file under `DISTENC_THREADS=1` and `=4`; the exec
//! backend comes from `ExecMode::default()`, so both schedules are
//! covered without test-side plumbing.

use distenc::core::{AdmmConfig, AdmmSolver};
use distenc::stream::{DeltaBatch, StreamingSolver};
use distenc::tensor::{CooTensor, KruskalTensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn assert_models_bit_equal(a: &KruskalTensor, b: &KruskalTensor, what: &str) {
    for (n, (fa, fb)) in a.factors().iter().zip(b.factors()).enumerate() {
        assert_eq!(fa.rows(), fb.rows(), "{what}: mode {n} row count");
        for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: mode {n} factor bits");
        }
    }
}

/// Build a random batch against `observed`: some value updates on
/// existing entries, some inserts into empty cells (possibly in a grown
/// slice), occasional growth of one mode. With `truth` given, values come
/// from that planted model (so the drifted tensor stays exactly low-rank
/// and completable) and growth never exceeds the truth's shape; without
/// it, values are arbitrary noise (fine for bit-exactness checks).
fn random_batch(
    observed: &CooTensor,
    rng: &mut StdRng,
    truth: Option<&KruskalTensor>,
) -> DeltaBatch {
    let base = observed.shape().to_vec();
    let order = base.len();
    let mut growth = vec![0usize; order];
    if rng.random_bool(0.5) {
        let mode = rng.random_range(0..order);
        let cap = truth.map_or(usize::MAX, |t| t.shape()[mode] - base[mode]);
        growth[mode] = rng.random_range(1usize..3).min(cap);
    }
    let new_shape: Vec<usize> = base.iter().zip(&growth).map(|(&d, &g)| d + g).collect();
    let value = |idx: &[usize], rng: &mut StdRng| match truth {
        Some(t) => t.eval(idx),
        None => rng.random_range(-1.0..1.0),
    };

    let mut updates = Vec::new();
    for _ in 0..rng.random_range(0..6) {
        let e = rng.random_range(0..observed.nnz());
        let idx = observed.index(e).to_vec();
        if updates.iter().all(|(i, _)| *i != idx) {
            let v = value(&idx, rng);
            updates.push((idx, v));
        }
    }
    let mut inserts: Vec<(Vec<usize>, f64)> = Vec::new();
    for _ in 0..rng.random_range(1..8) {
        let idx: Vec<usize> =
            new_shape.iter().map(|&d| rng.random_range(0..d)).collect();
        if observed.position_of(&idx).is_none() && inserts.iter().all(|(i, _)| *i != idx) {
            let v = value(&idx, rng);
            inserts.push((idx, v));
        }
    }
    DeltaBatch::try_new(&base, &growth, inserts, updates).unwrap()
}

#[test]
fn empty_delta_warm_resolve_is_bit_exact() {
    for use_csf in [false, true] {
        let observed = planted(&[10, 9, 8], 2, 200, 11);
        let cfg = AdmmConfig { rank: 2, max_iters: 7, tol: 1e-12, use_csf, ..Default::default() };
        let mut s =
            StreamingSolver::new(observed.clone(), vec![None, None, None], cfg.clone()).unwrap();
        s.solve().unwrap();
        let before = s.model().unwrap().clone();

        // The degenerate batch: changes nothing.
        let b = DeltaBatch::try_new(&[10, 9, 8], &[0, 0, 0], vec![], vec![]).unwrap();
        s.apply(&b).unwrap();
        let warm = s.solve().unwrap();

        let oracle = AdmmSolver::new(cfg)
            .unwrap()
            .solve_from(&observed, &[None, None, None], &before)
            .unwrap();
        assert_eq!(warm.iterations, oracle.iterations, "use_csf={use_csf}");
        assert_models_bit_equal(&warm.model, &oracle.model, "empty delta");
    }
}

#[test]
fn delta_sequence_then_converge_matches_cold_solve_within_tolerance() {
    // One planted truth over the *final* (fully grown) shape; the base
    // tensor observes its [12,10,8] corner and every delta reveals more
    // of the same truth, so the drifted tensor stays exactly rank-2 and
    // both solvers can reach near-zero training error.
    let truth = KruskalTensor::random(&[18, 16, 14], 2, 29);
    let mut rng = StdRng::seed_from_u64(29 ^ 0xabcd);
    let mut observed = CooTensor::new(vec![12, 10, 8]);
    for _ in 0..500 {
        let idx: Vec<usize> =
            [12usize, 10, 8].iter().map(|&d| rng.random_range(0..d)).collect();
        observed.push(&idx, truth.eval(&idx)).unwrap();
    }
    observed.sort_dedup();

    // Near-zero ridge so the exactly-rank-2 data admits near-zero
    // training error (the default λ=0.1 shrinks factors and floors RMSE).
    let cfg =
        AdmmConfig { rank: 2, max_iters: 60, tol: 1e-10, lambda: 1e-6, ..Default::default() };
    let mut s = StreamingSolver::new(observed, vec![None, None, None], cfg.clone()).unwrap();
    s.solve().unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..3 {
        let b = random_batch(s.observed(), &mut rng, Some(&truth));
        s.apply(&b).unwrap();
        let _ = s.solve().unwrap();
    }
    // One final full-budget convergence pass on the drifted tensor.
    let warm = s.solve().unwrap();
    let cold = AdmmSolver::new(cfg)
        .unwrap()
        .solve(s.observed(), &[None, None, None])
        .unwrap();
    let (w, c) = (
        warm.trace.final_rmse().unwrap(),
        cold.trace.final_rmse().unwrap(),
    );
    // Same training quality: a stream of warm re-solves must not drift
    // away from what a from-scratch solve of the final tensor reaches.
    // (Both plateau at the solver's η-damped fixed point — around 0.18
    // RMSE on this data — and random inits land in different equivalent
    // minima, so the comparison is on RMSE, not factors.)
    assert!(w.is_finite() && c.is_finite());
    assert!(w < 0.5, "warm RMSE {w} lost the signal entirely");
    assert!(c < 0.5, "cold RMSE {c} lost the signal entirely");
    assert!((w - c).abs() < 0.05, "warm {w} vs cold {c}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random delta sequence, warm-solved, lands bit-exactly where
    /// `solve_from` lands on the final tensor — growth, inserts, updates,
    /// CSF on or off.
    #[test]
    fn warm_resolve_matches_solve_from_bitwise(
        seed in 0u64..1000,
        n_batches in 1usize..4,
        use_csf_bit in 0u8..2,
    ) {
        let use_csf = use_csf_bit == 1;
        let observed = planted(&[8, 7, 6], 2, 150, seed.wrapping_mul(7).wrapping_add(1));
        let cfg = AdmmConfig {
            rank: 2, max_iters: 5, tol: 1e-12, use_csf, ..Default::default()
        };
        let mut s = StreamingSolver::new(
            observed, vec![None, None, None], cfg.clone(),
        ).unwrap();
        s.solve().unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for _ in 0..n_batches {
            let b = random_batch(s.observed(), &mut rng, None);
            s.apply(&b).unwrap();
        }
        // The model StreamingSolver will warm-start from (post-growth).
        let init = s.model().unwrap().clone();
        let final_tensor = s.observed().clone();
        let warm = s.solve().unwrap();
        let oracle = AdmmSolver::new(cfg)
            .unwrap()
            .solve_from(&final_tensor, &[None, None, None], &init)
            .unwrap();
        prop_assert_eq!(warm.iterations, oracle.iterations);
        for (fa, fb) in warm.model.factors().iter().zip(oracle.model.factors()) {
            for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
