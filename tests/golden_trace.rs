//! Golden-trace regression tests for the solver core.
//!
//! The files under `tests/golden/` were captured from the solver *before*
//! the `solver::ModeStep` unification refactor, with every `f64` stored as
//! its exact bit pattern (`f64::to_bits`, hex). The tests assert that the
//! refactored solvers reproduce those traces **bit for bit** — under
//! `DISTENC_THREADS=1` and `DISTENC_THREADS=4` alike, since `ci.sh` runs
//! the whole suite under both settings and `AdmmConfig::default()` picks
//! the backend up from the environment.
//!
//! `AdmmSolver` trace timestamps are wall-clock and therefore excluded;
//! `DisTenC` timestamps are the cluster's deterministic *virtual* clock
//! and are part of the golden data (they pin the accounting order, not
//! just the arithmetic).
//!
//! Regenerate (only when intentionally changing numerics) with:
//! `cargo test --test golden_trace -- --ignored regen`

use distenc::core::{AdmmConfig, AdmmSolver, CompletionResult, DisTenC, SolverTier};
use distenc::dataflow::{Cluster, ClusterConfig};
use distenc::graph::builders::tridiagonal_chain;
use distenc::graph::Laplacian;
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::PathBuf;

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x601d);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

/// One golden scenario: a completion run whose trace and final factors are
/// pinned. `seconds` are recorded only when deterministic (virtual clock).
struct Scenario {
    name: &'static str,
    with_seconds: bool,
}

const ADMM_PLAIN: Scenario = Scenario { name: "admm_plain", with_seconds: false };
const ADMM_AUX: Scenario = Scenario { name: "admm_aux", with_seconds: false };
const DISTENC_3M: Scenario = Scenario { name: "distenc_3m", with_seconds: true };
/// The sketched tier's schedule — sampled RMSE estimates, the phase
/// hand-off, and the polish iterations — pinned bit-for-bit. Wall-clock
/// seconds excluded, like the other host scenarios.
const ADMM_SKETCHED: Scenario = Scenario { name: "admm_sketched", with_seconds: false };

fn run_scenario(s: &Scenario) -> CompletionResult {
    match s.name {
        "admm_plain" => {
            let observed = planted(&[12, 10, 8], 3, 700, 2);
            let cfg = AdmmConfig {
                rank: 3,
                lambda: 1e-3,
                max_iters: 8,
                tol: 1e-12,
                ..Default::default()
            };
            AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap()
        }
        "admm_aux" => {
            let observed = planted(&[20, 16, 12], 2, 600, 7);
            let laps: Vec<Laplacian> = [20, 16, 12]
                .iter()
                .map(|&d| Laplacian::from_similarity(tridiagonal_chain(d)))
                .collect();
            let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
            let cfg = AdmmConfig {
                rank: 2,
                max_iters: 6,
                tol: 1e-12,
                alpha: 2.0,
                eigen_k: 8,
                ..Default::default()
            };
            AdmmSolver::new(cfg).unwrap().solve(&observed, &lap_refs).unwrap()
        }
        "admm_sketched" => {
            let observed = planted(&[12, 10, 8], 3, 700, 2);
            let cfg = AdmmConfig {
                rank: 3,
                lambda: 1e-3,
                max_iters: 10,
                tol: 1e-12,
                solver_tier: SolverTier::Sketched { samples: 160, polish_iters: 3 },
                ..Default::default()
            };
            AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap()
        }
        "distenc_3m" => {
            let observed = planted(&[12, 10, 8], 3, 700, 2);
            let cfg = AdmmConfig {
                rank: 3,
                lambda: 1e-3,
                max_iters: 8,
                tol: 1e-12,
                ..Default::default()
            };
            let cluster = Cluster::new(ClusterConfig::test(3).with_time_budget(None));
            DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap()
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.golden"))
}

fn serialize(s: &Scenario, res: &CompletionResult) -> String {
    let mut out = String::new();
    out.push_str("golden-trace-v1\n");
    writeln!(out, "points {} {}", res.trace.points.len(), u8::from(s.with_seconds)).unwrap();
    for p in &res.trace.points {
        write!(out, "{} {:016x} {:016x}", p.iter, p.train_rmse.to_bits(), p.factor_delta.to_bits())
            .unwrap();
        if s.with_seconds {
            write!(out, " {:016x}", p.seconds.to_bits()).unwrap();
        }
        out.push('\n');
    }
    writeln!(out, "factors {}", res.model.factors().len()).unwrap();
    for f in res.model.factors() {
        writeln!(out, "mode {} {}", f.rows(), f.cols()).unwrap();
        for row in 0..f.rows() {
            let hex: Vec<String> =
                f.row(row).iter().map(|v| format!("{:016x}", v.to_bits())).collect();
            writeln!(out, "{}", hex.join(" ")).unwrap();
        }
    }
    out
}

fn assert_matches_golden(s: &Scenario) {
    let path = golden_path(s.name);
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run the regen test"));
    let got = serialize(s, &run_scenario(s));
    if got != want {
        // Diff the first mismatching line for a readable failure.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "scenario {}: first divergence at line {}", s.name, i + 1);
        }
        panic!(
            "scenario {}: golden mismatch (line count {} vs {})",
            s.name,
            got.lines().count(),
            want.lines().count()
        );
    }
}

#[test]
fn admm_plain_matches_golden_trace_bit_for_bit() {
    assert_matches_golden(&ADMM_PLAIN);
}

#[test]
fn admm_aux_matches_golden_trace_bit_for_bit() {
    assert_matches_golden(&ADMM_AUX);
}

#[test]
fn distenc_matches_golden_trace_and_virtual_clock_bit_for_bit() {
    assert_matches_golden(&DISTENC_3M);
}

#[test]
fn admm_sketched_matches_golden_trace_bit_for_bit() {
    assert_matches_golden(&ADMM_SKETCHED);
}

/// Rewrites the golden files from the current solver. Ignored by default:
/// run explicitly (and review the diff) when a numerics change is
/// intentional.
#[test]
#[ignore = "regenerates the golden files; run only for intentional numeric changes"]
fn regen_golden_files() {
    std::fs::create_dir_all(golden_path("x").parent().unwrap()).unwrap();
    for s in [&ADMM_PLAIN, &ADMM_AUX, &DISTENC_3M, &ADMM_SKETCHED] {
        let res = run_scenario(s);
        std::fs::write(golden_path(s.name), serialize(s, &res)).unwrap();
    }
}
