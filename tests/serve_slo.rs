//! Serve-SLO smoke gates for CI: fixed-work invariants of the serving
//! stack that must hold at any thread count — no wall-clock assertions,
//! so the gate is stable on loaded hosts.
//!
//! Three contracts, each run under `DISTENC_THREADS=1` and `=4` by
//! `ci.sh` (the queue sizes its worker pool from the same variable the
//! execution backends use):
//!
//! 1. **Shed accounting balances** — under offered load past the shed
//!    watermark, every submission resolves to exactly one outcome and
//!    the metrics mirror the caller-observed counts.
//! 2. **Recall gate** — the approximate top-K tier on a popularity-
//!    skewed model keeps recall@K at or above 0.95, measured by the
//!    engine's own shadow-sampling counters (which must actually fire).
//! 3. **Zero failed reads across swaps** — a registry-backed queue under
//!    concurrent hot-publishes never surfaces an error, a stale read, or
//!    an unresolved ticket.

use distenc::linalg::Mat;
use distenc::serve::{
    open_loop_trace, AdmissionControl, ApproxTopK, Engine, EngineConfig, ModelRegistry,
    OpenLoopConfig, QueueConfig, Request, Response, ServeError, ServeQueue, TraceConfig,
};
use distenc::tensor::KruskalTensor;
use std::sync::Arc;
use std::time::Duration;

/// Worker-pool size for the gate, from the same env knob as the solver
/// execution backends (`DISTENC_THREADS`), defaulting to 1.
fn workers_from_env() -> usize {
    std::env::var("DISTENC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(1)
}

/// CP model whose mode-0 row norms decay like a power law — the regime
/// the norm-ordered approximate tier is designed for.
fn skewed_model(shape: &[usize], rank: usize, seed: u64) -> KruskalTensor {
    let mut factors: Vec<Mat> = shape
        .iter()
        .enumerate()
        .map(|(n, &d)| Mat::random(d, rank, seed.wrapping_add(n as u64)))
        .collect();
    for i in 0..shape[0] {
        let scale = 1.0 / (1.0 + i as f64).powf(0.7);
        for v in factors[0].row_mut(i) {
            *v *= scale;
        }
    }
    KruskalTensor::new(factors).unwrap()
}

#[test]
fn shed_accounting_balances_under_offered_load() {
    let shape = [60, 30, 10];
    let model = KruskalTensor::random(&shape, 4, 11);
    let engine = Arc::new(Engine::new(&model, EngineConfig::default()).unwrap());
    let queue = ServeQueue::new(
        Arc::clone(&engine),
        QueueConfig {
            capacity: 64,
            max_batch: 16,
            window: Duration::from_micros(50),
            workers: workers_from_env(),
            admission: AdmissionControl {
                shed_watermark: Some(8),
                deadline_aware: false,
                tenant_share: None,
            },
            fair_quantum: 8,
        },
    )
    .unwrap();
    let trace = open_loop_trace(
        &shape,
        &OpenLoopConfig {
            qps: 1_000_000.0, // offsets collapse: submit as fast as possible
            tenants: 2,
            tenant_zipf: 1.0,
            trace: TraceConfig { queries: 5_000, ..Default::default() },
        },
    );
    let names = ["a", "b"];
    let mut tickets = Vec::with_capacity(trace.len());
    let mut rejected = 0u64;
    for tr in &trace {
        match queue.submit_for(names[tr.tenant], tr.request.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let (mut served, mut shed) = (0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Response::Value(_) | Response::Values(_) | Response::TopK(_) => served += 1,
            Response::Shed(_) => shed += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(served + shed + rejected, trace.len() as u64, "outcomes tile the trace");
    assert!(shed > 0, "a watermark of 8 under a 5k-request burst must shed");
    assert!(served > 0, "admitted work must still be served");
    let s = engine.snapshot();
    assert_eq!(s.sheds(), shed, "metrics sheds mirror caller-observed sheds");
    assert_eq!(s.sheds_queue_depth, shed, "only the watermark shedder was armed");
    assert_eq!(s.queue_rejections, rejected);
    assert_eq!(s.e2e_recorded, served, "every served request left one e2e sample");
    let expected_rate = shed as f64 / (shed + served) as f64;
    assert!((s.shed_rate() - expected_rate).abs() < 1e-12);
    assert!(s.queue_depth_peak <= 64);
    assert!(queue.is_empty());
}

#[test]
fn approx_recall_stays_above_gate() {
    let shape = [400, 40, 10];
    let model = skewed_model(&shape, 6, 23);
    let engine = Engine::new(
        &model,
        EngineConfig {
            approx_topk: Some(ApproxTopK::NormCoverage(0.95)),
            recall_check_every: 1,
            topk_cache: 0, // every query takes the measured miss path
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..200usize {
        let q = distenc::serve::TopKQuery {
            mode: 0,
            at: vec![0, (i * 7) % shape[1], (i * 3) % shape[2]],
            k: 10,
        };
        engine.topk(&q, None).unwrap();
    }
    let s = engine.snapshot();
    assert_eq!(s.approx_topk_queries, 200);
    assert_eq!(s.recall_checks, 200, "shadow sampling must actually fire");
    assert!(s.recall_possible > 0);
    assert!(
        s.recall_at_k() >= 0.95,
        "recall@10 {} under the 0.95 gate",
        s.recall_at_k()
    );
}

#[test]
fn zero_failed_reads_across_swaps() {
    let shape = [50, 20, 10];
    let reg = Arc::new(ModelRegistry::new());
    reg.register("a", &KruskalTensor::random(&shape, 3, 31), EngineConfig::default()).unwrap();
    reg.register("b", &KruskalTensor::random(&shape, 3, 32), EngineConfig::default()).unwrap();
    let queue = Arc::new(
        ServeQueue::with_registry(
            Arc::clone(&reg),
            QueueConfig {
                capacity: 256,
                max_batch: 32,
                window: Duration::from_micros(50),
                workers: workers_from_env(),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    std::thread::scope(|s| {
        // Publisher hot-swaps tenant "a" twenty times mid-stream.
        let publisher = {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                for gen in 0..20u64 {
                    reg.publish("a", &KruskalTensor::random(&shape, 3, 100 + gen)).unwrap();
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
        };
        // Two readers hammer both tenants through the queue the whole
        // time; every single ticket must resolve to a served value.
        for reader in 0..2usize {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                for i in 0..1_000usize {
                    let tenant = if (i + reader) % 2 == 0 { "a" } else { "b" };
                    let req = if i % 5 == 0 {
                        Request::TopK {
                            query: distenc::serve::TopKQuery {
                                mode: 0,
                                at: vec![0, i % 20, i % 10],
                                k: 4,
                            },
                            budget: None,
                        }
                    } else {
                        Request::Point { index: vec![i % 50, i % 20, i % 10] }
                    };
                    let ticket = queue
                        .submit_for(tenant, req)
                        .expect("registered tenants never fail to submit under capacity");
                    match ticket.wait() {
                        Response::Value(v) => assert!(v.is_finite()),
                        Response::TopK(r) => assert_eq!(r.items.len(), 4),
                        other => panic!("failed read across swaps: {other:?}"),
                    }
                }
            });
        }
        publisher.join().unwrap();
    });
    // Every publish landed; the final generation is 1 (initial) + 20.
    assert_eq!(reg.engine("a").unwrap().point(&[0, 0, 0]).unwrap().generation, 21);
    assert_eq!(reg.engine("b").unwrap().point(&[0, 0, 0]).unwrap().generation, 1);
}
