//! The distributed solver must be numerically equivalent to the serial
//! reference (Algorithm 3 reorganizes Algorithm 1's computation; it does
//! not change it) — across orders, auxiliary settings, constraints, and
//! cluster sizes.

use distenc::core::{AdmmConfig, AdmmSolver, DisTenC};
use distenc::dataflow::{Cluster, ClusterConfig};
use distenc::graph::builders::tridiagonal_chain;
use distenc::graph::Laplacian;
use distenc::tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe0e0);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn assert_equivalent(
    observed: &CooTensor,
    laplacians: &[Option<&Laplacian>],
    cfg: AdmmConfig,
    machines: usize,
) {
    let serial = AdmmSolver::new(cfg.clone())
        .unwrap()
        .solve(observed, laplacians)
        .unwrap();
    let cluster = Cluster::new(ClusterConfig::test(machines).with_time_budget(None));
    let dist = DisTenC::new(&cluster, cfg)
        .unwrap()
        .solve(observed, laplacians)
        .unwrap();
    assert_eq!(serial.iterations, dist.iterations);
    assert_eq!(serial.converged, dist.converged);
    for (n, (a, b)) in serial
        .model
        .factors()
        .iter()
        .zip(dist.model.factors())
        .enumerate()
    {
        let d = a.frob_dist(b).unwrap();
        assert!(d < 1e-8, "mode {n} factors diverged by {d}");
    }
}

#[test]
fn order_three_no_aux() {
    let observed = planted(&[18, 14, 11], 3, 700, 1);
    let cfg = AdmmConfig { rank: 3, max_iters: 10, tol: 1e-12, ..Default::default() };
    assert_equivalent(&observed, &[None, None, None], cfg, 3);
}

#[test]
fn order_two_matrix_completion() {
    // Matrix completion is the N = 2 special case the paper mentions.
    let observed = planted(&[25, 20], 2, 300, 2);
    let cfg = AdmmConfig { rank: 2, max_iters: 8, tol: 1e-12, ..Default::default() };
    assert_equivalent(&observed, &[None, None], cfg, 2);
}

#[test]
fn order_four_tensor() {
    let observed = planted(&[10, 8, 7, 6], 2, 800, 3);
    let cfg = AdmmConfig { rank: 2, max_iters: 6, tol: 1e-12, ..Default::default() };
    assert_equivalent(&observed, &[None, None, None, None], cfg, 4);
}

#[test]
fn with_auxiliary_information_all_modes() {
    let shape = [16usize, 12, 9];
    let observed = planted(&shape, 2, 500, 4);
    let laps: Vec<Laplacian> = shape
        .iter()
        .map(|&d| Laplacian::from_similarity(tridiagonal_chain(d)))
        .collect();
    let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
    let cfg = AdmmConfig {
        rank: 2,
        max_iters: 8,
        tol: 1e-12,
        alpha: 3.0,
        eigen_k: 6,
        ..Default::default()
    };
    assert_equivalent(&observed, &lap_refs, cfg, 3);
}

#[test]
fn with_auxiliary_information_partial_modes() {
    let shape = [16usize, 12, 9];
    let observed = planted(&shape, 2, 500, 5);
    let lap = Laplacian::from_similarity(tridiagonal_chain(12));
    let cfg = AdmmConfig { rank: 2, max_iters: 8, tol: 1e-12, alpha: 2.0, ..Default::default() };
    assert_equivalent(&observed, &[None, Some(&lap), None], cfg, 5);
}

#[test]
fn with_nonneg_projection() {
    let observed = planted(&[14, 14, 14], 2, 400, 6);
    let cfg = AdmmConfig { rank: 2, max_iters: 8, tol: 1e-12, nonneg: true, ..Default::default() };
    assert_equivalent(&observed, &[None, None, None], cfg, 3);
}

#[test]
fn result_independent_of_machine_count() {
    // The machine count changes *accounting*, never numerics.
    let observed = planted(&[20, 15, 10], 2, 600, 7);
    let cfg = AdmmConfig { rank: 2, max_iters: 6, tol: 1e-12, ..Default::default() };
    let mut finals = Vec::new();
    for machines in [1usize, 2, 5, 9] {
        let cluster = Cluster::new(ClusterConfig::test(machines).with_time_budget(None));
        let res = DisTenC::new(&cluster, cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        finals.push(res.trace.final_rmse().unwrap());
    }
    for w in finals.windows(2) {
        // Block layouts differ with M, so accumulation order (and thus
        // the last few floating-point bits) may differ.
        assert!(
            (w[0] - w[1]).abs() < 1e-9,
            "final RMSE must not depend on the cluster size: {finals:?}"
        );
    }
}
