//! Cross-driver unification tests: `AdmmSolver` and `DisTenC` now share
//! one solver core (`distenc-core`'s `solver` module), so their agreement
//! is a *structural* fact, not a numerical coincidence. These tests pin
//! the two strongest consequences:
//!
//! 1. On a **one-machine cluster** the distributed decomposition collapses
//!    to a single block and a single partition per mode, making every
//!    kernel's floating-point association identical to the serial
//!    solver's — the two drivers must agree **bit for bit**, at any
//!    `DISTENC_THREADS` setting (both sides are thread-count bit-exact).
//! 2. On a **multi-machine cluster** only the per-block accumulation
//!    order differs, so factors agree to rounding (1e-8).
//!
//! Plus regression tests that an empty observed tensor is an error from
//! every solver — never a `NaN` train RMSE (0/0) leaking into the trace.

use distenc::baselines::{AlsConfig, AlsSolver};
use distenc::core::{AdmmConfig, AdmmSolver, DisTenC};
use distenc::dataflow::{Cluster, ClusterConfig};
use distenc::tensor::{CooTensor, KruskalTensor};
use proptest::prelude::*;

fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let truth = KruskalTensor::random(shape, rank, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut mask = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One machine ⇒ one block, one partition per mode ⇒ the cluster
    /// backend's kernels run the very same floating-point associations as
    /// the host backend's. Every factor entry, every traced RMSE, and
    /// every traced delta must be bit-identical.
    #[test]
    fn one_machine_distenc_is_bitwise_the_serial_solver(
        dims in prop::collection::vec(3usize..=9, 3),
        rank in 1usize..=3,
        nnz in 30usize..=90,
        seed in any::<u64>(),
    ) {
        let observed = planted(&dims, rank, nnz, seed);
        let cfg = AdmmConfig { rank, max_iters: 4, tol: 1e-12, ..Default::default() };

        let serial = AdmmSolver::new(cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let cluster = Cluster::new(ClusterConfig::test(1).with_time_budget(None));
        let dist = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();

        prop_assert_eq!(serial.iterations, dist.iterations);
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "factor entries must be bit-identical");
            }
        }
        for (p, q) in serial.trace.points.iter().zip(&dist.trace.points) {
            prop_assert_eq!(p.train_rmse.to_bits(), q.train_rmse.to_bits());
            prop_assert_eq!(p.factor_delta.to_bits(), q.factor_delta.to_bits());
        }
    }

    /// Multi-machine blocking only reassociates the MTTKRP and Gram sums:
    /// the shared core guarantees everything else, so factors agree to
    /// rounding.
    #[test]
    fn multi_machine_distenc_matches_serial_to_rounding(
        machines in 2usize..=4,
        seed in any::<u64>(),
    ) {
        let observed = planted(&[12, 10, 8], 2, 300, seed);
        let cfg = AdmmConfig { rank: 2, max_iters: 6, tol: 1e-12, ..Default::default() };
        let serial = AdmmSolver::new(cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let cluster = Cluster::new(ClusterConfig::test(machines).with_time_budget(None));
        let dist = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            prop_assert!(a.frob_dist(b).unwrap() < 1e-8);
        }
    }
}

/// An empty observed tensor must surface as a setup error from every
/// solver — the shared core also guards it defensively so a future driver
/// can never produce `train_rmse = √(0/0) = NaN`.
#[test]
fn empty_tensor_is_an_error_not_a_nan() {
    let empty = CooTensor::new(vec![6, 5, 4]);
    let cfg = AdmmConfig { rank: 2, max_iters: 3, ..Default::default() };

    let serial = AdmmSolver::new(cfg.clone()).unwrap().solve(&empty, &[None, None, None]);
    assert!(serial.is_err(), "AdmmSolver must reject an empty tensor");

    let cluster = Cluster::new(ClusterConfig::test(2).with_time_budget(None));
    let dist = DisTenC::new(&cluster, cfg).unwrap().solve(&empty, &[None, None, None]);
    assert!(dist.is_err(), "DisTenC must reject an empty tensor");

    let als = AlsSolver::new(AlsConfig { rank: 2, max_iters: 3, ..Default::default() })
        .unwrap()
        .solve(&empty);
    assert!(als.is_err(), "ALS baseline must reject an empty tensor");
}

/// The error path must fire before any trace point exists: no partial
/// trace with NaNs, no "converged" flag.
#[test]
fn empty_tensor_error_carries_no_partial_state() {
    let empty = CooTensor::new(vec![4, 4]);
    let solver = AdmmSolver::new(AdmmConfig { rank: 2, ..Default::default() }).unwrap();
    let err = solver.solve(&empty, &[None, None]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no entries"), "unexpected error message: {msg}");
}
