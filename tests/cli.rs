//! End-to-end tests of the `distenc` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_distenc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("distenc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_complete_evaluate_predict_pipeline() {
    let data = tmp("pipe.coo");
    let model = tmp("pipe.kruskal");

    let out = bin()
        .args(["generate", "--kind", "error", "--dims", "20,20,20", "--nnz", "3000"])
        .args(["--out", data.to_str().unwrap(), "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());
    let sim0 = format!("{}.sim0", data.display());
    assert!(std::path::Path::new(&sim0).exists(), "similarities emitted");

    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "5"])
        .args(["--out", model.to_str().unwrap()])
        .args(["--similarity", &format!("{sim0}@0"), "--alpha", "2", "--iters", "25"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("train RMSE"), "progress reported: {stderr}");

    let out = bin()
        .args(["evaluate", "--model", model.to_str().unwrap()])
        .args(["--test", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rmse:"));
    let rmse: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("rmse: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rmse < 0.2, "training fit should be decent, rmse {rmse}");

    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--at", "1,2,3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(v.is_finite());
}

#[test]
fn helpful_errors() {
    // No command.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required option.
    let out = bin().args(["complete", "--rank", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --input"));

    // Bad similarity spec.
    let data = tmp("err.coo");
    let out = bin()
        .args(["generate", "--kind", "scalability", "--dims", "8,8", "--nnz", "20"])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "2"])
        .args(["--out", tmp("err.kruskal").to_str().unwrap()])
        .args(["--similarity", "nofile"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("FILE@MODE"));

    // Out-of-range prediction index.
    let model = tmp("oob.kruskal");
    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "2"])
        .args(["--out", model.to_str().unwrap(), "--iters", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--at", "99,0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of bounds"));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("distenc complete"));
}

#[test]
fn predict_top_k_and_at_file() {
    let data = tmp("serve.coo");
    let model = tmp("serve.kruskal");
    let out = bin()
        .args(["generate", "--kind", "skewed", "--dims", "30,20,6", "--nnz", "2000"])
        .args(["--out", data.to_str().unwrap(), "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "3"])
        .args(["--out", model.to_str().unwrap(), "--iters", "8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // --top-k ranks the free mode; rows are "index score", best first.
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap()])
        .args(["--top-k", "5", "--mode", "1", "--at", "2,_,3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<(usize, f64)> = stdout
        .lines()
        .map(|l| {
            let (i, s) = l.split_once(' ').unwrap();
            (i.parse().unwrap(), s.parse().unwrap())
        })
        .collect();
    assert_eq!(rows.len(), 5);
    for w in rows.windows(2) {
        assert!(w[0].1 >= w[1].1, "not sorted: {stdout}");
    }
    // The top hit must agree with a point prediction at the same index.
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap()])
        .args(["--at", &format!("2,{},3", rows[0].0)])
        .output()
        .unwrap();
    assert!(out.status.success());
    let point: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert_eq!(point, rows[0].1, "top-K score must equal the point prediction");

    // --at-file scores every listed index through the batch path.
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap()])
        .args(["--at-file", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 4, "3 indices + score: {line}");
        let v: f64 = fields[3].parse().unwrap();
        assert!(v.is_finite());
    }
}

#[test]
fn serve_bench_replays_and_reports() {
    let out = bin()
        .args(["serve-bench", "--dims", "200,100,10", "--rank", "4"])
        .args(["--queries", "2000", "--seed", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replayed 2000 requests"), "{stdout}");
    assert!(stdout.contains("cache hit rate"), "{stdout}");
    assert!(stdout.contains("latency"), "{stdout}");

    // Queued mode exercises the worker/batching path end to end.
    let out = bin()
        .args(["serve-bench", "--dims", "200,100,10", "--rank", "4"])
        .args(["--queries", "1000", "--workers", "2", "--capacity", "64"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("replayed 1000 requests"), "{stdout}");
    assert!(stdout.contains("batches executed"), "{stdout}");
}

#[test]
fn serve_bench_open_loop_reports_json() {
    let out = bin()
        .args(["serve-bench", "--dims", "200,100,10", "--rank", "4"])
        .args(["--queries", "3000", "--qps", "60000", "--workers", "2"])
        .args(["--tenants", "2", "--tenant-zipf", "1.2", "--shed-watermark", "32"])
        .args(["--capacity", "64", "--deadline-ms", "25"])
        .args(["--approx-coverage", "0.95", "--recall-every", "8", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Machine-readable report: every field BENCH_serve_slo.json needs is
    // reproducible from the CLI alone.
    for key in [
        "\"offered_qps\"",
        "\"achieved_qps\"",
        "\"shed_rate\"",
        "\"e2e_us\"",
        "\"recall_at_k\"",
        "\"queued_peak\"",
        "\"tenant-0\"",
        "\"tenant-1\"",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }

    // Open-loop mode refuses a worker-less (manual-drain) queue.
    let out = bin()
        .args(["serve-bench", "--dims", "20,10,5", "--rank", "2"])
        .args(["--queries", "10", "--qps", "1000", "--workers", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--workers >= 1"), "{stderr}");
}
