//! End-to-end tests of the `distenc` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_distenc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("distenc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_complete_evaluate_predict_pipeline() {
    let data = tmp("pipe.coo");
    let model = tmp("pipe.kruskal");

    let out = bin()
        .args(["generate", "--kind", "error", "--dims", "20,20,20", "--nnz", "3000"])
        .args(["--out", data.to_str().unwrap(), "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists());
    let sim0 = format!("{}.sim0", data.display());
    assert!(std::path::Path::new(&sim0).exists(), "similarities emitted");

    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "5"])
        .args(["--out", model.to_str().unwrap()])
        .args(["--similarity", &format!("{sim0}@0"), "--alpha", "2", "--iters", "25"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("train RMSE"), "progress reported: {stderr}");

    let out = bin()
        .args(["evaluate", "--model", model.to_str().unwrap()])
        .args(["--test", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rmse:"));
    let rmse: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("rmse: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!(rmse < 0.2, "training fit should be decent, rmse {rmse}");

    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--at", "1,2,3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: f64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(v.is_finite());
}

#[test]
fn helpful_errors() {
    // No command.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing required option.
    let out = bin().args(["complete", "--rank", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --input"));

    // Bad similarity spec.
    let data = tmp("err.coo");
    let out = bin()
        .args(["generate", "--kind", "scalability", "--dims", "8,8", "--nnz", "20"])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "2"])
        .args(["--out", tmp("err.kruskal").to_str().unwrap()])
        .args(["--similarity", "nofile"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("FILE@MODE"));

    // Out-of-range prediction index.
    let model = tmp("oob.kruskal");
    let out = bin()
        .args(["complete", "--input", data.to_str().unwrap(), "--rank", "2"])
        .args(["--out", model.to_str().unwrap(), "--iters", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--at", "99,0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of bounds"));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("distenc complete"));
}
