//! Live model swap under concurrent load.
//!
//! Readers hammer a [`LiveEngine`] with point and top-K queries while the
//! main thread publishes a series of new model generations. The test
//! proves the swap protocol's two user-visible guarantees:
//!
//! * **zero failed reads** — no query errors, blocks, or torn values
//!   across any publish;
//! * **attributability** — every response carries exactly one generation
//!   tag, and its payload is bit-identical to what that generation's
//!   model produces, so a response can never mix two models.

use distenc::serve::{EngineConfig, LiveEngine, TopKQuery};
use distenc::tensor::KruskalTensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SHAPE: [usize; 3] = [60, 40, 20];
const RANK: usize = 3;
const GENERATIONS: u64 = 6;

#[test]
fn concurrent_queries_survive_model_swaps() {
    // Generation g is models[g-1]; every model is a different seed, so a
    // cross-generation mixup changes bits and the asserts catch it.
    let models: Vec<KruskalTensor> =
        (0..GENERATIONS).map(|g| KruskalTensor::random(&SHAPE, RANK, 100 + g)).collect();
    let live = Arc::new(LiveEngine::new(&models[0], EngineConfig::default()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let (live, stop) = (Arc::clone(&live), Arc::clone(&stop));
            let models = models.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut seen = std::collections::BTreeSet::new();
                let mut at = [0usize; 3];
                loop {
                    at = [
                        (at[0] + r + 1) % SHAPE[0],
                        (at[1] + 3) % SHAPE[1],
                        (at[2] + 7) % SHAPE[2],
                    ];
                    // Point query: the value must be exactly the tagged
                    // generation's model at that cell.
                    let p = live.point(&at).expect("point query failed during swap");
                    assert!(
                        (1..=GENERATIONS).contains(&p.generation),
                        "generation tag {} out of range",
                        p.generation
                    );
                    let oracle = models[(p.generation - 1) as usize].eval(&at);
                    assert_eq!(
                        p.value.to_bits(),
                        oracle.to_bits(),
                        "response not attributable to generation {}",
                        p.generation
                    );
                    // Top-K query: scores must come from one model too.
                    let q = TopKQuery { mode: 0, at: at.to_vec(), k: 3 };
                    let t = live.topk(&q, None).expect("topk query failed during swap");
                    let m = &models[(t.generation - 1) as usize];
                    for item in &t.value.items {
                        let mut idx = at;
                        idx[0] = item.index;
                        assert_eq!(
                            item.score.to_bits(),
                            m.eval(&idx).to_bits(),
                            "top-K score not attributable to generation {}",
                            t.generation
                        );
                    }
                    seen.insert(p.generation);
                    reads += 2;
                    if reads >= 200 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                (reads, seen)
            })
        })
        .collect();

    // Publish the remaining generations while the readers run.
    for m in &models[1..] {
        live.publish(m).unwrap();
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);

    let mut total_reads = 0u64;
    for r in readers {
        let (reads, seen) = r.join().expect("reader panicked (failed read)");
        total_reads += reads;
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|g| (1..=GENERATIONS).contains(g)));
    }
    assert!(total_reads >= 1600, "readers made {total_reads} reads");

    // Steady state: the final generation serves, counters saw every
    // publish and every read.
    assert_eq!(live.generation(), GENERATIONS);
    let s = live.snapshot();
    assert_eq!(s.models_published, GENERATIONS);
    assert_eq!(s.serving_generation, GENERATIONS);
    assert_eq!(s.point_queries + s.topk_queries, total_reads);
}

#[test]
fn swap_changes_shape_without_interrupting_readers() {
    // Streaming growth: each generation adds rows to mode 0. Readers only
    // query the region every generation has, and must never fail.
    let models: Vec<KruskalTensor> =
        (0..4u64).map(|g| KruskalTensor::random(&[30 + 5 * g as usize, 10], 2, g)).collect();
    let live = Arc::new(LiveEngine::new(&models[0], EngineConfig::default()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (live, stop) = (Arc::clone(&live), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut reads = 0u64;
                loop {
                    let r = live.point(&[reads as usize % 30, 3]).expect("failed read");
                    assert!(r.generation >= 1);
                    reads += 1;
                    if reads >= 100 && stop.load(Ordering::Relaxed) {
                        return reads;
                    }
                }
            })
        })
        .collect();
    for m in &models[1..] {
        live.publish(m).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() >= 100);
    }
    assert_eq!(live.shape(), vec![45, 10]);
}
