//! Integration tests of the serving subsystem against the rest of the
//! stack: property tests tying `Engine` to the CP algebra, exactness of
//! the pruned top-K search, and the save → load → serve round trip.

use distenc::serve::{
    Engine, EngineConfig, QueueConfig, Request, Response, ServeQueue, TopKItem, TopKQuery,
};
use distenc::tensor::{io, KruskalTensor};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Strategy: a random CP model with order 2–4, small modes, rank 1–5.
fn model_strategy() -> impl Strategy<Value = KruskalTensor> {
    (prop::collection::vec(2usize..=9, 2..=4), 1usize..=5, any::<u64>())
        .prop_map(|(shape, rank, seed)| KruskalTensor::random(&shape, rank, seed))
}

/// An in-bounds index tuple for `shape`, derived from one seed.
fn index_for(shape: &[usize], seed: u64) -> Vec<usize> {
    shape
        .iter()
        .enumerate()
        .map(|(n, &d)| (seed as usize).wrapping_mul(31).wrapping_add(n * 17) % d)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Engine::point` equals the naive weighted outer-product sum
    /// `Σᵣ ∏ₙ A⁽ⁿ⁾[iₙ, r]` computed straight off the factors — and is
    /// bit-identical to `KruskalTensor::eval`.
    #[test]
    fn point_matches_naive_outer_product_sum(model in model_strategy(), q in any::<u64>()) {
        let engine = Engine::new(&model, EngineConfig { shard_rows: 3, ..Default::default() })
            .expect("engine");
        let idx = index_for(&model.shape(), q);
        let served = engine.point(&idx).expect("point");
        // Independent reference: accumulate rank-one contributions.
        let mut naive = 0.0;
        for rr in 0..model.rank() {
            let mut prod = 1.0;
            for (n, &i) in idx.iter().enumerate() {
                prod *= model.factors()[n].get(i, rr);
            }
            naive += prod;
        }
        prop_assert!((served - naive).abs() <= 1e-12 * naive.abs().max(1.0));
        prop_assert_eq!(served.to_bits(), model.eval(&idx).to_bits());
    }

    /// Batched scoring returns bit-identical values to point scoring.
    #[test]
    fn batch_is_bitwise_equal_to_points(model in model_strategy(), qs in prop::collection::vec(any::<u64>(), 1..40)) {
        let engine = Engine::new(&model, EngineConfig::default()).expect("engine");
        let indices: Vec<Vec<usize>> =
            qs.iter().map(|&q| index_for(&model.shape(), q)).collect();
        let batched = engine.batch(&indices).expect("batch");
        for (idx, &v) in indices.iter().zip(&batched) {
            prop_assert_eq!(v.to_bits(), engine.point(idx).expect("point").to_bits());
        }
    }

    /// Writing a model with `tensor::io`, reading it back, and serving it
    /// reproduces every entry bit-for-bit (the text codec is lossless and
    /// the engine evaluates in `eval`'s exact multiply order).
    #[test]
    fn save_load_serve_round_trip_is_bit_exact(model in model_strategy(), qs in prop::collection::vec(any::<u64>(), 1..20)) {
        let mut buf = Vec::new();
        io::write_kruskal(&model, &mut buf).expect("write");
        let loaded = io::read_kruskal(&buf[..]).expect("read");
        let engine = Engine::new(&loaded, EngineConfig { shard_rows: 5, ..Default::default() })
            .expect("engine");
        for &q in &qs {
            let idx = index_for(&model.shape(), q);
            prop_assert_eq!(
                engine.point(&idx).expect("point").to_bits(),
                model.eval(&idx).to_bits()
            );
        }
    }

    /// The pruned top-K search returns exactly what brute force returns —
    /// same indices, same order, bit-identical scores.
    #[test]
    fn topk_matches_brute_force(model in model_strategy(), q in any::<u64>(), k in 1usize..12) {
        let engine = Engine::new(&model, EngineConfig { shard_rows: 4, ..Default::default() })
            .expect("engine");
        let shape = model.shape();
        let mode = (q as usize) % shape.len();
        let at = index_for(&shape, q ^ 0xabcd);
        let got = engine
            .topk(&TopKQuery { mode, at: at.clone(), k }, None)
            .expect("topk");
        prop_assert!(!got.degraded);

        let mut brute: Vec<TopKItem> = (0..shape[mode])
            .map(|i| {
                let mut idx = at.clone();
                idx[mode] = i;
                TopKItem { index: i, score: model.eval(&idx) }
            })
            .collect();
        brute.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        brute.truncate(k.min(shape[mode]));
        prop_assert_eq!(got.items, brute);
    }
}

/// Several modes and k values on one larger model, against brute force.
#[test]
fn topk_exact_across_modes_and_k() {
    let model = KruskalTensor::random(&[400, 120, 30, 6], 7, 2024);
    let engine = Engine::new(&model, EngineConfig::default()).unwrap();
    let at = vec![17, 40, 3, 2];
    for mode in 0..4 {
        for k in [1, 3, 10, 64, 1000] {
            let got = engine.topk(&TopKQuery { mode, at: at.clone(), k }, None).unwrap();
            let dim = model.shape()[mode];
            let mut brute: Vec<TopKItem> = (0..dim)
                .map(|i| {
                    let mut idx = at.clone();
                    idx[mode] = i;
                    TopKItem { index: i, score: model.eval(&idx) }
                })
                .collect();
            brute.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
            brute.truncate(k.min(dim));
            assert_eq!(got.items, brute, "mode {mode}, k {k}");
            assert_eq!(got.scanned + got.pruned, dim, "accounting, mode {mode} k {k}");
        }
    }
    // On the large mode with small k, pruning must have done real work.
    let res = engine.topk(&TopKQuery { mode: 0, at: at.clone(), k: 1 }, None).unwrap();
    assert!(res.scanned < 400, "bound never pruned: scanned {}", res.scanned);
}

/// Deadline-bounded top-K returns a well-formed degraded prefix whose
/// items agree with brute force over the candidates it scanned.
#[test]
fn deadline_bounded_topk_degrades_gracefully() {
    let model = KruskalTensor::random(&[8000, 20, 10], 6, 99);
    let cfg = EngineConfig { deadline_check_every: 32, topk_cache: 0, ..Default::default() };
    let engine = Engine::new(&model, cfg).unwrap();
    let q = TopKQuery { mode: 0, at: vec![0, 7, 3], k: 200 };
    let res = engine.topk(&q, Some(Duration::ZERO)).unwrap();
    assert!(res.degraded);
    assert!(res.scanned >= 32);
    assert!(res.scanned < 8000);
    assert_eq!(res.items.len(), res.scanned.min(200));
    for w in res.items.windows(2) {
        assert!(w[0].score >= w[1].score || (w[0].score == w[1].score && w[0].index < w[1].index));
    }
    // Every reported score is the true completed-tensor value.
    for item in &res.items {
        assert_eq!(item.score, model.eval(&[item.index, 7, 3]));
    }
    let s = engine.snapshot();
    assert_eq!(s.deadline_misses, 1);
    assert_eq!(s.degraded_results, 1);
}

/// The full stack: model → queue with worker threads → mixed trace, with
/// responses checked against direct evaluation.
#[test]
fn queued_serving_agrees_with_direct_evaluation() {
    let model = KruskalTensor::random(&[60, 30, 12], 5, 7);
    let engine = Arc::new(Engine::new(&model, EngineConfig::default()).unwrap());
    let queue = ServeQueue::new(
        Arc::clone(&engine),
        QueueConfig { workers: 2, window: Duration::from_micros(50), ..Default::default() },
    )
    .unwrap();

    let mut expected = Vec::new();
    let mut tickets = Vec::new();
    for i in 0..60usize {
        let idx = vec![i, i % 30, i % 12];
        expected.push(model.eval(&idx));
        tickets.push(queue.submit(Request::Point { index: idx }).unwrap());
    }
    for (want, ticket) in expected.into_iter().zip(tickets) {
        match ticket.wait() {
            Response::Value(got) => assert_eq!(got.to_bits(), want.to_bits()),
            other => panic!("expected a value, got {other:?}"),
        }
    }
    // The batching window must have coalesced the burst: far fewer engine
    // executions than submissions.
    let s = engine.snapshot();
    assert!(s.batches_executed < 60, "no coalescing: {} batches", s.batches_executed);
    assert_eq!(s.batch_points, 60);
}

/// Cache hits serve repeated top-K queries without re-scanning.
#[test]
fn topk_cache_short_circuits_repeats() {
    let model = KruskalTensor::random(&[500, 40, 8], 4, 13);
    let engine = Engine::new(&model, EngineConfig::default()).unwrap();
    let q = TopKQuery { mode: 0, at: vec![0, 11, 5], k: 10 };
    let first = engine.topk(&q, None).unwrap();
    let scanned_after_first = engine.snapshot().candidates_scanned;
    for _ in 0..5 {
        assert_eq!(engine.topk(&q, None).unwrap(), first);
    }
    let s = engine.snapshot();
    assert_eq!(s.candidates_scanned, scanned_after_first, "hits must not re-scan");
    assert_eq!(s.cache_hits, 5);
    assert_eq!(s.cache_misses, 1);
    assert!(s.cache_hit_rate() > 0.8);
}
