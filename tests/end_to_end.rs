//! End-to-end pipelines across the whole stack: generate → split →
//! complete → score, through the public umbrella crate.

use distenc::datagen::apps::{facebook_like, twitter_like};
use distenc::datagen::synthetic::error_tensor;
use distenc::eval::figures::{self, Profile};
use distenc::eval::methods::{Knobs, Method};
use distenc::eval::metrics;
use distenc::tensor::split::split_missing;

#[test]
fn synthetic_error_pipeline_recovers_signal() {
    let data = error_tensor(&[20, 20, 20], 3, 3_000, 1);
    let split = split_missing(&data.observed, 0.5, 2);
    let sims = data.similarity_refs_helper();
    let knobs = Knobs { rank: 3, alpha: 3.0, max_iters: 40, tol: 1e-8, ..Default::default() };
    let res = Method::DisTenC.run(&split.train, &sims, &knobs).unwrap();
    let rel = metrics::relative_error(&res.model, &split.test).unwrap();
    assert!(rel < 0.25, "relative error {rel}");
}

/// Helper so the test reads naturally (ErrorTensor stores owned sims).
trait SimRefs {
    fn similarity_refs_helper(&self) -> Vec<Option<&distenc::graph::SparseSym>>;
}
impl SimRefs for distenc::datagen::synthetic::ErrorTensor {
    fn similarity_refs_helper(&self) -> Vec<Option<&distenc::graph::SparseSym>> {
        self.similarities.iter().map(Some).collect()
    }
}

#[test]
fn application_pipeline_beats_baseline_on_twitter() {
    let data = twitter_like(80, 80, 10, 3_000, 3);
    let split = split_missing(&data.tensor, 0.5, 4);
    let sims = data.similarity_refs();
    let knobs = Knobs { rank: 5, alpha: 2.0, max_iters: 25, eigen_k: 40, ..Default::default() };
    let dis = Method::DisTenC.run(&split.train, &sims, &knobs).unwrap();
    let als = Method::Als.run(&split.train, &sims, &knobs).unwrap();
    let rmse_dis = metrics::rmse(&dis.model, &split.test).unwrap();
    let rmse_als = metrics::rmse(&als.model, &split.test).unwrap();
    assert!(
        rmse_dis < rmse_als,
        "aux info must help: DisTenC {rmse_dis} vs ALS {rmse_als}"
    );
}

#[test]
fn convergence_pipeline_produces_usable_series() {
    let data = facebook_like(80, 6, 2_500, 5);
    let knobs = Knobs { rank: 4, max_iters: 8, tol: 1e-12, eigen_k: 30, ..Default::default() };
    let series = figures::convergence(&data, &knobs).unwrap();
    assert_eq!(series.len(), Method::APPLICATION.len());
    for s in &series {
        assert_eq!(s.points.len(), 8, "{} must run all iterations", s.method.name());
        // Virtual time strictly increases.
        for w in s.points.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}

#[test]
fn every_figure_driver_runs_at_quick_profile() {
    // Smoke coverage for the full harness surface in one place.
    assert_eq!(figures::fig3a().len(), 5);
    assert_eq!(figures::fig3b().len(), 5);
    assert_eq!(figures::fig3c().len(), 5);
    assert_eq!(figures::fig4().len(), 3);
    assert_eq!(figures::fig5(Profile::Quick).unwrap().len(), 5);
    assert_eq!(figures::fig6a(Profile::Quick).unwrap().len(), 2);
    assert!(!figures::fig6b(Profile::Quick).unwrap().is_empty());
    assert!(!figures::fig7a(Profile::Quick).unwrap().is_empty());
    assert!(!figures::fig7b(Profile::Quick).unwrap().is_empty());
    assert_eq!(figures::table2(Profile::Quick).len(), 4);
    assert!(figures::table3(Profile::Quick).unwrap().purity > 0.5);
}

#[test]
fn headline_claim_distenc_handles_what_others_cannot() {
    // The abstract's "10 ∼ 1000× larger tensors": the largest dimension
    // completed by DisTenC vs each single-point-of-failure baseline.
    let s = figures::fig3a();
    let largest_ok = |name: &str| {
        s.iter()
            .find(|x| x.method.name() == name)
            .unwrap()
            .points
            .iter()
            .filter(|p| p.outcome.is_ok())
            .map(|p| p.x)
            .max()
            .unwrap_or(0)
    };
    let dis = largest_ok("DisTenC");
    assert!(dis >= 1_000_000_000);
    assert!(dis / largest_ok("ALS") >= 100, "≥100× vs ALS");
    assert!(dis / largest_ok("TFAI") >= 1_000, "≥1000× vs TFAI");
    assert!(dis / largest_ok("FlexiFact") >= 100, "≥100× vs FlexiFact");
}
