//! Scaled analogs of the paper's four real-world datasets (Table II).
//!
//! Each generator plants exactly the structure its experiment measures:
//!
//! | analog     | paper shape           | tensor                     | similarity            | experiment |
//! |------------|-----------------------|----------------------------|-----------------------|------------|
//! | `netflix`  | 480K×18K×2K, 100M     | user-movie-time ratings    | movie-movie           | Fig. 6a/6b |
//! | `twitter`  | 640K×640K×16, 1.13M   | creator-expert-topic       | creator & expert      | Fig. 6a    |
//! | `facebook` | 60K×60K×5, 1.55M      | user-user-time links       | user-user             | Fig. 7     |
//! | `dblp`     | 317K×317K×629K, 1.04M | author-paper-venue         | author-author         | Table III  |
//!
//! Shapes are scaled down by a caller-chosen factor so the experiments run
//! in-process; sparsity *ratios* are kept in the neighbourhood of the
//! originals. Ground truth is a low-rank community/smooth factor model,
//! and each similarity matrix is derived from the *same latent structure*
//! (communities or latent features), making it informative the way the
//! paper's side information is.

use crate::synthetic::gaussian;
use distenc_graph::builders::{community_blocks, community_of, knn_from_features, with_noise_edges};
use distenc_graph::SparseSym;
use distenc_linalg::Mat;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated application dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Analog name ("netflix", …).
    pub name: &'static str,
    /// Observed sparse tensor.
    pub tensor: CooTensor,
    /// Per-mode similarity matrices (None = no side information for that
    /// mode).
    pub similarities: Vec<Option<SparseSym>>,
    /// Ground-truth community id per entity for each mode (used by the
    /// concept-discovery evaluation); `None` for modes without planted
    /// communities.
    pub communities: Vec<Option<Vec<usize>>>,
}

impl Dataset {
    /// Similarity slots as the `&[Option<&SparseSym>]` the solvers take.
    pub fn similarity_refs(&self) -> Vec<Option<&SparseSym>> {
        self.similarities.iter().map(|s| s.as_ref()).collect()
    }
}

/// Community-structured factor matrix: each of `communities` blocks gets a
/// non-negative centroid; members are centroid + small noise. Entities in
/// the same community therefore have similar factor rows.
fn community_factors(
    dim: usize,
    rank: usize,
    communities: usize,
    noise: f64,
    rng: &mut StdRng,
) -> Mat {
    let centroids: Vec<Vec<f64>> = (0..communities)
        .map(|_| (0..rank).map(|_| rng.random::<f64>()).collect())
        .collect();
    let mut m = Mat::zeros(dim, rank);
    for i in 0..dim {
        let c = community_of(i, dim, communities);
        for (r, &centroid) in centroids[c].iter().enumerate() {
            m.set(i, r, (centroid + noise * gaussian(rng)).max(0.0));
        }
    }
    m
}

/// Smooth factor matrix: each column is a random low-frequency sinusoid,
/// so nearby indices (e.g. nearby time bins) behave similarly.
fn smooth_factors(dim: usize, rank: usize, rng: &mut StdRng) -> Mat {
    let mut m = Mat::zeros(dim, rank);
    for r in 0..rank {
        let freq = rng.random_range(1..4) as f64;
        let phase = rng.random::<f64>() * std::f64::consts::TAU;
        let amp = 0.5 + rng.random::<f64>() * 0.5;
        for i in 0..dim {
            let x = i as f64 / dim as f64;
            m.set(i, r, amp * (0.6 + 0.4 * (freq * std::f64::consts::TAU * x + phase).sin()));
        }
    }
    m
}

/// Draw one index: uniform, or long-tailed through a popularity
/// permutation (real rating data is power-law distributed over items —
/// the scarce tail is exactly where side information earns its keep).
enum IndexDist {
    Uniform,
    /// `perm[rank]` = entity at popularity rank `rank`; rank is drawn as
    /// `⌊dᵘ⌋` for uniform `u` (heavy head).
    LongTail(Vec<usize>),
}

impl IndexDist {
    fn long_tail(dim: usize, rng: &mut StdRng) -> Self {
        use rand::seq::SliceRandom;
        let mut perm: Vec<usize> = (0..dim).collect();
        // Decouple popularity from community structure (entity ids are
        // block-contiguous) by permuting.
        perm.shuffle(rng);
        IndexDist::LongTail(perm)
    }

    fn sample(&self, dim: usize, rng: &mut StdRng) -> usize {
        match self {
            IndexDist::Uniform => rng.random_range(0..dim),
            IndexDist::LongTail(perm) => {
                let u: f64 = rng.random();
                let rank = (((dim as f64).powf(u) - 1.0) as usize).min(dim - 1);
                perm[rank]
            }
        }
    }
}

/// Sample `nnz` observations of `truth` with per-mode index
/// distributions, mapping values through `f`.
fn sample_observations_dist(
    truth: &KruskalTensor,
    nnz: usize,
    dists: &[IndexDist],
    rng: &mut StdRng,
    f: impl Fn(f64, &mut StdRng) -> f64,
) -> CooTensor {
    let shape = truth.shape();
    let mut t = CooTensor::new(shape.clone());
    t.reserve(nnz);
    let mut idx = vec![0usize; shape.len()];
    // Unique coordinates: duplicates would be *summed* by sort_dedup,
    // corrupting value semantics (e.g. star ratings above 5).
    let mut seen = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    while seen.len() < nnz && attempts < nnz * 20 {
        attempts += 1;
        for ((slot, &d), dist) in idx.iter_mut().zip(&shape).zip(dists) {
            *slot = dist.sample(d, rng);
        }
        if !seen.insert(idx.clone()) {
            continue;
        }
        let v = f(truth.eval(&idx), rng);
        t.push(&idx, v).expect("index in range");
    }
    t.sort_dedup(); // sorts; nothing left to merge
    t
}

/// Sample `nnz` observations of `truth` uniformly, mapping values
/// through `f`.
fn sample_observations(
    truth: &KruskalTensor,
    nnz: usize,
    rng: &mut StdRng,
    f: impl Fn(f64, &mut StdRng) -> f64,
) -> CooTensor {
    let dists: Vec<IndexDist> =
        truth.shape().iter().map(|_| IndexDist::Uniform).collect();
    sample_observations_dist(truth, nnz, &dists, rng, f)
}

/// Netflix analog: `users × movies × time` ratings in `[1, 5]`, with a
/// movie-movie similarity built from the movies' latent features (the
/// paper derives it from titles). Users are community-structured
/// (taste groups), time is smooth.
pub fn netflix_like(users: usize, movies: usize, time: usize, nnz: usize, seed: u64) -> Dataset {
    let rank = 6;
    let mut rng = StdRng::seed_from_u64(seed);
    // Many small taste clusters: individual movies get too few ratings to
    // pin their factors down from data alone, which is exactly when the
    // movie-movie similarity earns its keep (the paper's motivation).
    let user_f = community_factors(users, rank, 8, 0.2, &mut rng);
    let movie_f = community_factors(movies, rank, 15, 0.15, &mut rng);
    let time_f = smooth_factors(time, rank, &mut rng);
    let movie_sim = {
        let clean = knn_from_features(&movie_f, 5.min(movies.saturating_sub(1)), 1.0);
        // Title-derived similarity is noisy: ~15% spurious edges.
        with_noise_edges(&clean, clean.nnz() * 15 / 200, 0.5, seed ^ 0x71)
    };
    let truth = KruskalTensor::new(vec![user_f, movie_f, time_f]).expect("equal ranks");

    // Map the latent signal into the 1..5 star scale with light noise.
    let vals: Vec<f64> = {
        let mut probe = StdRng::seed_from_u64(seed ^ 0x9a);
        (0..200)
            .map(|_| {
                let idx: Vec<usize> = truth
                    .shape()
                    .iter()
                    .map(|&d| probe.random_range(0..d))
                    .collect();
                truth.eval(&idx)
            })
            .collect()
    };
    // Standardize around the mid-scale star rating: a mean/σ map keeps
    // the signal linear (min-max + clamping would saturate the scale ends
    // and floor every method at the same nonlinear error).
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let sd = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
        / vals.len() as f64)
        .sqrt()
        .max(1e-9);
    // Movie popularity is long-tailed (as in the real Netflix data): most
    // ratings hit a few head movies while tail movies stay scarce.
    let dists = vec![
        IndexDist::Uniform,
        IndexDist::long_tail(movies, &mut rng),
        IndexDist::Uniform,
    ];
    let tensor = sample_observations_dist(&truth, nnz, &dists, &mut rng, |v, rng| {
        let stars = 3.0 + 0.9 * (v - mean) / sd + 0.2 * gaussian(rng);
        stars.clamp(1.0, 5.0)
    });

    Dataset {
        name: "netflix",
        tensor,
        similarities: vec![None, Some(movie_sim), None],
        communities: vec![Some(community_ids(users, 8)), Some(community_ids(movies, 15)), None],
    }
}

/// Twitter-List analog: `creator × expert × topic`, with creator-creator
/// and expert-expert similarities from location communities (§IV-E builds
/// them from shared cities).
pub fn twitter_like(
    creators: usize,
    experts: usize,
    topics: usize,
    nnz: usize,
    seed: u64,
) -> Dataset {
    let rank = 5;
    let communities = 10;
    let mut rng = StdRng::seed_from_u64(seed);
    let creator_f = community_factors(creators, rank, communities, 0.2, &mut rng);
    let expert_f = community_factors(experts, rank, communities, 0.2, &mut rng);
    let topic_f = smooth_factors(topics, rank, &mut rng);
    let creator_sim = {
        let clean = community_blocks(creators, communities, 0.3, seed ^ 1);
        with_noise_edges(&clean, clean.nnz() * 15 / 200, 1.0, seed ^ 0x72)
    };
    let expert_sim = {
        let clean = community_blocks(experts, communities, 0.3, seed ^ 2);
        with_noise_edges(&clean, clean.nnz() * 15 / 200, 1.0, seed ^ 0x73)
    };
    let truth = KruskalTensor::new(vec![creator_f, expert_f, topic_f]).expect("equal ranks");
    let tensor = sample_observations(&truth, nnz, &mut rng, |v, rng| {
        (v + 0.05 * gaussian(rng)).max(0.0)
    });
    Dataset {
        name: "twitter",
        tensor,
        similarities: vec![Some(creator_sim), Some(expert_sim), None],
        communities: vec![
            Some(community_ids(creators, communities)),
            Some(community_ids(experts, communities)),
            None,
        ],
    }
}

/// Facebook analog for link prediction: `user × user × time` interaction
/// strengths, with a user-user similarity (the paper derives it from wall
/// posts; here it comes from the same friendship communities that shape
/// the links).
pub fn facebook_like(users: usize, time: usize, nnz: usize, seed: u64) -> Dataset {
    let rank = 5;
    let communities = 12;
    let mut rng = StdRng::seed_from_u64(seed);
    let user_f = community_factors(users, rank, communities, 0.2, &mut rng);
    // Both user modes share the same latent structure (it is the same
    // population), but get independent noise.
    let user_f2 = {
        let mut m = user_f.clone();
        for v in m.as_mut_slice() {
            *v = (*v + 0.1 * gaussian(&mut rng)).max(0.0);
        }
        m
    };
    let time_f = smooth_factors(time, rank, &mut rng);
    let user_sim = {
        let clean = community_blocks(users, communities, 0.25, seed ^ 3);
        // Wall-post similarity connects plenty of non-friends too.
        with_noise_edges(&clean, clean.nnz() * 15 / 200, 1.0, seed ^ 0x74)
    };
    let truth = KruskalTensor::new(vec![user_f, user_f2, time_f]).expect("equal ranks");
    let tensor = sample_observations(&truth, nnz, &mut rng, |v, rng| {
        (v + 0.05 * gaussian(rng)).max(0.0)
    });
    Dataset {
        name: "facebook",
        tensor,
        similarities: vec![Some(user_sim.clone()), Some(user_sim), None],
        communities: vec![
            Some(community_ids(users, communities)),
            Some(community_ids(users, communities)),
            None,
        ],
    }
}

/// DBLP analog for concept discovery (Table III): `author × paper ×
/// venue` with `concepts` planted research communities (the paper finds
/// Databases / Data Mining / Information Retrieval). Authors, papers, and
/// venues all carry the community structure; the author-author similarity
/// encodes shared affiliation.
pub fn dblp_like(
    authors: usize,
    papers: usize,
    venues: usize,
    concepts: usize,
    nnz: usize,
    seed: u64,
) -> Dataset {
    let rank = concepts.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Concept-aligned factors: community c loads mostly on component c,
    // so factor columns correspond to discoverable concepts.
    let concept_factor = |dim: usize, rng: &mut StdRng| {
        let mut m = Mat::zeros(dim, rank);
        for i in 0..dim {
            let c = community_of(i, dim, concepts);
            for r in 0..rank {
                let base = if r == c % rank { 1.0 } else { 0.05 };
                m.set(i, r, (base + 0.05 * gaussian(rng)).max(0.0));
            }
        }
        m
    };
    let author_f = concept_factor(authors, &mut rng);
    let paper_f = concept_factor(papers, &mut rng);
    let venue_f = concept_factor(venues, &mut rng);
    let author_sim = {
        let clean = community_blocks(authors, concepts, 0.3, seed ^ 4);
        with_noise_edges(&clean, clean.nnz() * 15 / 200, 1.0, seed ^ 0x75)
    };
    let truth = KruskalTensor::new(vec![author_f, paper_f, venue_f]).expect("equal ranks");
    let tensor = sample_observations(&truth, nnz, &mut rng, |v, rng| {
        (v + 0.02 * gaussian(rng)).max(0.0)
    });
    Dataset {
        name: "dblp",
        tensor,
        similarities: vec![Some(author_sim), None, None],
        communities: vec![
            Some(community_ids(authors, concepts)),
            Some(community_ids(papers, concepts)),
            Some(community_ids(venues, concepts)),
        ],
    }
}

fn community_ids(dim: usize, communities: usize) -> Vec<usize> {
    (0..dim).map(|i| community_of(i, dim, communities)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netflix_values_are_star_ratings() {
        let d = netflix_like(100, 60, 10, 2000, 1);
        assert_eq!(d.tensor.shape(), &[100, 60, 10]);
        for (_, v) in d.tensor.iter() {
            assert!((1.0..=5.0).contains(&v), "rating {v} out of range");
        }
        assert!(d.similarities[1].is_some(), "movie-movie similarity present");
        assert!(d.similarities[0].is_none());
    }

    #[test]
    fn twitter_has_two_similarities() {
        let d = twitter_like(80, 80, 12, 1500, 2);
        assert!(d.similarities[0].is_some());
        assert!(d.similarities[1].is_some());
        assert!(d.similarities[2].is_none());
        assert_eq!(d.similarity_refs().len(), 3);
    }

    #[test]
    fn facebook_modes_share_user_similarity() {
        let d = facebook_like(90, 6, 1200, 3);
        assert_eq!(d.tensor.shape(), &[90, 90, 6]);
        let s0 = d.similarities[0].as_ref().unwrap();
        let s1 = d.similarities[1].as_ref().unwrap();
        assert_eq!(s0, s1);
    }

    #[test]
    fn dblp_concepts_align_with_factor_columns() {
        let d = dblp_like(90, 120, 9, 3, 2500, 4);
        let comm = d.communities[0].as_ref().unwrap();
        assert_eq!(comm.len(), 90);
        // Planted: the strongest entries of the tensor connect same-concept
        // triples. Spot-check: entries with all three modes in concept 0
        // should be larger on average than mixed triples.
        let mut same = (0.0, 0);
        let mut mixed = (0.0, 0);
        let paper_comm = d.communities[1].as_ref().unwrap();
        let venue_comm = d.communities[2].as_ref().unwrap();
        for (idx, v) in d.tensor.iter() {
            let (a, p, ve) = (comm[idx[0]], paper_comm[idx[1]], venue_comm[idx[2]]);
            if a == p && p == ve {
                same.0 += v;
                same.1 += 1;
            } else if a != p && p != ve && a != ve {
                mixed.0 += v;
                mixed.1 += 1;
            }
        }
        let avg_same = same.0 / same.1.max(1) as f64;
        let avg_mixed = mixed.0 / mixed.1.max(1) as f64;
        assert!(
            avg_same > 2.0 * avg_mixed,
            "same-concept {avg_same} vs mixed {avg_mixed}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = netflix_like(50, 40, 8, 500, 9);
        let b = netflix_like(50, 40, 8, 500, 9);
        assert_eq!(a.tensor, b.tensor);
        let c = dblp_like(60, 60, 6, 3, 500, 9);
        let d = dblp_like(60, 60, 6, 3, 500, 9);
        assert_eq!(c.tensor, d.tensor);
    }

    #[test]
    fn similarity_is_mostly_in_community_with_some_noise() {
        // The bulk of similarity edges connect same-community pairs (that
        // is what makes the side information informative), but a noise
        // fraction crosses communities (real side information is dirty;
        // exactly block-structured similarity would be trivially
        // factorizable).
        let d = twitter_like(60, 60, 8, 500, 11);
        let sim = d.similarities[0].as_ref().unwrap();
        let comm = d.communities[0].as_ref().unwrap();
        let (mut within, mut across) = (0usize, 0usize);
        for i in 0..60 {
            let (cols, _) = sim.row(i);
            for &j in cols {
                if comm[i] == comm[j] {
                    within += 1;
                } else {
                    across += 1;
                }
            }
        }
        assert!(across > 0, "noise edges must exist");
        assert!(
            within as f64 > 4.0 * across as f64,
            "in-community edges must dominate: {within} vs {across}"
        );
    }
}
