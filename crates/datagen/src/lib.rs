//! Synthetic workload generators for the DisTenC evaluation.
//!
//! Two families (§IV-A):
//!
//! * [`synthetic`] — the paper's own synthetic data: uniformly random
//!   tensors for the scalability sweeps (`Synthetic-scalability`) and the
//!   linear-factor construction with tri-diagonal similarities for the
//!   reconstruction-error tests (`Synthetic-error`, Eq. 17).
//! * [`apps`] — *analogs* of the four real-world datasets (Table II).
//!   The originals are proprietary or impractically large, so each analog
//!   plants the structure the corresponding experiment measures: the same
//!   tensor shape family, comparable sparsity, a low-rank signal, and
//!   per-mode similarity matrices that are genuinely informative about
//!   that signal (see DESIGN.md §2 on substitutions).

#![warn(missing_docs)]

pub mod apps;
pub mod synthetic;

pub use apps::{dblp_like, facebook_like, netflix_like, twitter_like, Dataset};
pub use synthetic::{error_tensor, scalability_tensor, ErrorTensor};
