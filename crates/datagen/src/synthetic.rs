//! The paper's synthetic datasets (§IV-A).

use distenc_graph::builders::tridiagonal_chain;
use distenc_graph::SparseSym;
use distenc_linalg::Mat;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `Synthetic-scalability`: a random `I×J×K` tensor with `nnz` uniformly
/// placed non-zeros (values uniform in `[0,1)`), duplicates merged. The
/// scalability tests pair it with identity similarity matrices, whose
/// Laplacian is zero.
pub fn scalability_tensor(shape: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(shape.to_vec());
    t.reserve(nnz);
    let mut idx = vec![0usize; shape.len()];
    for _ in 0..nnz {
        for (slot, &d) in idx.iter_mut().zip(shape) {
            *slot = rng.random_range(0..d);
        }
        t.push(&idx, rng.random::<f64>()).expect("index in range");
    }
    t.sort_dedup();
    t
}

/// The `Synthetic-error` dataset: observed tensor, ground-truth CP model,
/// and per-mode tri-diagonal similarities.
#[derive(Debug, Clone)]
pub struct ErrorTensor {
    /// Observed entries (values of the ground-truth model at sampled
    /// coordinates).
    pub observed: CooTensor,
    /// The generating rank-`R` model.
    pub truth: KruskalTensor,
    /// Per-mode similarity matrices (Eq. 17's tri-diagonal chain).
    pub similarities: Vec<SparseSym>,
}

/// The paper's linear factor construction (§IV-A):
///
/// `A⁽¹⁾ᵢᵣ = i·εᵣ + ε′ᵣ` (and likewise per mode) with standard-normal
/// constants, which makes *consecutive rows similar* — exactly the
/// structure the tri-diagonal similarity (Eq. 17) describes. One
/// deviation: we scale the row index to `i/Iₙ` so entry magnitudes stay
/// `O(1)` at any dimension (the paper's literal formula grows entries as
/// `O(I³)`, which breaks double precision at the `I = 10⁴` size it is
/// used with); the consecutive-row similarity that the experiment relies
/// on is preserved verbatim.
pub fn error_tensor(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> ErrorTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors = Vec::with_capacity(shape.len());
    for &dim in shape {
        let mut m = Mat::zeros(dim, rank);
        for r in 0..rank {
            // ε, ε′ ~ N(0,1) via Box-Muller.
            let eps = gaussian(&mut rng);
            let eps2 = gaussian(&mut rng);
            for i in 0..dim {
                m.set(i, r, (i as f64 / dim as f64) * eps + eps2);
            }
        }
        factors.push(m);
    }
    let truth = KruskalTensor::new(factors).expect("equal ranks by construction");

    let mut mask = CooTensor::new(shape.to_vec());
    mask.reserve(nnz);
    let mut idx = vec![0usize; shape.len()];
    for _ in 0..nnz {
        for (slot, &d) in idx.iter_mut().zip(shape) {
            *slot = rng.random_range(0..d);
        }
        mask.push(&idx, 1.0).expect("index in range");
    }
    mask.sort_dedup();
    let observed = truth.eval_at(&mask).expect("shapes match");

    let similarities = shape.iter().map(|&d| tridiagonal_chain(d)).collect();
    ErrorTensor { observed, truth, similarities }
}

/// A skewed random tensor: mode indices follow a power law
/// (`index ∝ dᵘ` for uniform `u`), concentrating non-zeros in a heavy
/// head — the load-imbalance regime Algorithm 2's greedy partitioning is
/// designed for (real tensors are skewed; §III-C).
pub fn skewed_tensor(shape: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(shape.to_vec());
    t.reserve(nnz);
    let mut idx = vec![0usize; shape.len()];
    for _ in 0..nnz {
        for (slot, &d) in idx.iter_mut().zip(shape) {
            let u: f64 = rng.random();
            *slot = (((d as f64).powf(u) - 1.0) as usize).min(d - 1);
        }
        t.push(&idx, rng.random::<f64>()).expect("index in range");
    }
    t.sort_dedup();
    t
}

/// Standard normal sample (Box-Muller).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_tensor_shape_and_nnz() {
        let t = scalability_tensor(&[100, 80, 60], 5000, 1);
        assert_eq!(t.shape(), &[100, 80, 60]);
        // Collisions merge, so nnz ≤ requested but close.
        assert!(t.nnz() > 4900 && t.nnz() <= 5000);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn scalability_tensor_deterministic() {
        let a = scalability_tensor(&[50, 50, 50], 1000, 7);
        let b = scalability_tensor(&[50, 50, 50], 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn error_tensor_consecutive_rows_similar() {
        let e = error_tensor(&[50, 50, 50], 4, 2000, 3);
        // The construction makes adjacent factor rows closer than random
        // pairs, which is what the chain similarity encodes.
        let f = &e.truth.factors()[0];
        let mut adjacent = 0.0;
        let mut distant = 0.0;
        for i in 0..49 {
            let d: f64 = f
                .row(i)
                .iter()
                .zip(f.row(i + 1))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            adjacent += d.sqrt();
            let j = (i + 25) % 50;
            let d2: f64 = f
                .row(i)
                .iter()
                .zip(f.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            distant += d2.sqrt();
        }
        assert!(adjacent < distant * 0.2, "adjacent {adjacent} vs distant {distant}");
    }

    #[test]
    fn error_tensor_values_match_truth() {
        let e = error_tensor(&[20, 20, 20], 3, 500, 5);
        for (idx, v) in e.observed.iter() {
            assert!((v - e.truth.eval(idx)).abs() < 1e-12);
        }
    }

    #[test]
    fn error_tensor_entries_are_order_one() {
        let e = error_tensor(&[200, 200, 200], 20, 1000, 9);
        let max = e.observed.values().iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(max < 1e3, "entries must stay O(1)-ish, got {max}");
    }

    #[test]
    fn error_tensor_has_chain_similarities() {
        let e = error_tensor(&[30, 25, 20], 2, 200, 11);
        assert_eq!(e.similarities.len(), 3);
        assert_eq!(e.similarities[0].dim(), 30);
        assert_eq!(e.similarities[1].dim(), 25);
        assert_eq!(e.similarities[2].get(3, 4), 1.0);
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
