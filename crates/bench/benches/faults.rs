//! Fault-recovery benchmark: virtual-clock cost of surviving an injected
//! machine crash as a function of checkpoint interval.
//!
//! Writes `BENCH_faults.json` at the repository root. One fixed planted
//! workload runs under one fixed fault schedule (a machine crash halfway
//! through the solve) at checkpoint intervals 0 (no snapshots — the
//! driver cold-restarts from iteration 0), 1, 5, and 10. For each
//! interval the table reports:
//!
//! * `checkpoint_overhead_pct` — virtual-time cost of taking snapshots,
//!   measured on a *fault-free* run at the same interval (gathering and
//!   persisting the image is charged cluster work);
//! * `recovery_seconds` / `faulted_virtual_seconds` — the honest price of
//!   the crash: lost attempt, block reload, image broadcast, recomputed
//!   iterations;
//! * `total_overhead_pct` — faulted run vs the fault-free, no-checkpoint
//!   baseline, i.e. what the interval actually buys end to end.
//!
//! Every run — snapshotted, faulted, or neither — is asserted to finish
//! with bit-identical factors: the sweep measures cost, never accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, CheckpointPolicy, CompletionResult, DisTenC};
use distenc_dataflow::{Cluster, ClusterConfig, Fault, FaultPlan, Metrics};
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHAPE: [usize; 3] = [30, 24, 20];
const RANK: usize = 3;
const NNZ: usize = 8_000;
const ITERS: usize = 12;
const MACHINES: usize = 3;
// ~22 virtual stages per iteration on this workload; stage 180 lands in
// iteration ~8 of 12, after snapshots exist at intervals 1 and 5 but
// before the first interval-10 snapshot — so the sweep shows image-based
// resume, a coarser image, and a forced cold restart side by side.
const CRASH_STAGE: u64 = 180;
const CRASH_MACHINE: usize = 1;
const INTERVALS: [usize; 4] = [0, 1, 5, 10];

fn workload() -> CooTensor {
    let truth = KruskalTensor::random(&SHAPE, RANK, 11);
    let mut rng = StdRng::seed_from_u64(0xfa17b);
    let mut mask = CooTensor::new(SHAPE.to_vec());
    for _ in 0..NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn cfg(every: usize) -> AdmmConfig {
    AdmmConfig {
        rank: RANK,
        max_iters: ITERS,
        tol: 1e-12,
        checkpoint: (every > 0).then(|| CheckpointPolicy::every(every)),
        ..Default::default()
    }
}

fn crash_plan() -> FaultPlan {
    FaultPlan::new(vec![Fault::MachineCrash { at_stage: CRASH_STAGE, machine: CRASH_MACHINE }])
}

fn run(observed: &CooTensor, plan: FaultPlan, every: usize) -> (CompletionResult, Metrics) {
    let cluster =
        Cluster::new(ClusterConfig::test(MACHINES).with_time_budget(None).with_faults(plan));
    let res = DisTenC::new(&cluster, cfg(every))
        .unwrap()
        .solve(observed, &[None, None, None])
        .unwrap();
    (res, cluster.metrics())
}

fn factor_bits(r: &CompletionResult) -> Vec<Vec<u64>> {
    r.model
        .factors()
        .iter()
        .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn interval_rows(observed: &CooTensor, baseline: &(CompletionResult, Metrics)) -> Vec<String> {
    let (clean, clean_m) = baseline;
    INTERVALS
        .iter()
        .map(|&every| {
            let label = if every == 0 { "no_checkpoint".into() } else { format!("every_{every}") };
            // Snapshot cost alone: fault-free at this interval.
            let (ckpt_res, ckpt_m) = run(observed, FaultPlan::none(), every);
            // Crash + recovery at this interval.
            let (fault_res, fault_m) = run(observed, crash_plan(), every);
            assert_eq!(factor_bits(clean), factor_bits(&ckpt_res), "{label}: snapshot perturbed");
            assert_eq!(factor_bits(clean), factor_bits(&fault_res), "{label}: recovery inexact");
            let base = clean_m.virtual_seconds;
            format!(
                "    \"{label}\": {{ \"every\": {every}, \"checkpoint_overhead_pct\": {:.2}, \"faulted_virtual_seconds\": {:.4}, \"recovery_seconds\": {:.4}, \"machines_lost\": {}, \"total_overhead_pct\": {:.2} }}",
                100.0 * (ckpt_m.virtual_seconds - base) / base,
                fault_m.virtual_seconds,
                fault_m.recovery_seconds,
                fault_m.machines_lost,
                100.0 * (fault_m.virtual_seconds - base) / base,
            )
        })
        .collect()
}

fn bench_recovery(c: &mut Criterion) {
    // Wall-clock sanity bench: one crash + checkpointed recovery, end to
    // end (the JSON table below reports the virtual-clock economics).
    let observed = workload();
    c.bench_function("fault_crash_recover_every5", |b| {
        b.iter(|| run(&observed, crash_plan(), 5))
    });
}

fn emit_json(_c: &mut Criterion) {
    let observed = workload();
    let baseline = run(&observed, FaultPlan::none(), 0);
    let rows = interval_rows(&observed, &baseline);
    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {SHAPE:?}, \"nnz\": {NNZ}, \"rank\": {RANK}, \"max_iters\": {ITERS}, \"machines\": {MACHINES} }},\n  \"fault\": {{ \"kind\": \"machine_crash\", \"at_stage\": {CRASH_STAGE}, \"machine\": {CRASH_MACHINE} }},\n  \"fault_free_virtual_seconds\": {:.4},\n  \"intervals\": {{\n{}\n  }},\n  \"note\": \"virtual-clock accounting on the simulated cluster; checkpoint_overhead_pct = fault-free run at this snapshot interval vs no snapshots; total_overhead_pct = crash+recovery at this interval vs the fault-free no-checkpoint baseline; every=0 means no snapshots, so recovery is a cold restart from iteration 0; all runs asserted bit-identical in factors\"\n}}\n",
        baseline.1.virtual_seconds,
        rows.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_faults.json");
    std::fs::write(&path, &json).expect("write BENCH_faults.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_recovery, emit_json);
criterion_main!(benches);
