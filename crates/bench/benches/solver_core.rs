//! Solver-core benchmark: steady-state iteration throughput and heap
//! allocation traffic of the unified ADMM solver core, at 1 and 4
//! threads.
//!
//! Writes `BENCH_solver_core.json` at the repository root. Each entry
//! reports nanoseconds and heap allocations **per steady-state
//! iteration**, isolated from setup cost by differencing two runs of the
//! same problem at different `max_iters` (setup — validation, eigen
//! truncation, workspace sizing — is identical in both, so the delta is
//! pure iteration work).
//!
//! Allocation numbers require the counting global allocator:
//!
//! ```sh
//! cargo bench -p distenc-bench --bench solver_core --features alloc-count
//! ```
//!
//! Without the feature the timing numbers are still written and the
//! allocation fields are `null`.
//!
//! The `"before"` block is the same measurement taken on the pre-refactor
//! solver (commit 91fbabb, duplicated Algorithm-1 step math, fresh `Mat`s
//! every mode-step) on this container, recorded here so the JSON always
//! carries the comparison the refactor is judged against.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, AdmmSolver};
use distenc_dataflow::ExecMode;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SHAPE: [usize; 3] = [120, 100, 80];
const NNZ: usize = 60_000;
const RANK: usize = 8;
const THREADS: [usize; 2] = [1, 4];
/// Iteration counts differenced to isolate per-iteration cost.
const SHORT_ITERS: usize = 2;
const LONG_ITERS: usize = 10;

/// Pre-refactor numbers (see module docs). Allocations counted with the
/// same `alloc-count` allocator; timing is median-of-5 on this container.
mod before {
    /// (threads, ns/iter, allocs/iter, bytes/iter)
    pub const STEADY: [(usize, u64, u64, u64); 2] =
        [(1, 4_791_586, 112, 3_777_256), (4, 5_956_253, 285, 3_779_952)];
}

fn workload() -> CooTensor {
    let truth = KruskalTensor::random(&SHAPE, RANK, 17);
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let mut mask = CooTensor::new(SHAPE.to_vec());
    for _ in 0..NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn solve(x: &CooTensor, threads: usize, iters: usize) {
    let cfg = AdmmConfig {
        rank: RANK,
        max_iters: iters,
        tol: 1e-300, // factor deltas never get this small: all `iters` iterations run
        exec: if threads >= 2 { ExecMode::Threads(threads) } else { ExecMode::Sequential },
        ..Default::default()
    };
    let laps = vec![None; 3];
    AdmmSolver::new(cfg).unwrap().solve(black_box(x), &laps).unwrap();
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Allocation counters (all threads) accumulated by one call to `f`, or
/// `None` without the `alloc-count` feature.
fn allocs_during(f: impl FnOnce()) -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-count")]
    {
        let before = distenc_dataflow::alloc::snapshot();
        f();
        let d = distenc_dataflow::alloc::snapshot().delta(before);
        Some((d.global_allocs, d.global_bytes))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        f();
        None
    }
}

struct Steady {
    threads: usize,
    ns_per_iter: u64,
    allocs_per_iter: Option<u64>,
    bytes_per_iter: Option<u64>,
}

fn measure_steady(x: &CooTensor, threads: usize) -> Steady {
    solve(x, threads, 1); // warm up caches and code paths
    let span = (LONG_ITERS - SHORT_ITERS) as u64;
    let t_short = median_ns(5, || solve(x, threads, SHORT_ITERS));
    let t_long = median_ns(5, || solve(x, threads, LONG_ITERS));
    let ns_per_iter = t_long.saturating_sub(t_short) / span;

    // Median-of-3 on the counters: the thread pool's first dispatch per
    // solve allocates job boxes, identical in both runs, so it cancels.
    let mut alloc_samples: Vec<Option<(u64, u64)>> = (0..3)
        .map(|_| {
            let short = allocs_during(|| solve(x, threads, SHORT_ITERS))?;
            let long = allocs_during(|| solve(x, threads, LONG_ITERS))?;
            Some((
                long.0.saturating_sub(short.0) / span,
                long.1.saturating_sub(short.1) / span,
            ))
        })
        .collect();
    alloc_samples.sort_unstable();
    let per_iter = alloc_samples[alloc_samples.len() / 2];

    Steady {
        threads,
        ns_per_iter,
        allocs_per_iter: per_iter.map(|p| p.0),
        bytes_per_iter: per_iter.map(|p| p.1),
    }
}

fn bench_steady_iteration(c: &mut Criterion) {
    let x = workload();
    let mut g = c.benchmark_group("solver_core_steady_iteration");
    for n in THREADS {
        g.bench_function(&format!("threads_{n}"), |b| {
            b.iter(|| solve(&x, n, SHORT_ITERS))
        });
    }
    g.finish();
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

fn emit_json(_c: &mut Criterion) {
    let x = workload();
    let after: Vec<Steady> = THREADS.iter().map(|&n| measure_steady(&x, n)).collect();

    let fmt_after = |s: &Steady| {
        format!(
            "    \"threads_{}\": {{ \"ns_per_iter\": {}, \"iters_per_sec\": {:.2}, \"allocs_per_iter\": {}, \"bytes_per_iter\": {} }}",
            s.threads,
            s.ns_per_iter,
            1e9 / s.ns_per_iter.max(1) as f64,
            json_opt(s.allocs_per_iter),
            json_opt(s.bytes_per_iter),
        )
    };
    let fmt_before = |(threads, ns, allocs, bytes): (usize, u64, u64, u64)| {
        format!(
            "    \"threads_{threads}\": {{ \"ns_per_iter\": {ns}, \"iters_per_sec\": {:.2}, \"allocs_per_iter\": {allocs}, \"bytes_per_iter\": {bytes} }}",
            1e9 / ns.max(1) as f64,
        )
    };

    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {:?}, \"nnz\": {NNZ}, \"rank\": {RANK}, \"iter_span\": [{SHORT_ITERS}, {LONG_ITERS}] }},\n  \"alloc_count_enabled\": {},\n  \"before\": {{\n{}\n  }},\n  \"after\": {{\n{}\n  }},\n  \"note\": \"per steady-state iteration, isolated by differencing max_iters={SHORT_ITERS} and ={LONG_ITERS} runs; 'before' captured pre-refactor on this container; timings are host-dependent, allocation counts are not\"\n}}\n",
        SHAPE,
        cfg!(feature = "alloc-count"),
        before::STEADY.map(fmt_before).join(",\n"),
        after.iter().map(fmt_after).collect::<Vec<_>>().join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_solver_core.json");
    std::fs::write(&path, &json).expect("write BENCH_solver_core.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_steady_iteration, emit_json);
criterion_main!(benches);
