//! Fused-sweep benchmark: steady-state iteration time of the ADMM solver
//! with the fused residual-refresh+MTTKRP schedule (the default) against
//! the unfused N+1-pass schedule, on the `solver_core` workload.
//!
//! Writes `BENCH_fused.json` at the repository root. Entries report
//! nanoseconds **per steady-state iteration**, isolated from setup by
//! differencing two runs of the same problem at different `max_iters`
//! (setup is identical in both, so the delta is pure iteration work).
//! The rank sweep covers both rank-specialized inner loops (R = 8, 16)
//! and the generic fallback (R = 17), fused and unfused, so the JSON
//! shows the fusion win per kernel variant.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, AdmmSolver};
use distenc_dataflow::ExecMode;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SHAPE: [usize; 3] = [120, 100, 80];
const NNZ: usize = 60_000;
const RANK: usize = 8;
const THREADS: [usize; 2] = [1, 4];
const RANKS: [usize; 3] = [8, 16, 17];
/// Iteration counts differenced to isolate per-iteration cost.
const SHORT_ITERS: usize = 2;
const LONG_ITERS: usize = 10;

fn workload(rank: usize) -> CooTensor {
    let truth = KruskalTensor::random(&SHAPE, rank, 17);
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let mut mask = CooTensor::new(SHAPE.to_vec());
    for _ in 0..NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn solve(x: &CooTensor, rank: usize, threads: usize, fused: bool, iters: usize) {
    let cfg = AdmmConfig {
        rank,
        max_iters: iters,
        tol: 1e-300, // factor deltas never get this small: all `iters` iterations run
        fused,
        exec: if threads >= 2 { ExecMode::Threads(threads) } else { ExecMode::Sequential },
        ..Default::default()
    };
    let laps = vec![None; 3];
    AdmmSolver::new(cfg).unwrap().solve(black_box(x), &laps).unwrap();
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// ns per steady-state iteration, by differencing short and long runs.
/// More repetitions than the other benches (15 vs 5): fused-vs-unfused
/// gaps can be ~10%, within single-shot noise on a busy container.
fn steady_ns(x: &CooTensor, rank: usize, threads: usize, fused: bool) -> u64 {
    solve(x, rank, threads, fused, 1); // warm up caches and code paths
    let span = (LONG_ITERS - SHORT_ITERS) as u64;
    let t_short = median_ns(15, || solve(x, rank, threads, fused, SHORT_ITERS));
    let t_long = median_ns(15, || solve(x, rank, threads, fused, LONG_ITERS));
    t_long.saturating_sub(t_short) / span
}

fn fmt_pair(label: &str, fused_ns: u64, plain_ns: u64) -> String {
    format!(
        "    \"{label}\": {{ \"fused_ns_per_iter\": {fused_ns}, \"unfused_ns_per_iter\": {plain_ns}, \"unfused_over_fused\": {:.3} }}",
        plain_ns as f64 / fused_ns.max(1) as f64,
    )
}

fn bench_steady_iteration(c: &mut Criterion) {
    let x = workload(RANK);
    let mut g = c.benchmark_group("fused_steady_iteration");
    for fused in [true, false] {
        let tag = if fused { "fused" } else { "unfused" };
        g.bench_function(tag, |b| b.iter(|| solve(&x, RANK, 1, fused, SHORT_ITERS)));
    }
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let x = workload(RANK);
    let threads_rows: Vec<String> = THREADS
        .iter()
        .map(|&n| {
            let fused_ns = steady_ns(&x, RANK, n, true);
            let plain_ns = steady_ns(&x, RANK, n, false);
            fmt_pair(&format!("threads_{n}"), fused_ns, plain_ns)
        })
        .collect();
    let rank_rows: Vec<String> = RANKS
        .iter()
        .map(|&r| {
            let xr = workload(r);
            let fused_ns = steady_ns(&xr, r, 1, true);
            let plain_ns = steady_ns(&xr, r, 1, false);
            fmt_pair(&format!("rank_{r}"), fused_ns, plain_ns)
        })
        .collect();

    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {SHAPE:?}, \"nnz\": {NNZ}, \"rank\": {RANK}, \"iter_span\": [{SHORT_ITERS}, {LONG_ITERS}] }},\n  \"threads\": {{\n{}\n  }},\n  \"rank_sweep_threads_1\": {{\n{}\n  }},\n  \"note\": \"ns per steady-state iteration, isolated by differencing max_iters={SHORT_ITERS} and ={LONG_ITERS} runs; fused = one sweep refreshes the residual and banks the next mode-0 MTTKRP (3 passes/iter on this order-3 tensor), unfused = separate sweeps (4 passes/iter); ranks 8/16 use the specialized inner loops, 17 the generic fallback; results are bit-identical either way\"\n}}\n",
        threads_rows.join(",\n"),
        rank_rows.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_fused.json");
    std::fs::write(&path, &json).expect("write BENCH_fused.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_steady_iteration, emit_json);
criterion_main!(benches);
