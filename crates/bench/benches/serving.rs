//! Benchmarks of the serving subsystem: per-point vs batched scoring,
//! pruned vs brute-force top-K, and an end-to-end Zipf trace replay.
//!
//! The headline comparison is `point_loop` vs `batch`: both score the
//! same 256 entries, but `batch` gathers factor rows once and sweeps a
//! shared rank loop, so it must come out faster per entry.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_serve::{synth_trace, Engine, EngineConfig, Request, TopKQuery, TraceConfig};
use distenc_tensor::KruskalTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHAPE: [usize; 3] = [20_000, 5_000, 50];
const RANK: usize = 16;

fn engine() -> Engine {
    let model = KruskalTensor::random(&SHAPE, RANK, 7);
    Engine::new(&model, EngineConfig::default()).unwrap()
}

fn random_indices(n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| SHAPE.iter().map(|&d| rng.random_range(0..d)).collect())
        .collect()
}

fn bench_point_vs_batch(c: &mut Criterion) {
    let engine = engine();
    let queries = random_indices(256, 11);
    let mut g = c.benchmark_group("scoring_256_entries");
    g.bench_function("point_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for idx in &queries {
                acc += engine.point(black_box(idx)).unwrap();
            }
            acc
        })
    });
    g.bench_function("batch", |b| {
        b.iter(|| engine.batch(black_box(&queries)).unwrap())
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let engine = engine();
    let mut g = c.benchmark_group("topk_mode0_20k_candidates");
    // Uncached pruned scan: rotate the fixed indices so the LRU never hits.
    let mut fresh = (0..u64::MAX).map(|i| TopKQuery {
        mode: 0,
        at: vec![0, (i as usize * 17) % SHAPE[1], (i as usize * 3) % SHAPE[2]],
        k: 10,
    });
    g.bench_function("pruned_uncached", |b| {
        b.iter(|| {
            let q = fresh.next().unwrap();
            engine.topk(black_box(&q), None).unwrap()
        })
    });
    // Brute force over the same mode, for scale.
    let at = [0usize, 42, 7];
    g.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut best = f64::NEG_INFINITY;
            for i in 0..SHAPE[0] {
                let idx = [i, at[1], at[2]];
                best = best.max(engine.point(black_box(&idx)).unwrap());
            }
            best
        })
    });
    // Cache hit path: the same query over and over.
    let q = TopKQuery { mode: 0, at: vec![0, 42, 7], k: 10 };
    engine.topk(&q, None).unwrap();
    g.bench_function("cached", |b| {
        b.iter(|| engine.topk(black_box(&q), None).unwrap())
    });
    g.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    let engine = engine();
    let cfg = TraceConfig { queries: 2_000, ..Default::default() };
    let trace = synth_trace(&SHAPE, &cfg);
    c.bench_function("zipf_trace_2k_requests", |b| {
        b.iter(|| {
            for request in &trace {
                match request {
                    Request::Point { index } => {
                        engine.point(black_box(index)).unwrap();
                    }
                    Request::Batch { indices } => {
                        engine.batch(black_box(indices)).unwrap();
                    }
                    Request::TopK { query, budget } => {
                        engine.topk(black_box(query), *budget).unwrap();
                    }
                }
            }
        })
    });
}

criterion_group!(benches, bench_point_vs_batch, bench_topk, bench_trace_replay);
criterion_main!(benches);
