//! Open-loop SLO harness for the serving stack.
//!
//! Drives a multi-worker [`ServeQueue`] with a Poisson arrival stream
//! (open loop: arrivals never wait for completions, so overload shows up
//! as a latency cliff instead of being hidden by submitter self-
//! throttling) and walks an offered-QPS ladder past saturation. Writes
//! `BENCH_serve_slo.json` at the repository root with three sections:
//!
//! * `ladder` — one row per offered-QPS rung: achieved throughput,
//!   end-to-end p50/p99 of *admitted* requests, shed/reject/timeout
//!   counts, and the peak queue depth. `sustained_qps` is the highest
//!   rung whose p99 stays under the SLO target with under 1% shed.
//! * `approx` — exact vs approximate top-K tier on the same uncached
//!   query stream: median latency of both, the speedup, and recall@K
//!   measured by the engine's own shadow-sampling counters.
//! * `fairness` — a 3-tenant registry under Zipf-skewed tenant load:
//!   per-tenant served/shed counts and peak lane occupancy, showing
//!   deficit-round-robin keeping cold tenants alive under a hot flood.
//!
//! The model's recommendation mode carries a popularity skew (row norms
//! decay like a power law), which is the regime the norm-ordered
//! approximate tier is designed for — real recommendation factors are
//! popularity-skewed, and uniform random factors would make any
//! norm-prefix cut look artificially bad.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_linalg::Mat;
use distenc_serve::{
    open_loop_trace, AdmissionControl, ApproxTopK, Engine, EngineConfig, ModelRegistry,
    OpenLoopConfig, QueueConfig, Response, ServeError, ServeQueue, TopKQuery,
    TraceConfig,
};
use distenc_tensor::KruskalTensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHAPE: [usize; 3] = [4000, 800, 40];
const RANK: usize = 8;
const QPS_LADDER: [f64; 5] = [20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0];
const RUN_SECS: f64 = 0.5;
const WORKERS: usize = 4;
/// SLO: p99 end-to-end latency of admitted requests. Generous relative
/// to the batching window because the latency histogram is log₂-bucketed
/// (quantiles report a bucket *upper bound*, i.e. up to 2× the true
/// value).
const P99_TARGET: Duration = Duration::from_millis(5);
/// SLO: a rung only counts as sustained if under 1% of accepted
/// submissions were shed.
const MAX_SHED_RATE: f64 = 0.01;

/// CP model whose mode-0 rows carry a power-law popularity skew.
fn skewed_model(seed: u64) -> KruskalTensor {
    let mut factors: Vec<Mat> = SHAPE
        .iter()
        .enumerate()
        .map(|(n, &d)| Mat::random(d, RANK, seed.wrapping_add(n as u64)))
        .collect();
    for i in 0..SHAPE[0] {
        let scale = 1.0 / (1.0 + i as f64).powf(0.7);
        for v in factors[0].row_mut(i) {
            *v *= scale;
        }
    }
    KruskalTensor::new(factors).unwrap()
}

/// Spin/sleep until `start + offset`. Sleeps for coarse gaps, spins the
/// last stretch — at 400k QPS the inter-arrival gap is 2.5µs, far below
/// OS sleep granularity.
fn pace(start: Instant, offset: Duration) {
    let target = start + offset;
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        if target - now > Duration::from_micros(300) {
            std::thread::sleep(target - now - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

struct RungStats {
    offered_qps: f64,
    achieved_qps: f64,
    served: u64,
    shed: u64,
    rejected: u64,
    timed_out: u64,
    errors: u64,
    p50: Duration,
    p99: Duration,
    shed_rate: f64,
    depth_peak: u64,
}

impl RungStats {
    fn meets_slo(&self) -> bool {
        self.p99 <= P99_TARGET && self.shed_rate < MAX_SHED_RATE && self.rejected == 0
    }

    fn to_json(&self) -> String {
        format!(
            "    {{ \"offered_qps\": {:.0}, \"achieved_qps\": {:.0}, \"served\": {}, \"shed\": {}, \"rejected\": {}, \"timed_out\": {}, \"errors\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"shed_rate\": {:.4}, \"queue_depth_peak\": {}, \"meets_slo\": {} }}",
            self.offered_qps,
            self.achieved_qps,
            self.served,
            self.shed,
            self.rejected,
            self.timed_out,
            self.errors,
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.shed_rate,
            self.depth_peak,
            self.meets_slo(),
        )
    }
}

/// One rung of the ladder: a fresh engine+queue, `RUN_SECS` of offered
/// load at `qps`, every ticket resolved and classified.
fn run_rung(model: &KruskalTensor, qps: f64) -> RungStats {
    let engine = Arc::new(Engine::new(model, EngineConfig::default()).unwrap());
    let queue = ServeQueue::new(
        Arc::clone(&engine),
        QueueConfig {
            capacity: 2048,
            max_batch: 128,
            window: Duration::from_micros(100),
            workers: WORKERS,
            admission: AdmissionControl {
                shed_watermark: Some(1536),
                deadline_aware: true,
                tenant_share: None,
            },
            fair_quantum: 8,
        },
    )
    .unwrap();
    let cfg = OpenLoopConfig {
        qps,
        tenants: 1,
        tenant_zipf: 1.0,
        trace: TraceConfig {
            queries: (qps * RUN_SECS) as usize,
            point_frac: 0.7,
            batch_frac: 0.15,
            batch_size: 16,
            k: 8,
            topk_budget: None,
            zipf_exponent: 1.1,
            seed: 42,
        },
    };
    let trace = open_loop_trace(&SHAPE, &cfg);
    let deadline = Some(Duration::from_millis(25));
    let mut tickets = Vec::with_capacity(trace.len());
    let mut rejected = 0u64;
    let start = Instant::now();
    for tr in &trace {
        pace(start, tr.offset);
        match queue.submit_with_deadline(tr.request.clone(), deadline) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let (mut served, mut shed, mut timed_out, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Response::Value(_) | Response::Values(_) | Response::TopK(_) => served += 1,
            Response::Shed(_) => shed += 1,
            Response::TimedOut => timed_out += 1,
            Response::Error(_) => errors += 1,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    drop(queue);
    let s = engine.snapshot();
    RungStats {
        offered_qps: qps,
        achieved_qps: served as f64 / wall,
        served,
        shed,
        rejected,
        timed_out,
        errors,
        p50: s.e2e_p50,
        p99: s.e2e_p99,
        shed_rate: s.shed_rate(),
        depth_peak: s.queue_depth_peak,
    }
}

/// Distinct (cache-missing) top-K queries over the recommendation mode.
fn fresh_queries(n: usize) -> Vec<TopKQuery> {
    (0..n)
        .map(|i| TopKQuery {
            mode: 0,
            at: vec![0, (i * 17) % SHAPE[1], (i * 3) % SHAPE[2]],
            k: 8,
        })
        .collect()
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Exact vs approximate top-K: median uncached latency of each tier plus
/// recall@K from the engine's shadow-sampling counters.
fn approx_section(model: &KruskalTensor) -> String {
    let queries = fresh_queries(400);
    let time_tier = |cfg: EngineConfig| -> u64 {
        let engine = Engine::new(model, cfg).unwrap();
        let mut samples: Vec<u64> = queries
            .iter()
            .map(|q| {
                let t0 = Instant::now();
                black_box(engine.topk(black_box(q), None).unwrap());
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        median_ns(&mut samples)
    };
    let exact_ns = time_tier(EngineConfig::default());
    let approx_cfg = EngineConfig {
        approx_topk: Some(ApproxTopK::NormCoverage(0.95)),
        ..Default::default()
    };
    let approx_ns = time_tier(approx_cfg.clone());

    // Recall on a separate engine so the exact shadow searches it runs
    // (recall_check_every = 1 re-answers every query exactly) never
    // pollute the latency numbers above.
    let recall_engine = Engine::new(
        model,
        EngineConfig { recall_check_every: 1, ..approx_cfg },
    )
    .unwrap();
    for q in &queries {
        recall_engine.topk(q, None).unwrap();
    }
    let s = recall_engine.snapshot();
    format!(
        "  \"approx\": {{\n    \"coverage\": 0.95,\n    \"k\": 8,\n    \"exact_ns\": {exact_ns},\n    \"approx_ns\": {approx_ns},\n    \"speedup\": {:.2},\n    \"recall_at_k\": {:.4},\n    \"recall_checks\": {},\n    \"approx_queries\": {}\n  }}",
        exact_ns as f64 / approx_ns.max(1) as f64,
        s.recall_at_k(),
        s.recall_checks,
        s.approx_topk_queries,
    )
}

/// Three tenants behind one registry-backed queue under Zipf-skewed
/// tenant load: per-tenant outcomes and peak lane occupancy.
fn fairness_section(model: &KruskalTensor) -> String {
    const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
    let reg = Arc::new(ModelRegistry::new());
    for name in TENANTS {
        reg.register(name, model, EngineConfig::default()).unwrap();
    }
    let queue = ServeQueue::with_registry(
        Arc::clone(&reg),
        QueueConfig {
            capacity: 1024,
            max_batch: 128,
            window: Duration::from_micros(100),
            workers: 2,
            admission: AdmissionControl {
                shed_watermark: None,
                deadline_aware: false,
                tenant_share: Some(512),
            },
            fair_quantum: 8,
        },
    )
    .unwrap();
    let cfg = OpenLoopConfig {
        qps: 50_000.0,
        tenants: TENANTS.len(),
        tenant_zipf: 1.2,
        trace: TraceConfig {
            queries: 25_000,
            point_frac: 0.7,
            batch_frac: 0.15,
            batch_size: 16,
            k: 8,
            topk_budget: None,
            zipf_exponent: 1.1,
            seed: 43,
        },
    };
    let trace = open_loop_trace(&SHAPE, &cfg);
    let mut tickets = Vec::with_capacity(trace.len());
    let start = Instant::now();
    for tr in &trace {
        pace(start, tr.offset);
        match queue.submit_for(TENANTS[tr.tenant], tr.request.clone()) {
            Ok(t) => tickets.push((tr.tenant, t)),
            Err(ServeError::QueueFull { .. }) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let mut served = [0u64; 3];
    let mut shed = [0u64; 3];
    for (tenant, t) in tickets {
        match t.wait() {
            Response::Value(_) | Response::Values(_) | Response::TopK(_) => {
                served[tenant] += 1
            }
            Response::Shed(_) => shed[tenant] += 1,
            _ => {}
        }
    }
    let occ = queue.occupancy();
    let rows: Vec<String> = TENANTS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let peak = occ
                .iter()
                .find(|(n, _, _)| n == name)
                .map_or(0, |(_, _, p)| *p);
            format!(
                "    \"{name}\": {{ \"served\": {}, \"shed\": {}, \"peak_occupancy\": {peak} }}",
                served[i], shed[i]
            )
        })
        .collect();
    format!(
        "  \"fairness\": {{\n    \"tenant_zipf\": 1.2,\n    \"tenant_share\": 512,\n{}\n  }}",
        rows.join(",\n")
    )
}

fn emit_json(_c: &mut Criterion) {
    let model = skewed_model(7);
    let rungs: Vec<RungStats> = QPS_LADDER.iter().map(|&qps| run_rung(&model, qps)).collect();
    let sustained = rungs
        .iter()
        .filter(|r| r.meets_slo())
        .map(|r| r.offered_qps)
        .fold(0.0f64, f64::max);
    let ladder: Vec<String> = rungs.iter().map(RungStats::to_json).collect();
    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {SHAPE:?}, \"rank\": {RANK}, \"run_secs\": {RUN_SECS}, \"workers\": {WORKERS}, \"mix\": \"70% point / 15% batch(16) / 15% top-8\" }},\n  \"slo\": {{ \"p99_target_us\": {:.0}, \"max_shed_rate\": {MAX_SHED_RATE}, \"sustained_qps\": {sustained:.0} }},\n  \"ladder\": [\n{}\n  ],\n{},\n{},\n  \"note\": \"Open-loop Poisson arrivals (arrivals never wait for completions); p50/p99 are end-to-end latency of admitted requests from a log2-bucketed histogram (quantiles are bucket upper bounds, up to 2x the true value); sustained_qps is the highest rung with p99 under target, shed rate under {MAX_SHED_RATE}, and zero capacity rejections; past saturation the watermark shedder answers excess load with typed Shed responses so admitted-request p99 stays bounded; approx tier is norm-coverage early exit on a popularity-skewed mode, recall measured by shadow-sampling exact re-answers\"\n}}\n",
        P99_TARGET.as_secs_f64() * 1e6,
        ladder.join(",\n"),
        approx_section(&model),
        fairness_section(&model),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serve_slo.json");
    std::fs::write(&path, &json).expect("write BENCH_serve_slo.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, emit_json);
criterion_main!(benches);
