//! Microbenchmarks of the computational kernels every method is built
//! from: MTTKRP, Gram products, the residual tensor, Khatri-Rao oracles,
//! Cholesky solves, and the Laplacian eigensolvers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_graph::builders::{community_blocks, tridiagonal_chain};
use distenc_graph::Laplacian;
use distenc_linalg::{Cholesky, Mat};
use distenc_tensor::khatri_rao::khatri_rao;
use distenc_tensor::mttkrp::{gram_product, mttkrp};
use distenc_tensor::residual::{completed_mttkrp, residual};
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_coo(shape: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        t.push(&idx, rng.random::<f64>()).unwrap();
    }
    t.sort_dedup();
    t
}

fn bench_mttkrp(c: &mut Criterion) {
    let shape = [500usize, 400, 300];
    let x = random_coo(&shape, 50_000, 1);
    let model = KruskalTensor::random(&shape, 10, 2);
    c.bench_function("mttkrp_coo_50k_r10", |b| {
        b.iter(|| mttkrp(black_box(&x), model.factors(), 0).unwrap())
    });
    // CSF (§III-C's fiber layout): shared fibers amortize the Hadamard
    // products; the denser the fibers, the bigger the win.
    let csf = distenc_tensor::CsfTensor::for_mode(&x, 0).unwrap();
    c.bench_function("mttkrp_csf_50k_r10", |b| {
        b.iter(|| csf.mttkrp_root(model.factors()).unwrap())
    });
    // Fiber-dense case: few distinct (i, j) prefixes.
    let dense_fibers = random_coo(&[50, 50, 300], 50_000, 2);
    let coo_df = dense_fibers.clone();
    let csf_df = distenc_tensor::CsfTensor::for_mode(&dense_fibers, 0).unwrap();
    let model_df = KruskalTensor::random(&[50, 50, 300], 10, 3);
    c.bench_function("mttkrp_coo_fiberdense_50k_r10", |b| {
        b.iter(|| mttkrp(black_box(&coo_df), model_df.factors(), 0).unwrap())
    });
    c.bench_function("mttkrp_csf_fiberdense_50k_r10", |b| {
        b.iter(|| csf_df.mttkrp_root(model_df.factors()).unwrap())
    });
    c.bench_function("csf_build_50k", |b| {
        b.iter(|| distenc_tensor::CsfTensor::for_mode(black_box(&x), 0).unwrap())
    });
}

fn bench_gram_product(c: &mut Criterion) {
    let model = KruskalTensor::random(&[2000, 2000, 2000], 20, 3);
    let grams: Vec<Mat> = model.factors().iter().map(Mat::gram).collect();
    c.bench_function("gram_product_r20", |b| {
        b.iter(|| gram_product(black_box(&grams), 0).unwrap())
    });
    c.bench_function("gram_2000x20", |b| {
        b.iter(|| black_box(&model.factors()[0]).gram())
    });
}

fn bench_residual(c: &mut Criterion) {
    let shape = [500usize, 400, 300];
    let x = random_coo(&shape, 50_000, 4);
    let model = KruskalTensor::random(&shape, 10, 5);
    c.bench_function("residual_50k_r10", |b| {
        b.iter(|| residual(black_box(&x), &model).unwrap())
    });
    let e = residual(&x, &model).unwrap();
    let grams: Vec<Mat> = model.factors().iter().map(Mat::gram).collect();
    c.bench_function("completed_mttkrp_50k_r10", |b| {
        b.iter(|| completed_mttkrp(black_box(&e), &model, &grams, 0).unwrap())
    });
}

fn bench_khatri_rao(c: &mut Criterion) {
    let a = Mat::random(200, 10, 6);
    let bm = Mat::random(150, 10, 7);
    c.bench_function("khatri_rao_200x150_r10", |b| {
        b.iter(|| khatri_rao(black_box(&a), black_box(&bm)).unwrap())
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = Mat::random(64, 32, 8).gram();
    g.add_diag(1.0);
    let rhs = Mat::random(500, 32, 9);
    c.bench_function("cholesky_factor_r32", |b| {
        b.iter(|| Cholesky::factor(black_box(&g)).unwrap())
    });
    let ch = Cholesky::factor(&g).unwrap();
    c.bench_function("cholesky_solve_right_500x32", |b| {
        b.iter(|| ch.solve_right(black_box(&rhs)).unwrap())
    });
}

fn bench_eigensolvers(c: &mut Criterion) {
    let chain = Laplacian::from_similarity(tridiagonal_chain(400));
    c.bench_function("laplacian_truncate_chain400_k20", |b| {
        b.iter(|| chain.truncate(20, 1).unwrap())
    });
    let blocks = Laplacian::from_similarity(community_blocks(600, 10, 0.3, 2));
    c.bench_function("laplacian_truncate_blocks600_k20", |b| {
        b.iter(|| blocks.truncate(20, 1).unwrap())
    });
    let trunc = chain.truncate(20, 1).unwrap();
    let rhs = Mat::random(400, 10, 3);
    c.bench_function("shifted_inverse_apply_400x10_k20", |b| {
        b.iter(|| trunc.apply_shifted_inverse(1.0, 2.0, black_box(&rhs)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_mttkrp,
    bench_gram_product,
    bench_residual,
    bench_khatri_rao,
    bench_cholesky,
    bench_eigensolvers
);
criterion_main!(benches);
