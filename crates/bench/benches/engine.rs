//! Benchmarks of the dataflow substrate and the greedy partitioner —
//! the pieces whose costs dominate the simulation itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_dataflow::{Cluster, ClusterConfig, Dist};
use distenc_partition::{greedy_boundaries, TensorBlocks};
use distenc_tensor::CooTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_coo(shape: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(shape.to_vec());
    for _ in 0..nnz {
        let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
        t.push(&idx, rng.random::<f64>()).unwrap();
    }
    t
}

fn bench_greedy_partition(c: &mut Criterion) {
    let t = random_coo(&[10_000, 10_000, 1_000], 200_000, 1);
    let theta = t.slice_nnz(0);
    c.bench_function("greedy_boundaries_10k_slices", |b| {
        b.iter(|| greedy_boundaries(black_box(&theta), 9))
    });
    c.bench_function("tensor_blocks_200k_nnz_9x9x9", |b| {
        b.iter(|| TensorBlocks::build(black_box(&t), &[9, 9, 9]))
    });
}

fn bench_dist_ops(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::test(8).with_time_budget(None));
    let pairs: Vec<(u64, u64)> = (0..100_000).map(|i| (i % 1000, i)).collect();
    c.bench_function("dist_reduce_by_key_100k", |b| {
        b.iter(|| {
            let d = Dist::from_vec(&cluster, pairs.clone(), 16).unwrap();
            d.reduce_by_key(16, 1.0, |a, v| *a += v).unwrap()
        })
    });
    let nums: Vec<u64> = (0..100_000).collect();
    c.bench_function("dist_map_100k", |b| {
        b.iter(|| {
            let d = Dist::from_vec(&cluster, nums.clone(), 16).unwrap();
            d.map(1.0, |x| x * 2).unwrap()
        })
    });
}

criterion_group!(benches, bench_greedy_partition, bench_dist_ops);
criterion_main!(benches);
