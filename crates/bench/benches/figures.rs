//! Benchmarks of the figure drivers themselves: the modelled sweeps
//! (Figs. 3–4) are microsecond-cheap by design; the measured drivers are
//! benchmarked at the `Quick` profile to keep `cargo bench` bounded while
//! still regenerating every figure's data path end to end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_eval::figures::{self, Profile};

fn bench_model_sweeps(c: &mut Criterion) {
    c.bench_function("fig3a_model_sweep", |b| b.iter(|| black_box(figures::fig3a())));
    c.bench_function("fig3b_model_sweep", |b| b.iter(|| black_box(figures::fig3b())));
    c.bench_function("fig3c_model_sweep", |b| b.iter(|| black_box(figures::fig3c())));
    c.bench_function("fig4_model_sweep", |b| b.iter(|| black_box(figures::fig4())));
}

fn bench_measured_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("measured_figures");
    g.sample_size(10);
    g.bench_function("fig5_quick", |b| {
        b.iter(|| figures::fig5(Profile::Quick).unwrap())
    });
    g.bench_function("fig6a_quick", |b| {
        b.iter(|| figures::fig6a(Profile::Quick).unwrap())
    });
    g.bench_function("fig6b_quick", |b| {
        b.iter(|| figures::fig6b(Profile::Quick).unwrap())
    });
    g.bench_function("fig7a_quick", |b| {
        b.iter(|| figures::fig7a(Profile::Quick).unwrap())
    });
    g.bench_function("fig7b_quick", |b| {
        b.iter(|| figures::fig7b(Profile::Quick).unwrap())
    });
    g.bench_function("table3_quick", |b| {
        b.iter(|| figures::table3(Profile::Quick).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_model_sweeps, bench_measured_figures);
criterion_main!(benches);
