//! Thread-scaling benchmarks of the ADMM hot path: blocked MTTKRP, the
//! residual refresh, and a full one-iteration solve at 1/2/4/8 threads.
//!
//! Besides the criterion timings, the run writes `BENCH_parallel.json`
//! at the repository root with the measured medians and the host's
//! available parallelism. The JSON records what the host could actually
//! show: on a single-core container every thread count necessarily ties
//! (the pool adds dispatch overhead and nothing else), so speedups are
//! *reported*, never asserted.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, AdmmSolver};
use distenc_dataflow::{ExecMode, Executor};
use distenc_partition::greedy_boundaries;
use distenc_tensor::mttkrp::mttkrp_blocked;
use distenc_tensor::residual::residual_into_exec;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SHAPE: [usize; 3] = [300, 200, 100];
const NNZ: usize = 120_000;
const RANK: usize = 16;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn random_coo(seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = CooTensor::new(SHAPE.to_vec());
    for _ in 0..NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        t.push(&idx, rng.random::<f64>() * 2.0 - 1.0).unwrap();
    }
    t.sort_dedup();
    t
}

fn executor(n: usize) -> Executor {
    Executor::new(if n >= 2 { ExecMode::Threads(n) } else { ExecMode::Sequential })
}

fn bench_mttkrp_threads(c: &mut Criterion) {
    let x = random_coo(3);
    let model = KruskalTensor::random(&SHAPE, RANK, 5);
    let mut g = c.benchmark_group("mttkrp_mode0_120k_nnz");
    for n in THREADS {
        let exec = executor(n);
        let cuts = greedy_boundaries(&x.slice_nnz(0), exec.parallelism());
        g.bench_function(&format!("threads_{n}"), |b| {
            b.iter(|| {
                mttkrp_blocked(black_box(&x), model.factors(), 0, &cuts, &exec).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_residual_threads(c: &mut Criterion) {
    let x = random_coo(7);
    let model = KruskalTensor::random(&SHAPE, RANK, 9);
    let mut g = c.benchmark_group("residual_refresh_120k_nnz");
    for n in THREADS {
        let exec = executor(n);
        let mut e = x.clone();
        g.bench_function(&format!("threads_{n}"), |b| {
            b.iter(|| residual_into_exec(black_box(&x), &model, &mut e, &exec).unwrap())
        });
    }
    g.finish();
}

fn solve_once(x: &CooTensor, n: usize) {
    let cfg = AdmmConfig {
        rank: RANK,
        max_iters: 1,
        tol: 1e-15,
        exec: if n >= 2 { ExecMode::Threads(n) } else { ExecMode::Sequential },
        ..Default::default()
    };
    let laps = vec![None; 3];
    AdmmSolver::new(cfg).unwrap().solve(x, &laps).unwrap();
}

fn bench_admm_iteration_threads(c: &mut Criterion) {
    let x = random_coo(11);
    let mut g = c.benchmark_group("admm_one_iteration");
    for n in THREADS {
        g.bench_function(&format!("threads_{n}"), |b| {
            b.iter(|| solve_once(black_box(&x), n))
        });
    }
    g.finish();
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Re-measure the same workloads with a plain timer and persist the
/// numbers for the trajectory file. Honest by construction: whatever the
/// host gives is what lands in the JSON.
fn emit_json(_c: &mut Criterion) {
    let x = random_coo(3);
    let model = KruskalTensor::random(&SHAPE, RANK, 5);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut mttkrp_ns = Vec::new();
    let mut admm_ns = Vec::new();
    for n in THREADS {
        let exec = executor(n);
        let cuts = greedy_boundaries(&x.slice_nnz(0), exec.parallelism());
        mttkrp_ns.push((
            n,
            median_ns(7, || {
                mttkrp_blocked(&x, model.factors(), 0, &cuts, &exec).unwrap();
            }),
        ));
        admm_ns.push((n, median_ns(3, || solve_once(&x, n))));
    }

    let fmt = |pairs: &[(usize, u128)]| {
        pairs
            .iter()
            .map(|(n, ns)| format!("\"{n}\": {ns}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let speedup = |pairs: &[(usize, u128)], n: usize| {
        let base = pairs.iter().find(|(t, _)| *t == 1).map(|(_, ns)| *ns).unwrap_or(1);
        let at = pairs.iter().find(|(t, _)| *t == n).map(|(_, ns)| *ns).unwrap_or(base);
        base as f64 / at.max(1) as f64
    };
    let json = format!(
        "{{\n  \"host_parallelism\": {host},\n  \"shape\": {:?},\n  \"nnz\": {NNZ},\n  \"rank\": {RANK},\n  \"mttkrp_median_ns\": {{ {} }},\n  \"admm_one_iteration_median_ns\": {{ {} }},\n  \"mttkrp_speedup_4_threads\": {:.3},\n  \"admm_speedup_4_threads\": {:.3},\n  \"note\": \"measured on this host; with host_parallelism=1 no speedup is physically possible and none is asserted\"\n}}\n",
        SHAPE,
        fmt(&mttkrp_ns),
        fmt(&admm_ns),
        speedup(&mttkrp_ns, 4),
        speedup(&admm_ns, 4),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_parallel.json");
    std::fs::write(&path, &json).expect("write BENCH_parallel.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_mttkrp_threads,
    bench_residual_threads,
    bench_admm_iteration_threads,
    emit_json
);
criterion_main!(benches);
