//! Sketched-tier benchmark: accuracy and economics of the sampled MTTKRP
//! solver against the exact tier, on the accuracy-gate workloads.
//!
//! Writes `BENCH_sketched.json` at the repository root with, per planted
//! workload:
//!
//! * the exact tier's final train RMSE and wall time,
//! * the gate run (`samples = nnz/4`): RMSE delta vs exact and the
//!   per-iteration entry-touch ratio (`nnz/samples` — the sketch phase
//!   touches `samples·N` entries per iteration where the exact tier
//!   touches `nnz·N`; `tests/pass_count.rs` pins that accounting),
//! * the sample-efficiency curve over `samples ∈ {nnz/2, nnz/4, nnz/8,
//!   nnz/16}` — how far the budget drops before the RMSE gap leaves
//!   [`accuracy::ACCURACY_GATE_TOL`],
//! * time-to-target-RMSE for both tiers (first trace crossing of
//!   `1.5 × exact_final_rmse`).
//!
//! Non-finite values (a diverged low-budget run) serialize as `null` —
//! honest curve data, not a bench failure.

use criterion::{criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, AdmmSolver, SolverTier, DEFAULT_POLISH_ITERS};
use distenc_eval::accuracy::{
    self, gate_config, gate_workloads, sample_efficiency_curve, time_to_target,
};
use distenc_tensor::CooTensor;

/// The divisors of nnz the efficiency curve sweeps.
const CURVE_DIVISORS: [usize; 4] = [2, 4, 8, 16];
/// The gate's own budget: `samples = nnz / GATE_DIVISOR`.
const GATE_DIVISOR: usize = 4;

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(s) if s.is_finite() => format!("{s:.6}"),
        _ => "null".to_string(),
    }
}

/// Solve with an explicit tier, returning (final RMSE, wall seconds,
/// trace) — RMSE recomputed from the model so both tiers are measured
/// identically.
fn run_tier(
    observed: &CooTensor,
    cfg: &AdmmConfig,
    tier: SolverTier,
) -> (f64, f64, distenc_core::ConvergenceTrace) {
    let laps = vec![None; observed.order()];
    let cfg = AdmmConfig { solver_tier: tier, ..cfg.clone() };
    let t0 = std::time::Instant::now();
    let res = AdmmSolver::new(cfg).unwrap().solve(observed, &laps).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    let rmse = distenc_tensor::residual::observed_rmse(observed, &res.model).unwrap();
    (rmse, secs, res.trace)
}

fn bench_gate_solve(c: &mut Criterion) {
    let w = &gate_workloads()[0];
    let cfg = gate_config(w.rank);
    let samples = w.observed.nnz() / GATE_DIVISOR;
    let mut g = c.benchmark_group("sketched_gate_solve");
    g.sample_size(10);
    g.bench_function("exact", |b| {
        b.iter(|| run_tier(&w.observed, &cfg, SolverTier::Exact))
    });
    g.bench_function("sketched", |b| {
        b.iter(|| {
            run_tier(
                &w.observed,
                &cfg,
                SolverTier::Sketched { samples, polish_iters: DEFAULT_POLISH_ITERS },
            )
        })
    });
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let mut sections = Vec::new();
    for w in gate_workloads() {
        let cfg = gate_config(w.rank);
        let nnz = w.observed.nnz();
        let (exact_rmse, exact_secs, exact_trace) =
            run_tier(&w.observed, &cfg, SolverTier::Exact);

        let samples: Vec<usize> = CURVE_DIVISORS.iter().map(|d| nnz / d).collect();
        let curve =
            sample_efficiency_curve(&w.observed, &cfg, &samples, DEFAULT_POLISH_ITERS)
                .unwrap();
        let curve_rows: Vec<String> = curve
            .iter()
            .map(|p| {
                format!(
                    "        {{ \"samples\": {}, \"touch_ratio\": {:.2}, \"sketched_rmse\": {}, \"rmse_gap\": {}, \"seconds\": {} }}",
                    p.samples,
                    p.touch_ratio,
                    json_num(p.sketched_rmse),
                    json_num(p.gap),
                    json_num(p.seconds),
                )
            })
            .collect();

        // Time-to-target: a level both tiers should reach comfortably.
        let target = exact_rmse * 1.5;
        let gate_samples = nnz / GATE_DIVISOR;
        let (_, _, sk_trace) = run_tier(
            &w.observed,
            &cfg,
            SolverTier::Sketched { samples: gate_samples, polish_iters: DEFAULT_POLISH_ITERS },
        );
        let gate_point = curve
            .iter()
            .find(|p| p.samples == gate_samples)
            .expect("gate divisor is in the curve");

        sections.push(format!(
            "    \"{name}\": {{\n      \"nnz\": {nnz}, \"rank\": {rank},\n      \"exact\": {{ \"rmse\": {ermse}, \"seconds\": {esecs} }},\n      \"gate\": {{ \"samples\": {gs}, \"touch_ratio\": {gtr:.2}, \"rmse_gap\": {ggap}, \"passes\": {gpass} }},\n      \"time_to_target\": {{ \"target_rmse\": {tgt}, \"exact_seconds\": {tex}, \"sketched_seconds\": {tsk} }},\n      \"curve\": [\n{curve}\n      ]\n    }}",
            name = w.name,
            rank = w.rank,
            ermse = json_num(exact_rmse),
            esecs = json_num(exact_secs),
            gs = gate_samples,
            gtr = gate_point.touch_ratio,
            ggap = json_num(gate_point.gap),
            gpass = gate_point.gap <= accuracy::ACCURACY_GATE_TOL,
            tgt = json_num(target),
            tex = json_opt(time_to_target(&exact_trace, target)),
            tsk = json_opt(time_to_target(&sk_trace, target)),
            curve = curve_rows.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"tolerance\": {tol},\n  \"polish_iters\": {polish},\n  \"workloads\": {{\n{body}\n  }},\n  \"note\": \"sketched tier vs exact on the accuracy-gate workloads; touch_ratio = nnz/samples = exact entry-touches per sketch-phase iteration over sketched (both tiers touch N passes of their respective counts per iteration; tests/pass_count.rs pins the instrument); rmse_gap = sketched_final - exact_final; gate.passes requires gap <= tolerance at >= 2x touch discount; null = run diverged or target never reached\"\n}}\n",
        tol = accuracy::ACCURACY_GATE_TOL,
        polish = DEFAULT_POLISH_ITERS,
        body = sections.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_sketched.json");
    std::fs::write(&path, &json).expect("write BENCH_sketched.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_gate_solve, emit_json);
criterion_main!(benches);
