//! Streaming-completion benchmark: warm re-solve vs cold solve, and live
//! model-swap behavior under concurrent load.
//!
//! Writes `BENCH_stream.json` at the repository root with two sections:
//!
//! * `warm_vs_cold` — time-to-target-RMSE after a delta batch of 0.1%,
//!   1%, and 10% of nnz: a [`StreamingSolver`] that folds the batch in
//!   and warm-restarts (previous factors + carried residual) against a
//!   from-scratch [`AdmmSolver`] solve of the same final tensor. The
//!   target is the worse of the two fully-converged training RMSEs (plus
//!   2% slack), so both sides chase a goal both can reach; times come
//!   from the solvers' own convergence traces.
//! * `swap` — publish latency of [`LiveEngine`] (engine build + atomic
//!   store) while reader threads run point queries nonstop, plus the
//!   query throughput across the swap window and the failed-read count
//!   (always zero; the readers assert it).

use criterion::{criterion_group, criterion_main, Criterion};
use distenc_core::{AdmmConfig, AdmmSolver};
use distenc_serve::{EngineConfig, LiveEngine};
use distenc_stream::{DeltaBatch, StreamingSolver};
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHAPE: [usize; 3] = [60, 50, 40];
const RANK: usize = 4;
const BASE_NNZ: usize = 30_000;
const FRACS: [(&str, f64); 3] =
    [("delta_0.1pct", 0.001), ("delta_1pct", 0.01), ("delta_10pct", 0.10)];
const SOLVE_ITERS: usize = 40;
const REPS: usize = 5;

/// The full observation pool: `BASE_NNZ` distinct cells of a planted
/// rank-`RANK` tensor, as `(index, value)` in sorted order.
fn observation_pool() -> Vec<(Vec<usize>, f64)> {
    let truth = KruskalTensor::random(&SHAPE, RANK, 9);
    let mut rng = StdRng::seed_from_u64(0x57e3);
    let mut mask = CooTensor::new(SHAPE.to_vec());
    for _ in 0..BASE_NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    let full = truth.eval_at(&mask).unwrap();
    (0..full.nnz()).map(|e| (full.index(e).to_vec(), full.value(e))).collect()
}

fn tensor_of(entries: &[(Vec<usize>, f64)]) -> CooTensor {
    let mut t = CooTensor::new(SHAPE.to_vec());
    for (idx, v) in entries {
        t.push(idx, *v).unwrap();
    }
    t.sort_dedup();
    t
}

fn cfg() -> AdmmConfig {
    AdmmConfig { rank: RANK, max_iters: SOLVE_ITERS, tol: 1e-9, ..Default::default() }
}

/// Split the pool: the last `frac` of a shuffled order becomes the delta
/// (arriving later), the rest is the base tensor.
fn split(pool: &[(Vec<usize>, f64)], frac: f64) -> (CooTensor, Vec<(Vec<usize>, f64)>) {
    let mut order: Vec<usize> = (0..pool.len()).collect();
    let mut rng = StdRng::seed_from_u64((frac * 1e6) as u64 ^ 0xd317a);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let n_delta = ((pool.len() as f64) * frac).round().max(1.0) as usize;
    let (delta_ids, base_ids) = order.split_at(n_delta);
    let base: Vec<_> = base_ids.iter().map(|&i| pool[i].clone()).collect();
    let delta: Vec<_> = delta_ids.iter().map(|&i| pool[i].clone()).collect();
    (tensor_of(&base), delta)
}

/// Median of `REPS` samples produced by `f` (None samples are dropped).
fn median(mut f: impl FnMut() -> Option<f64>) -> Option<f64> {
    let mut xs: Vec<f64> = (0..REPS).filter_map(|_| f()).collect();
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(xs[xs.len() / 2])
}

fn warm_vs_cold_rows() -> Vec<String> {
    let pool = observation_pool();
    let final_tensor = tensor_of(&pool);
    FRACS
        .iter()
        .map(|&(label, frac)| {
            let (base, delta) = split(&pool, frac);
            let batch = DeltaBatch::try_new(
                &SHAPE,
                &[0, 0, 0],
                delta.clone(),
                vec![],
            )
            .unwrap();

            // A converged streaming solver on the base tensor, reused
            // (cloned via re-solve state) for each warm repetition.
            let make_warm = || {
                let mut s =
                    StreamingSolver::new(base.clone(), vec![None, None, None], cfg()).unwrap();
                s.solve().unwrap();
                s
            };

            // Pick the target both sides can reach: the worse of the two
            // fully-converged final RMSEs, with 2% slack.
            let mut probe = make_warm();
            probe.apply(&batch).unwrap();
            let warm_final = probe.solve().unwrap().trace.final_rmse().unwrap();
            let cold_final = AdmmSolver::new(cfg())
                .unwrap()
                .solve(&final_tensor, &[None, None, None])
                .unwrap()
                .trace
                .final_rmse()
                .unwrap();
            let target = warm_final.max(cold_final) * 1.02;

            let warm_s = median(|| {
                let mut s = make_warm();
                let t0 = Instant::now();
                s.apply(&batch).unwrap();
                let apply_s = t0.elapsed().as_secs_f64();
                let r = s.solve().unwrap();
                r.trace.time_to_rmse(target).map(|t| t + apply_s)
            })
            .expect("warm solver reached the target");
            let cold_s = median(|| {
                let r = AdmmSolver::new(cfg())
                    .unwrap()
                    .solve(&final_tensor, &[None, None, None])
                    .unwrap();
                r.trace.time_to_rmse(target)
            })
            .expect("cold solver reached the target");

            format!(
                "    \"{label}\": {{ \"delta_nnz\": {}, \"target_rmse\": {target:.6}, \"warm_ms_to_target\": {:.3}, \"cold_ms_to_target\": {:.3}, \"cold_over_warm\": {:.3} }}",
                delta.len(),
                warm_s * 1e3,
                cold_s * 1e3,
                cold_s / warm_s.max(1e-12),
            )
        })
        .collect()
}

fn swap_row() -> String {
    const SWAP_SHAPE: [usize; 3] = [200, 150, 100];
    const PUBLISHES: usize = 8;
    let models: Vec<KruskalTensor> =
        (0..=PUBLISHES as u64).map(|g| KruskalTensor::random(&SWAP_SHAPE, RANK, 40 + g)).collect();
    let live = Arc::new(LiveEngine::new(&models[0], EngineConfig::default()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let failed = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let (live, stop, failed) = (Arc::clone(&live), Arc::clone(&stop), Arc::clone(&failed));
            std::thread::spawn(move || {
                let mut queries = 0u64;
                let mut gens = std::collections::BTreeSet::new();
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let at = [i % SWAP_SHAPE[0], (i * 3) % SWAP_SHAPE[1], (i * 7) % SWAP_SHAPE[2]];
                    match live.point(&at) {
                        Ok(t) => {
                            gens.insert(t.generation);
                            queries += 1;
                        }
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += 1;
                }
                (queries, gens.len() as u64)
            })
        })
        .collect();

    let window = Instant::now();
    let mut publish_us: Vec<u64> = (1..=PUBLISHES)
        .map(|g| {
            let t0 = Instant::now();
            live.publish(&models[g]).unwrap();
            t0.elapsed().as_micros() as u64
        })
        .collect();
    let window_s = window.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    publish_us.sort_unstable();

    let (mut queries, mut max_gens) = (0u64, 0u64);
    for r in readers {
        let (q, g) = r.join().unwrap();
        queries += q;
        max_gens = max_gens.max(g);
    }
    format!(
        "  \"swap\": {{ \"shape\": {SWAP_SHAPE:?}, \"rank\": {RANK}, \"publishes\": {PUBLISHES}, \"median_publish_us\": {}, \"max_publish_us\": {}, \"queries_during_swap_window\": {queries}, \"queries_per_sec\": {:.0}, \"failed_reads\": {}, \"distinct_generations_observed\": {max_gens} }}",
        publish_us[publish_us.len() / 2],
        publish_us[publish_us.len() - 1],
        queries as f64 / window_s.max(1e-9),
        failed.load(Ordering::Relaxed),
    )
}

fn bench_warm_resolve(c: &mut Criterion) {
    let pool = observation_pool();
    let (base, delta) = split(&pool, 0.01);
    let batch = DeltaBatch::try_new(&SHAPE, &[0, 0, 0], delta, vec![]).unwrap();
    let mut s = StreamingSolver::new(base, vec![None, None, None], cfg()).unwrap();
    s.solve().unwrap();
    s.set_budget(2, 1e-300).unwrap();
    let mut applied = false;
    c.bench_function("stream_warm_resolve_2iters", |b| {
        b.iter(|| {
            if !applied {
                s.apply(&batch).unwrap();
                applied = true;
            }
            s.solve().unwrap()
        })
    });
}

fn emit_json(_c: &mut Criterion) {
    let rows = warm_vs_cold_rows();
    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {SHAPE:?}, \"nnz\": {BASE_NNZ}, \"rank\": {RANK}, \"solve_iters\": {SOLVE_ITERS}, \"reps\": {REPS} }},\n  \"warm_vs_cold\": {{\n{}\n  }},\n{},\n  \"note\": \"warm = StreamingSolver: fold the delta into tensor+residual, restart ADMM from the previous factors; cold = AdmmSolver from random init on the same final tensor; times are median-of-{REPS} seconds-to-target-RMSE from the solvers' own traces (warm includes the delta apply); swap = LiveEngine publish latency (engine build + atomic handle store) under 4 reader threads, failed_reads asserted zero\"\n}}\n",
        rows.join(",\n"),
        swap_row(),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_stream.json");
    std::fs::write(&path, &json).expect("write BENCH_stream.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_warm_resolve, emit_json);
criterion_main!(benches);
