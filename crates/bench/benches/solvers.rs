//! Whole-solver benchmarks: fixed-iteration runs of every method on the
//! same observed tensor, plus the DisTenC distributed solve with engine
//! accounting (whose *virtual* output is deterministic; this bench
//! measures the real wall cost of simulating it).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_baselines::{
    AlsConfig, AlsSolver, FlexiFactConfig, FlexiFactSolver, ScoutConfig, ScoutSolver,
    TfaiConfig, TfaiSolver,
};
use distenc_core::{AdmmConfig, AdmmSolver, DisTenC};
use distenc_dataflow::{Cluster, ClusterConfig};
use distenc_datagen::synthetic::error_tensor;
use distenc_graph::{Laplacian, SparseSym};

const ITERS: usize = 5;

struct Setup {
    data: distenc_datagen::synthetic::ErrorTensor,
    laps: Vec<Laplacian>,
}

fn setup() -> Setup {
    let data = error_tensor(&[40, 40, 40], 4, 10_000, 1);
    let laps = data
        .similarities
        .iter()
        .map(|s| Laplacian::from_similarity(s.clone()))
        .collect();
    Setup { data, laps }
}

fn bench_admm(c: &mut Criterion) {
    let s = setup();
    let lap_refs: Vec<Option<&Laplacian>> = s.laps.iter().map(Some).collect();
    let cfg = AdmmConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    let solver = AdmmSolver::new(cfg).unwrap();
    c.bench_function("distenc_serial_5iter_10k", |b| {
        b.iter(|| solver.solve(black_box(&s.data.observed), &lap_refs).unwrap())
    });
}

fn bench_distenc_engine(c: &mut Criterion) {
    let s = setup();
    let cfg = AdmmConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    c.bench_function("distenc_engine9_5iter_10k", |b| {
        b.iter(|| {
            let cluster = Cluster::new(ClusterConfig::paper_spark().with_time_budget(None));
            DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(black_box(&s.data.observed), &[None, None, None])
                .unwrap()
        })
    });
}

fn bench_als(c: &mut Criterion) {
    let s = setup();
    let cfg = AlsConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    let solver = AlsSolver::new(cfg).unwrap();
    c.bench_function("als_5iter_10k", |b| {
        b.iter(|| solver.solve(black_box(&s.data.observed)).unwrap())
    });
}

fn bench_tfai(c: &mut Criterion) {
    let s = setup();
    let lap_refs: Vec<Option<&Laplacian>> = s.laps.iter().map(Some).collect();
    let cfg = TfaiConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    let solver = TfaiSolver::new(cfg).unwrap();
    c.bench_function("tfai_5iter_10k", |b| {
        b.iter(|| solver.solve(black_box(&s.data.observed), &lap_refs).unwrap())
    });
}

fn bench_scout(c: &mut Criterion) {
    let s = setup();
    let sims: Vec<Option<&SparseSym>> = s.data.similarities.iter().map(Some).collect();
    let cfg = ScoutConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    let solver = ScoutSolver::new(cfg).unwrap();
    c.bench_function("scout_5iter_10k", |b| {
        b.iter(|| solver.solve(black_box(&s.data.observed), &sims).unwrap())
    });
}

fn bench_flexifact(c: &mut Criterion) {
    let s = setup();
    let sims: Vec<Option<&SparseSym>> = s.data.similarities.iter().map(Some).collect();
    let cfg = FlexiFactConfig { rank: 4, max_iters: ITERS, tol: 1e-15, ..Default::default() };
    let solver = FlexiFactSolver::new(cfg).unwrap();
    c.bench_function("flexifact_5epoch_10k", |b| {
        b.iter(|| solver.solve(black_box(&s.data.observed), &sims).unwrap())
    });
}

criterion_group!(
    benches,
    bench_admm,
    bench_distenc_engine,
    bench_als,
    bench_tfai,
    bench_scout,
    bench_flexifact
);
criterion_main!(benches);
