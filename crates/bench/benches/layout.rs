//! Layout benchmark: per-sweep kernel throughput of the residual
//! storage layouts (`coo`, `csf`, `tiled`) on the `fused` bench
//! workload, plus the one-time cost of the layout pass itself.
//!
//! Writes `BENCH_layout.json` at the repository root. Two kernel rows
//! per (threads, rank) cell:
//!
//! * `mttkrp_ns` — one plain MTTKRP sweep (averaged over the three
//!   modes, the steady-state shape of Algorithm 1 lines 8–12),
//! * `fused_ns` — one fused refresh+MTTKRP sweep (recompute `E`, fold
//!   `‖E‖²_F`, bank `H₀`, all in one traversal).
//!
//! The layout pass (counting-sort tiling, CSF tree construction) is a
//! *setup* cost paid once per support, never per iteration, so it is
//! reported separately (`layout_pass`) rather than folded into the
//! per-sweep numbers — amortization is the caller's call (a solve runs
//! `N·max_iters` sweeps against one pass).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use distenc_dataflow::{ExecMode, Executor};
use distenc_linalg::Mat;
use distenc_tensor::{CooTensor, KruskalTensor, LayoutKind, TensorLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SHAPE: [usize; 3] = [120, 100, 80];
const NNZ: usize = 60_000;
const RANKS: [usize; 2] = [8, 16];
const THREADS: [usize; 2] = [1, 4];
const LAYOUTS: [LayoutKind; 3] = [LayoutKind::Coo, LayoutKind::Csf, LayoutKind::Tiled];
const REPS: usize = 25;

fn workload(rank: usize) -> CooTensor {
    let truth = KruskalTensor::random(&SHAPE, rank, 17);
    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let mut mask = CooTensor::new(SHAPE.to_vec());
    for _ in 0..NNZ {
        let idx: Vec<usize> = SHAPE.iter().map(|&d| rng.random_range(0..d)).collect();
        mask.push(&idx, 1.0).unwrap();
    }
    mask.sort_dedup();
    truth.eval_at(&mask).unwrap()
}

fn executor(threads: usize) -> Executor {
    Executor::new(if threads >= 2 { ExecMode::Threads(threads) } else { ExecMode::Sequential })
}

fn boundaries(e: &CooTensor, exec: &Executor) -> Vec<Vec<usize>> {
    (0..e.order())
        .map(|n| distenc_partition::greedy_boundaries(&e.slice_nnz(n), exec.parallelism()))
        .collect()
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// (plain-MTTKRP ns/sweep, fused ns/sweep) for one layout.
fn sweep_ns(x: &CooTensor, kind: LayoutKind, rank: usize, threads: usize) -> (u64, u64) {
    let exec = executor(threads);
    let model = KruskalTensor::random(&SHAPE, rank, 29);
    let mut layout = TensorLayout::build(x.clone(), kind).unwrap();
    let bounds = boundaries(x, &exec);
    let mut lw = layout.workspace(rank, &bounds, &exec).unwrap();
    let mut h: Vec<Mat> = SHAPE.iter().map(|&d| Mat::zeros(d, rank)).collect();

    // Warm up caches, pools, and code paths.
    for mode in 0..SHAPE.len() {
        layout.mttkrp_into(model.factors(), mode, &mut lw, &exec, &mut h[mode]).unwrap();
    }
    let mttkrp = median_ns(REPS, || {
        for mode in 0..SHAPE.len() {
            layout
                .mttkrp_into(black_box(model.factors()), mode, &mut lw, &exec, &mut h[mode])
                .unwrap();
        }
    }) / SHAPE.len() as u64;

    let _ = layout.fused_refresh_into(x, &model, &mut lw, &exec, &mut h[0]).unwrap();
    let fused = median_ns(REPS, || {
        let f = layout
            .fused_refresh_into(black_box(x), &model, &mut lw, &exec, &mut h[0])
            .unwrap();
        black_box(f);
    });
    (mttkrp, fused)
}

/// ns to run the layout pass (tile ordering / CSF trees) on a fresh
/// support — the `e.clone()` feedstock is prepared outside the timer.
fn layout_pass_ns(x: &CooTensor, kind: LayoutKind) -> u64 {
    let mut samples: Vec<u64> = (0..REPS)
        .map(|_| {
            let e = x.clone();
            let t0 = Instant::now();
            let l = TensorLayout::build(e, kind).unwrap();
            let ns = t0.elapsed().as_nanos() as u64;
            black_box(l.nnz());
            ns
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_layout_kernels(c: &mut Criterion) {
    let x = workload(16);
    let exec = executor(1);
    let model = KruskalTensor::random(&SHAPE, 16, 29);
    let bounds = boundaries(&x, &exec);
    let mut g = c.benchmark_group("layout_mttkrp_rank16");
    for kind in LAYOUTS {
        let layout = TensorLayout::build(x.clone(), kind).unwrap();
        let mut lw = layout.workspace(16, &bounds, &exec).unwrap();
        let mut h = Mat::zeros(SHAPE[0], 16);
        g.bench_function(&kind.to_string(), |b| {
            b.iter(|| {
                layout
                    .mttkrp_into(black_box(model.factors()), 0, &mut lw, &exec, &mut h)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn emit_json(_c: &mut Criterion) {
    let mut cells = Vec::new();
    for &threads in &THREADS {
        for &rank in &RANKS {
            let x = workload(rank);
            let rows: Vec<String> = LAYOUTS
                .iter()
                .map(|&kind| {
                    let (mttkrp, fused) = sweep_ns(&x, kind, rank, threads);
                    format!(
                        "      \"{kind}\": {{ \"mttkrp_ns\": {mttkrp}, \"fused_ns\": {fused} }}"
                    )
                })
                .collect();
            let (coo_m, coo_f) = sweep_ns(&x, LayoutKind::Coo, rank, threads);
            let (tl_m, tl_f) = sweep_ns(&x, LayoutKind::Tiled, rank, threads);
            cells.push(format!(
                "    \"threads_{threads}_rank_{rank}\": {{\n{},\n      \"tiled_over_coo_mttkrp\": {:.3},\n      \"tiled_over_coo_fused\": {:.3}\n    }}",
                rows.join(",\n"),
                coo_m as f64 / tl_m.max(1) as f64,
                coo_f as f64 / tl_f.max(1) as f64,
            ));
        }
    }

    let x = workload(16);
    let pass_rows: Vec<String> = [LayoutKind::Csf, LayoutKind::Tiled]
        .iter()
        .map(|&kind| {
            let ns = layout_pass_ns(&x, kind);
            format!(
                "    \"{kind}\": {{ \"build_ns\": {ns}, \"ns_per_nnz\": {:.2} }}",
                ns as f64 / NNZ as f64
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"workload\": {{ \"shape\": {SHAPE:?}, \"nnz\": {NNZ}, \"ranks\": {RANKS:?} }},\n  \"sweeps\": {{\n{}\n  }},\n  \"layout_pass\": {{\n{}\n  }},\n  \"note\": \"mttkrp_ns = one plain MTTKRP sweep (median over {REPS}, averaged over the 3 modes); fused_ns = one fused refresh+MTTKRP sweep; ratios are coo/tiled speedups (>1 = tiled faster); layout_pass is the one-time per-support setup (tile counting sort, CSF trees), amortized over N*max_iters sweeps in a solve and reported separately; coo and tiled results are bit-identical, csf matches to ~1e-9\"\n}}\n",
        cells.join(",\n"),
        pass_rows.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_layout.json");
    std::fs::write(&path, &json).expect("write BENCH_layout.json");
    eprintln!("wrote {}", path.display());
}

criterion_group!(benches, bench_layout_kernels, emit_json);
criterion_main!(benches);
