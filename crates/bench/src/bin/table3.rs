//! Table III — concept discovery on the DBLP analog.
use distenc_eval::table::render;
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Table III: concept discovery on the DBLP analog ({profile:?} profile)");
    let res = distenc_eval::figures::table3(profile).expect("table3 run failed");
    let rows: Vec<Vec<String>> = res
        .concepts
        .iter()
        .map(|c| {
            vec![
                format!("concept {}", c.component),
                format!("{:?}", c.members[0]),
                format!("{:?}", c.members[2]),
            ]
        })
        .collect();
    println!("{}", render(&["concept", "top authors", "venues"], &rows));
    println!("mean purity vs planted communities: {:.3}", res.purity);
}
