//! Ablations of DisTenC's three key insights (§III-B/C/D): each table
//! compares the paper's optimized path against the naive alternative.
use distenc_eval::ablation;
use distenc_eval::table::{fmt_f, render};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("Ablation 1 (§III-B): eigen-path vs per-iteration dense solve for the B-update");
    let dims: &[usize] = if quick { &[200, 400] } else { &[200, 400, 800, 1600] };
    let rows: Vec<Vec<String>> = dims
        .iter()
        .map(|&d| {
            let a = ablation::ablate_b_update(d, 10, 30, 20).expect("b-update ablation");
            vec![
                d.to_string(),
                fmt_f(a.eigen_seconds),
                fmt_f(a.dense_seconds),
                format!("{:.1}x", a.dense_seconds / a.eigen_seconds.max(1e-12)),
                fmt_f(a.max_deviation),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["I", "eigen (s)", "dense (s)", "speedup", "max dev"], &rows)
    );

    println!("Ablation 2 (§III-D): residual-trick vs dense-materialization MTTKRP");
    let dims: &[usize] = if quick { &[20, 40] } else { &[20, 40, 60, 80] };
    let rows: Vec<Vec<String>> = dims
        .iter()
        .map(|&d| {
            let a = ablation::ablate_residual_trick(d, 5_000, 6).expect("residual ablation");
            vec![
                format!("{d}^3"),
                fmt_f(a.trick_seconds),
                fmt_f(a.naive_seconds),
                format!("{:.1}x", a.naive_seconds / a.trick_seconds.max(1e-12)),
                fmt_f(a.max_deviation),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["shape", "trick (s)", "naive (s)", "speedup", "max dev"], &rows)
    );

    println!("Ablation 3 (§III-C): greedy (Algorithm 2) vs equal-width blocking, skewed tensor");
    let a = ablation::ablate_partitioning(
        if quick { 300 } else { 1000 },
        if quick { 30_000 } else { 200_000 },
        6,
        8,
        5,
    )
    .expect("partition ablation");
    let rows = vec![
        vec![
            "greedy".to_string(),
            fmt_f(a.greedy_seconds),
            format!("{:.2}", a.greedy_imbalance),
        ],
        vec![
            "equal-width".to_string(),
            fmt_f(a.equal_seconds),
            format!("{:.2}", a.equal_imbalance),
        ],
    ];
    println!(
        "{}",
        render(&["strategy", "virtual time (s)", "imbalance (max/mean)"], &rows)
    );

    println!("Ablation 4 (§III-F): DisTenC on Spark vs MapReduce semantics");
    let a = ablation::ablate_substrate(
        if quick { 50 } else { 200 },
        if quick { 20_000 } else { 200_000 },
        6,
        8,
        5,
    )
    .expect("substrate ablation");
    let rows = vec![
        vec!["Spark (cached RDDs)".to_string(), fmt_f(a.spark_seconds)],
        vec!["MapReduce (per-stage disk)".to_string(), fmt_f(a.mapreduce_seconds)],
    ];
    println!("{}", render(&["substrate", "virtual time (s)"], &rows));
}
