//! Empirical complexity report (Lemmas 1–3): engine-accounted virtual
//! time, shuffled bytes, and peak memory across nnz / rank / machine
//! sweeps, on real DisTenC runs.
use distenc_core::AdmmConfig;
use distenc_core::DisTenC;
use distenc_dataflow::{Cluster, ClusterConfig, Metrics};
use distenc_datagen::synthetic::scalability_tensor;
use distenc_eval::table::{fmt_f, render};

fn run(dim: usize, nnz: usize, rank: usize, iters: usize, machines: usize) -> Metrics {
    let observed = scalability_tensor(&[dim; 3], nnz, 99);
    let mut cc = ClusterConfig::test(machines).with_time_budget(None);
    cc.cost.stage_latency = 0.0;
    let cluster = Cluster::new(cc);
    let cfg = AdmmConfig { rank, max_iters: iters, tol: 1e-15, ..Default::default() };
    DisTenC::new(&cluster, cfg)
        .expect("valid config")
        .solve(&observed, &[None, None, None])
        .expect("solve succeeds");
    cluster.metrics()
}

fn row(label: String, m: &Metrics) -> Vec<String> {
    vec![
        label,
        fmt_f(m.virtual_seconds),
        m.shuffled_bytes.to_string(),
        m.peak_resident.to_string(),
    ]
}

fn main() {
    let header = ["sweep", "virtual (s)", "shuffled (B)", "peak mem (B)"];

    println!("Lemma 1/3: nnz sweep (dim 60, rank 6, 4 iters, 4 machines)");
    let rows: Vec<Vec<String>> = [15_000usize, 30_000, 60_000]
        .iter()
        .map(|&nnz| row(format!("nnz={nnz}"), &run(60, nnz, 6, 4, 4)))
        .collect();
    println!("{}", render(&header, &rows));

    println!("Lemma 1/3: rank sweep (dim 60, nnz 30k, 4 iters, 4 machines)");
    let rows: Vec<Vec<String>> = [4usize, 8, 16]
        .iter()
        .map(|&r| row(format!("rank={r}"), &run(60, 30_000, r, 4, 4)))
        .collect();
    println!("{}", render(&header, &rows));

    println!("Lemma 2: machine sweep (dim 60, nnz 40k, rank 6, 2 iters)");
    let rows: Vec<Vec<String>> = [1usize, 2, 4, 8]
        .iter()
        .map(|&m| row(format!("machines={m}"), &run(60, 40_000, 6, 2, m)))
        .collect();
    println!("{}", render(&header, &rows));
}
