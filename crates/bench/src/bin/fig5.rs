//! Fig. 5 — reconstruction error vs missing rate on Synthetic-error.
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Fig. 5: relative error vs fraction of missing data ({profile:?} profile)");
    let series = distenc_eval::figures::fig5(profile).expect("fig5 run failed");
    println!("{}", distenc_bench::render_error_series(&series));
}
