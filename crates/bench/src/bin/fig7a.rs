//! Fig. 7a — link-prediction RMSE on the Facebook analog.
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Fig. 7a: link-prediction RMSE ({profile:?} profile)");
    let rows = distenc_eval::figures::fig7a(profile).expect("fig7a run failed");
    println!("{}", distenc_bench::render_accuracy(&rows));
    let als = rows.iter().find(|r| r.method.name() == "ALS").unwrap().rmse;
    for r in &rows {
        if r.method.name() != "ALS" {
            println!(
                "{} improvement over ALS: {:.1}%",
                r.method.name(),
                distenc_eval::metrics::improvement_pct(als, r.rmse)
            );
        }
    }
}
