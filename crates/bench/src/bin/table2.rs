//! Table II — dataset summary (paper originals vs generated analogs).
use distenc_eval::table::{fmt_count, render};
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Table II: datasets ({profile:?} profile analogs)");
    let rows: Vec<Vec<String>> = distenc_eval::figures::table2(profile)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!(
                    "{}x{}x{}",
                    fmt_count(r.paper_dims[0]),
                    fmt_count(r.paper_dims[1]),
                    fmt_count(r.paper_dims[2])
                ),
                fmt_count(r.paper_nnz),
                format!(
                    "{}x{}x{}",
                    r.analog_dims[0], r.analog_dims[1], r.analog_dims[2]
                ),
                r.analog_nnz.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["dataset", "paper shape", "paper nnz", "analog shape", "analog nnz"], &rows)
    );
}
