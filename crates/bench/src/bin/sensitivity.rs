//! Hyper-parameter sensitivity: the α (aux weight) and K (eigen
//! truncation) dials of §III-B, swept on Synthetic-error at 70% missing.
use distenc_eval::sensitivity::{alpha_sweep, eigen_k_sweep};
use distenc_eval::table::{fmt_f, render};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (dim, nnz) = if quick { (20usize, 3_000usize) } else { (40, 20_000) };

    println!("α sweep (relative error at 70% missing, K = 20)");
    let pts = alpha_sweep(dim, nnz, &[0.0, 0.5, 2.0, 8.0, 32.0, 128.0]).expect("alpha sweep");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![format!("{}", p.x), fmt_f(p.relative_error)])
        .collect();
    println!("{}", render(&["alpha", "rel. error"], &rows));

    println!("K sweep (relative error at 70% missing, α = 5)");
    let ks: Vec<usize> = if quick { vec![2, 5, 10, 20] } else { vec![2, 5, 10, 20, 40] };
    let pts = eigen_k_sweep(dim, nnz, &ks).expect("k sweep");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![format!("{}", p.x as usize), fmt_f(p.relative_error)])
        .collect();
    println!("{}", render(&["K", "rel. error"], &rows));
}
