//! Fig. 3c — data scalability vs rank (R ∈ 10…500, I = 10⁶, nnz = 10⁷).
fn main() {
    println!("Fig. 3c: running time vs rank (I = 1e6, nnz = 1e7, 20 iterations)");
    println!("{}", distenc_bench::render_model_series("rank", &distenc_eval::figures::fig3c()));
}
