//! Fig. 6a — recommendation RMSE on the Netflix and Twitter-List analogs.
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Fig. 6a: recommendation RMSE ({profile:?} profile)");
    for (name, rows) in distenc_eval::figures::fig6a(profile).expect("fig6a run failed") {
        println!("[{name}]");
        println!("{}", distenc_bench::render_accuracy(&rows));
    }
}
