//! Fig. 7b — convergence (training RMSE vs time) on the Facebook analog.
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Fig. 7b: convergence on the Facebook analog ({profile:?} profile)");
    let series = distenc_eval::figures::fig7b(profile).expect("fig7b run failed");
    println!("{}", distenc_bench::render_convergence(&series, 12));
}
