//! Fig. 6b — convergence (training RMSE vs time) on the Netflix analog.
fn main() {
    let profile = distenc_bench::profile_from_args();
    println!("Fig. 6b: convergence on the Netflix analog ({profile:?} profile)");
    let series = distenc_eval::figures::fig6b(profile).expect("fig6b run failed");
    println!("{}", distenc_bench::render_convergence(&series, 12));
}
