//! Fig. 4 — machine scalability T₁/T_M (M ∈ 1…8, I = 10⁵, nnz = 10⁷,
//! rank 10).
fn main() {
    println!("Fig. 4: speed-up T1/TM vs machines (I = 1e5, nnz = 1e7, R = 10)");
    println!("{}", distenc_bench::render_speedups(&distenc_eval::figures::fig4()));
}
