//! Fig. 3a — data scalability vs dimensionality (I = J = K ∈ 10³…10⁹,
//! nnz = 10⁷, rank 20). Modelled on the paper's 9×8-core/12 GB cluster.
fn main() {
    println!("Fig. 3a: running time vs dimensionality (nnz = 1e7, R = 20, 20 iterations)");
    println!("{}", distenc_bench::render_model_series("dim", &distenc_eval::figures::fig3a()));
}
