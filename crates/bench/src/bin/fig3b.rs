//! Fig. 3b — data scalability vs non-zeros (nnz ∈ 10⁶…10⁹, I = 10⁵,
//! rank 10).
fn main() {
    println!("Fig. 3b: running time vs number of non-zeros (I = 1e5, R = 10, 20 iterations)");
    println!("{}", distenc_bench::render_model_series("nnz", &distenc_eval::figures::fig3b()));
}
