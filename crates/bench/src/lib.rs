//! Shared plumbing for the figure/table binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary here
//! that regenerates its rows/series:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig3a`  | running time vs dimensionality (10³…10⁹) |
//! | `fig3b`  | running time vs non-zeros (10⁶…10⁹) |
//! | `fig3c`  | running time vs rank (10…500) |
//! | `fig4`   | machine-scalability speed-ups (1…8 machines) |
//! | `fig5`   | reconstruction error vs missing rate |
//! | `fig6a`  | recommendation RMSE (Netflix / Twitter analogs) |
//! | `fig6b`  | convergence on the Netflix analog |
//! | `fig7a`  | link-prediction RMSE (Facebook analog) |
//! | `fig7b`  | convergence on the Facebook analog |
//! | `table2` | dataset summary |
//! | `table3` | concept discovery on the DBLP analog |
//!
//! Pass `--quick` to any measured binary to use the test-suite-sized
//! workloads instead of the larger defaults.

#![warn(missing_docs)]

use distenc_eval::figures::{
    AccuracyRow, ConvergenceSeries, ErrorSeries, ModelSeries, Profile, SpeedupSeries,
};
use distenc_eval::table::{fmt_f, render};

/// `--quick` selects [`Profile::Quick`]; default is [`Profile::Full`].
pub fn profile_from_args() -> Profile {
    if std::env::args().any(|a| a == "--quick") {
        Profile::Quick
    } else {
        Profile::Full
    }
}

/// Render a modelled Fig. 3 sweep as a table (rows = methods, columns =
/// swept values), printing `O.O.M.`/`O.O.T.` exactly as the paper does.
pub fn render_model_series(x_label: &str, series: &[ModelSeries]) -> String {
    let xs: Vec<String> = series[0]
        .points
        .iter()
        .map(|p| {
            if p.x < 1000 {
                p.x.to_string()
            } else {
                format!("{:.0e}", p.x as f64)
            }
        })
        .collect();
    let mut header = vec![x_label];
    let x_refs: Vec<&str> = xs.iter().map(String::as_str).collect();
    header.extend(x_refs);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.method.name().to_string()];
            row.extend(s.points.iter().map(|p| p.outcome.label()));
            row
        })
        .collect();
    render(&header, &rows)
}

/// Render Fig. 4 speed-up curves.
pub fn render_speedups(series: &[SpeedupSeries]) -> String {
    let mut header = vec!["machines".to_string()];
    header.extend(series[0].points.iter().map(|(m, _)| m.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.method.name().to_string()];
            row.extend(s.points.iter().map(|(_, v)| format!("{v:.2}x")));
            row
        })
        .collect();
    render(&header_refs, &rows)
}

/// Render Fig. 5 error curves.
pub fn render_error_series(series: &[ErrorSeries]) -> String {
    let mut header = vec!["missing".to_string()];
    header.extend(series[0].points.iter().map(|(r, _)| format!("{:.0}%", r * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.method.name().to_string()];
            row.extend(s.points.iter().map(|(_, e)| fmt_f(*e)));
            row
        })
        .collect();
    render(&header_refs, &rows)
}

/// Render an RMSE table (Figs. 6a / 7a).
pub fn render_accuracy(rows: &[AccuracyRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.method.name().to_string(), fmt_f(r.rmse)])
        .collect();
    render(&["method", "RMSE"], &body)
}

/// Render convergence series (Figs. 6b / 7b) as aligned (time, RMSE)
/// columns, sampling at most `max_rows` points per method.
pub fn render_convergence(series: &[ConvergenceSeries], max_rows: usize) -> String {
    let mut out = String::new();
    for s in series {
        out.push_str(&format!("-- {} --\n", s.method.name()));
        let step = (s.points.len().div_ceil(max_rows)).max(1);
        let body: Vec<Vec<String>> = s
            .points
            .iter()
            .step_by(step)
            .map(|(t, r)| vec![fmt_f(*t), fmt_f(*r)])
            .collect();
        out.push_str(&render(&["seconds", "train RMSE"], &body));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use distenc_eval::figures;

    #[test]
    fn model_series_render_includes_failures() {
        let t = render_model_series("dim", &figures::fig3a());
        assert!(t.contains("O.O.M."));
        assert!(t.contains("DisTenC"));
        assert!(t.contains("1e9"));
    }

    #[test]
    fn speedup_render_has_multipliers() {
        let t = render_speedups(&figures::fig4());
        assert!(t.contains('x'));
        assert!(t.contains("SCouT"));
    }
}
