//! Similarity graphs and graph Laplacians for DisTenC's trace regularizer.
//!
//! Tensor completion with auxiliary information (Eq. 4) attaches to each
//! mode `n` a similarity matrix `Sₙ` over that mode's entities, and
//! penalizes `tr(B⁽ⁿ⁾ᵀ Lₙ B⁽ⁿ⁾)` where `Lₙ = Dₙ − Sₙ` is the graph
//! Laplacian. This crate provides:
//!
//! * [`SparseSym`] — a CSR-ish symmetric sparse matrix for similarities,
//! * [`laplacian`] — Laplacian construction and its [`LinOp`]
//!   implementation for matrix-free eigensolves,
//! * [`TruncatedLaplacian`] — the precomputed `L ≈ VΛVᵀ` that makes the
//!   `B⁽ⁿ⁾` update cheap (Eq. 6/7), including the ordered
//!   `Vₙ(η+αΛ)⁻¹(Vₙᵀ(ηA−Y))` application,
//! * [`builders`] — similarity constructions used by the experiments: the
//!   paper's tri-diagonal chain (Eq. 17), community blocks, and feature
//!   kNN graphs.
//!
//! [`LinOp`]: distenc_linalg::LinOp

#![warn(missing_docs)]

pub mod builders;
pub mod laplacian;
pub mod sparse;

pub use laplacian::{Laplacian, ShiftedInverseScratch, TruncatedLaplacian};
pub use sparse::SparseSym;
