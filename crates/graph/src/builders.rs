//! Similarity-matrix constructions used by the experiments.

use crate::sparse::SparseSym;
use distenc_linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's synthetic-error similarity (Eq. 17): a tri-diagonal chain
/// `Sᵢ,ᵢ₊₁ = Sᵢ₊₁,ᵢ = 1` linking consecutive entities. The factor-matrix
/// construction in §IV-A makes consecutive rows similar, so this graph is
/// informative by design.
pub fn tridiagonal_chain(n: usize) -> SparseSym {
    let triplets: Vec<(usize, usize, f64)> =
        (0..n.saturating_sub(1)).map(|i| (i, i + 1, 1.0)).collect();
    SparseSym::from_triplets(n, &triplets)
}

/// The identity similarity used in the scalability tests (§IV-B: "we set
/// the similarity matrices of all modes to the identity matrices"). Its
/// Laplacian is zero, so the trace term is inert — exactly the paper's
/// intent of isolating scalability from regularization.
pub fn identity_similarity(n: usize) -> SparseSym {
    let triplets: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
    SparseSym::from_triplets(n, &triplets)
}

/// Community-block similarity: entities are assigned to `communities`
/// equal blocks; pairs within a block are connected with probability
/// `p_in` (weight 1). Models affiliation-style auxiliary information
/// (DBLP's "same affiliation", Twitter's "same city").
pub fn community_blocks(n: usize, communities: usize, p_in: f64, seed: u64) -> SparseSym {
    assert!(communities > 0, "need at least one community");
    let mut rng = StdRng::seed_from_u64(seed);
    let block = n.div_ceil(communities);
    let mut triplets = Vec::new();
    for c in 0..communities {
        let start = c * block;
        let end = ((c + 1) * block).min(n);
        for i in start..end {
            for j in (i + 1)..end {
                if rng.random::<f64>() < p_in {
                    triplets.push((i, j, 1.0));
                }
            }
        }
    }
    SparseSym::from_triplets(n, &triplets)
}

/// Sprinkle `count` random (possibly cross-community) edges of `weight`
/// onto an existing similarity matrix. Real-world side information is
/// never exactly block-structured: affiliation lists are dirty, titles
/// collide, locations are shared by strangers. Noise edges keep a
/// similarity graph informative for Laplacian *smoothing* while breaking
/// the exact low-rank structure a coupled factorization could fit
/// perfectly.
pub fn with_noise_edges(sim: &SparseSym, count: usize, weight: f64, seed: u64) -> SparseSym {
    let n = sim.dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(sim.nnz() / 2 + count);
    for i in 0..n {
        let (cols, vals) = sim.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            if j >= i {
                triplets.push((i, j, v));
            }
        }
    }
    for _ in 0..count {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j {
            triplets.push((i.min(j), i.max(j), weight));
        }
    }
    SparseSym::from_triplets(n, &triplets)
}

/// Community id of entity `i` under the [`community_blocks`] layout —
/// ground truth for the concept-discovery evaluation (Table III).
pub fn community_of(i: usize, n: usize, communities: usize) -> usize {
    let block = n.div_ceil(communities);
    (i / block).min(communities - 1)
}

/// k-nearest-neighbour similarity from latent feature rows: each entity
/// connects to its `k` nearest neighbours in Euclidean distance, with
/// weight `exp(−‖xᵢ−xⱼ‖²/σ²)`. Used by the Netflix/Facebook analogs where
/// the side information is derived from the same latent factors that
/// generate the data (so it is genuinely informative, as the paper's real
/// similarity matrices are).
///
/// Quadratic in `n`; generators only call it on mode sizes ≤ a few
/// thousand.
pub fn knn_from_features(features: &Mat, k: usize, sigma: f64) -> SparseSym {
    let n = features.rows();
    let mut triplets = Vec::with_capacity(n * k);
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n);
    for i in 0..n {
        dists.clear();
        let xi = features.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let xj = features.row(j);
            let d2: f64 = xi.iter().zip(xj).map(|(a, b)| (a - b) * (a - b)).sum();
            dists.push((d2, j));
        }
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(d2, j) in dists.iter().take(k) {
            // Keep (i,j) once; SparseSym mirrors automatically, and
            // duplicate mirrored pairs are summed, so halve the weight of
            // mutual edges by only inserting i<j.
            if i < j {
                triplets.push((i, j, (-d2 / (sigma * sigma)).exp()));
            }
        }
    }
    SparseSym::from_triplets(n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let s = tridiagonal_chain(4);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 2), 1.0);
        assert_eq!(s.get(2, 3), 1.0);
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(s.get(0, 0), 0.0);
        assert!(s.is_symmetric());
    }

    #[test]
    fn chain_of_one_is_empty() {
        assert_eq!(tridiagonal_chain(1).nnz(), 0);
    }

    #[test]
    fn identity_similarity_has_zero_laplacian() {
        let s = identity_similarity(5);
        let lap = crate::laplacian::Laplacian::from_similarity(s);
        let x = [1.0, -2.0, 3.0, 0.5, 0.0];
        let mut y = [9.0; 5];
        use distenc_linalg::LinOp;
        lap.apply(&x, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn community_blocks_connect_within_blocks_only() {
        let s = community_blocks(12, 3, 1.0, 0);
        // Block size 4: nodes 0-3, 4-7, 8-11.
        assert!(s.get(0, 3) > 0.0);
        assert_eq!(s.get(3, 4), 0.0);
        assert!(s.get(8, 11) > 0.0);
        assert!(s.is_symmetric());
    }

    #[test]
    fn community_of_matches_layout() {
        assert_eq!(community_of(0, 12, 3), 0);
        assert_eq!(community_of(3, 12, 3), 0);
        assert_eq!(community_of(4, 12, 3), 1);
        assert_eq!(community_of(11, 12, 3), 2);
        // Remainder nodes clamp into the last community.
        assert_eq!(community_of(9, 10, 3), 2);
    }

    #[test]
    fn knn_connects_nearest() {
        // Points on a line: 0, 1, 10, 11 — nearest pairs are (0,1), (2,3).
        let f = Mat::from_vec(4, 1, vec![0.0, 1.0, 10.0, 11.0]);
        let s = knn_from_features(&f, 1, 1.0);
        assert!(s.get(0, 1) > 0.0);
        assert!(s.get(2, 3) > 0.0);
        assert_eq!(s.get(1, 2), 0.0);
        assert!(s.is_symmetric());
    }

    #[test]
    fn knn_weights_decay_with_distance() {
        let f = Mat::from_vec(3, 1, vec![0.0, 1.0, 3.0]);
        let s = knn_from_features(&f, 2, 1.0);
        assert!(s.get(0, 1) > s.get(0, 2));
    }
}
