//! Symmetric sparse matrices in CSR layout.

use distenc_linalg::LinOp;

/// A symmetric sparse `n × n` matrix stored in CSR form.
///
/// Only used for similarity matrices `Sₙ` and Laplacians, which are
/// symmetric by construction; both triangles are stored explicitly so that
/// row access is a contiguous slice (fast matvec).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSym {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseSym {
    /// Build from triplets `(i, j, v)`. For every off-diagonal triplet the
    /// mirrored `(j, i, v)` is inserted automatically; duplicates are
    /// summed.
    ///
    /// # Panics
    /// Panics if any index is `≥ n`.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut full: Vec<(usize, usize, f64)> = Vec::with_capacity(triplets.len() * 2);
        for &(i, j, v) in triplets {
            assert!(i < n && j < n, "triplet ({i},{j}) out of bounds for n={n}");
            full.push((i, j, v));
            if i != j {
                full.push((j, i, v));
            }
        }
        full.sort_by_key(|a| (a.0, a.1));

        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(full.len());
        let mut values: Vec<f64> = Vec::with_capacity(full.len());
        let mut last: Option<(usize, usize)> = None;
        for (i, j, v) in full {
            if last == Some((i, j)) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_ptr[i + 1] += 1;
                last = Some((i, j));
            }
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        SparseSym { n, row_ptr, col_idx, values }
    }

    /// Dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Entry lookup (O(row degree)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        cols.iter()
            .position(|&c| c == j)
            .map_or(0.0, |p| vals[p])
    }

    /// Row sums (degrees `dᵢ = Σⱼ Sᵢⱼ` for the Laplacian).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .map(|i| self.row(i).1.iter().sum())
            .collect()
    }

    /// `out = S * x`.
    pub fn matvec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for (i, o) in out.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            *o = cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum();
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn mem_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Connected components (BFS), each a sorted list of node ids.
    /// Community-style similarity graphs are unions of disconnected
    /// blocks; eigensolvers exploit this heavily.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            queue.push_back(start);
            let mut comp = vec![start];
            while let Some(u) = queue.pop_front() {
                let (cols, _) = self.row(u);
                for &v in cols {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Verify symmetry (test helper; `O(nnz · degree)`).
    pub fn is_symmetric(&self) -> bool {
        (0..self.n).all(|i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .all(|(&j, &v)| (self.get(j, i) - v).abs() < 1e-12)
        })
    }
}

impl LinOp for SparseSym {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.matvec(x, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_off_diagonal_entries() {
        let s = SparseSym::from_triplets(3, &[(0, 1, 2.0), (2, 2, 5.0)]);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 0), 2.0);
        assert_eq!(s.get(2, 2), 5.0);
        assert_eq!(s.get(0, 2), 0.0);
        assert!(s.is_symmetric());
    }

    #[test]
    fn duplicates_are_summed() {
        let s = SparseSym::from_triplets(2, &[(0, 1, 1.0), (0, 1, 2.0)]);
        // Each triplet mirrors, then duplicates merge: (0,1) = 3.
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 0), 3.0);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn row_sums_are_degrees() {
        let s = SparseSym::from_triplets(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(s.row_sums(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let s = SparseSym::from_triplets(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 0, 1.0)]);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        s.matvec(&x, &mut y);
        assert_eq!(y, [1.0 * 1.0 + 2.0 * 2.0, 2.0 * 1.0 + 3.0 * 3.0, 3.0 * 2.0]);
    }

    #[test]
    fn empty_matrix() {
        let s = SparseSym::from_triplets(4, &[]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.row_sums(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_triplet_panics() {
        SparseSym::from_triplets(2, &[(0, 5, 1.0)]);
    }
}
