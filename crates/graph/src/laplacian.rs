//! Graph Laplacians and their truncated eigendecompositions (§III-B).

use crate::sparse::SparseSym;
use distenc_linalg::{
    jacobi_eigen, lanczos_smallest, LinOp, Mat, Result as LinResult,
};

/// The (unnormalized) graph Laplacian `L = D − S` of a similarity matrix,
/// kept matrix-free: only `S` and the degree vector `d` are stored.
#[derive(Debug, Clone)]
pub struct Laplacian {
    similarity: SparseSym,
    degrees: Vec<f64>,
}

impl Laplacian {
    /// Build `L = D − S` from a symmetric similarity matrix.
    pub fn from_similarity(similarity: SparseSym) -> Self {
        let degrees = similarity.row_sums();
        Laplacian { similarity, degrees }
    }

    /// Build the *symmetric normalized* Laplacian
    /// `L_sym = I − D^{-1/2} S D^{-1/2}` from a similarity matrix.
    ///
    /// Internally this is the unnormalized Laplacian of the rescaled
    /// similarity `S'ᵢⱼ = Sᵢⱼ/√(dᵢdⱼ)` with unit degrees, so every other
    /// operation (truncation, `tr(BᵀLB)`, shifted solves) works
    /// unchanged. Normalization bounds the spectrum by `[0, 2]`, which
    /// decouples the `α` weight from the graph's degree scale — useful
    /// when mode similarities have wildly different densities. (The paper
    /// uses the unnormalized form; this is an extension.)
    ///
    /// Isolated nodes (degree 0) contribute zero rows, matching the
    /// convention that they carry no smoothness constraint.
    pub fn normalized_from_similarity(similarity: SparseSym) -> Self {
        let degrees = similarity.row_sums();
        let inv_sqrt: Vec<f64> = degrees
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let n = similarity.dim();
        let mut triplets = Vec::with_capacity(similarity.nnz());
        for i in 0..n {
            let (cols, vals) = similarity.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                if j >= i {
                    triplets.push((i, j, v * inv_sqrt[i] * inv_sqrt[j]));
                }
            }
        }
        let scaled = SparseSym::from_triplets(n, &triplets);
        // Unit degree wherever the node participates in the graph.
        let unit_degrees = degrees
            .iter()
            .map(|&d| if d > 0.0 { 1.0 } else { 0.0 })
            .collect();
        Laplacian { similarity: scaled, degrees: unit_degrees }
    }

    /// Dimension `I` of the mode this Laplacian regularizes.
    pub fn dim(&self) -> usize {
        self.similarity.dim()
    }

    /// The underlying similarity matrix.
    pub fn similarity(&self) -> &SparseSym {
        &self.similarity
    }

    /// Exact `tr(BᵀLB)` — the regularization term of Eq. 4, evaluated
    /// sparsely in `O(nnz(S)·R)`.
    pub fn trace_quadratic(&self, b: &Mat) -> f64 {
        let n = self.dim();
        assert_eq!(b.rows(), n, "B must have one row per graph node");
        let mut acc = 0.0;
        // tr(BᵀLB) = Σᵢ dᵢ‖Bᵢ‖² − Σᵢⱼ Sᵢⱼ⟨Bᵢ, Bⱼ⟩.
        for i in 0..n {
            let bi = b.row(i);
            let norm_sq: f64 = bi.iter().map(|v| v * v).sum();
            acc += self.degrees[i] * norm_sq;
            let (cols, vals) = self.similarity.row(i);
            for (&j, &s) in cols.iter().zip(vals) {
                let bj = b.row(j);
                let dot: f64 = bi.iter().zip(bj).map(|(x, y)| x * y).sum();
                acc -= s * dot;
            }
        }
        acc
    }

    /// Densify (test/TFAI oracle only — `O(I²)` memory, which is exactly
    /// what makes the single-machine baseline die first in Fig. 3a).
    pub fn to_dense(&self) -> Mat {
        let n = self.dim();
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, self.degrees[i]);
            let (cols, vals) = self.similarity.row(i);
            for (&j, &s) in cols.iter().zip(vals) {
                let cur = m.get(i, j);
                m.set(i, j, cur - s);
            }
        }
        m
    }

    /// Truncated eigendecomposition keeping the `k` *smallest* eigenpairs
    /// (the smooth graph structure the trace regularizer preserves; see
    /// [`TruncatedLaplacian`]).
    ///
    /// Component-aware: the Laplacian of a disconnected graph is block
    /// diagonal, so each connected component is eigensolved independently
    /// — exactly (dense Jacobi) when the component is small, matrix-free
    /// Lanczos when it is large — and the globally smallest `k` pairs are
    /// kept. This handles the zero eigenvalue's multiplicity (one per
    /// component) that a single Krylov sequence cannot resolve, which
    /// matters because community-style similarity graphs are exactly
    /// unions of blocks.
    pub fn truncate(&self, k: usize, seed: u64) -> LinResult<TruncatedLaplacian> {
        const DENSE_COMPONENT: usize = 200;
        let n = self.dim();
        let k = k.min(n);
        let comps = self.similarity.components();
        // Collect candidate eigenpairs: up to k smallest per component.
        let mut pairs: Vec<(f64, Vec<(usize, f64)>)> = Vec::new();
        for comp in &comps {
            if comp.len() == 1 {
                // Isolated node: eigenvalue 0, indicator vector.
                pairs.push((0.0, vec![(comp[0], 1.0)]));
                continue;
            }
            let sub = self.component_laplacian(comp);
            let k_local = k.min(comp.len());
            let (values, vectors) = if comp.len() <= DENSE_COMPONENT {
                let full = jacobi_eigen(&sub)?;
                (full.values, full.vectors)
            } else {
                let op = ComponentOp { lap: self, nodes: comp };
                lanczos_smallest(&op, k_local, seed)?
            };
            for (j, &lam) in values.iter().take(k_local).enumerate() {
                let entries = comp
                    .iter()
                    .enumerate()
                    .map(|(local, &node)| (node, vectors.get(local, j)))
                    .collect();
                pairs.push((lam, entries));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pairs.truncate(k);
        let mut values = Vec::with_capacity(pairs.len());
        let mut vectors = Mat::zeros(n, pairs.len());
        for (col, (lam, entries)) in pairs.into_iter().enumerate() {
            values.push(lam);
            for (node, v) in entries {
                vectors.set(node, col, v);
            }
        }
        Ok(TruncatedLaplacian::new(values, vectors, self.trace()))
    }

    /// The ablation baseline for §III-B: solve `(ηI + αL) B = R` with a
    /// fresh dense Cholesky factorization — the `O(I³)` path the paper's
    /// eigendecomposition trick avoids. Because `η` changes every
    /// iteration, a real solver would pay this *per iteration*; the
    /// ablation bench measures exactly that gap.
    pub fn shifted_solve_dense(
        &self,
        eta: f64,
        alpha: f64,
        rhs: &Mat,
    ) -> LinResult<Mat> {
        let mut shifted = self.to_dense().scaled(alpha);
        shifted.add_diag(eta);
        distenc_linalg::Cholesky::factor(&shifted)?.solve_mat(rhs)
    }

    /// Dense Laplacian of one connected component (rows/cols restricted
    /// to `nodes`, which must be sorted).
    fn component_laplacian(&self, nodes: &[usize]) -> Mat {
        let map: std::collections::BTreeMap<usize, usize> =
            nodes.iter().enumerate().map(|(local, &node)| (node, local)).collect();
        let mut m = Mat::zeros(nodes.len(), nodes.len());
        for (local, &node) in nodes.iter().enumerate() {
            m.set(local, local, self.degrees[node]);
            let (cols, vals) = self.similarity.row(node);
            for (&j, &s) in cols.iter().zip(vals) {
                let lj = map[&j]; // neighbours stay within the component
                let cur = m.get(local, lj);
                m.set(local, lj, cur - s);
            }
        }
        m
    }

    /// Exact dense path: full Jacobi eigendecomposition, keep the `k`
    /// smallest eigenpairs.
    pub fn truncate_dense(&self, k: usize) -> LinResult<TruncatedLaplacian> {
        let full = jacobi_eigen(&self.to_dense())?;
        let n = self.dim();
        let k = k.min(n);
        // jacobi_eigen sorts ascending; the smallest k lead.
        let mut values = Vec::with_capacity(k);
        let mut vectors = Mat::zeros(n, k);
        for src in 0..k {
            values.push(full.values[src]);
            for i in 0..n {
                vectors.set(i, src, full.vectors.get(i, src));
            }
        }
        Ok(TruncatedLaplacian::new(values, vectors, self.trace()))
    }

    /// Matrix-free path: Lanczos yields the smallest eigenpairs of `L`,
    /// in `O(k·(nnz(S) + I·k))` — the `O(K·I)` profile the paper assumes
    /// for its truncated eigensolver.
    pub fn truncate_lanczos(&self, k: usize, seed: u64) -> LinResult<TruncatedLaplacian> {
        let (values, vectors) = lanczos_smallest(self, k.max(1), seed)?;
        Ok(TruncatedLaplacian::new(values, vectors, self.trace()))
    }

    /// `tr(L) = Σᵢ dᵢ` (diagonal of `D − S` ignoring self-loops in `S`)
    /// — exactly the sum of all eigenvalues, used to place the truncated
    /// complement.
    pub fn trace(&self) -> f64 {
        let mut t: f64 = self.degrees.iter().sum();
        // Self-loop similarity contributes to the degree but sits on the
        // diagonal of S, so it cancels in L's trace.
        for i in 0..self.dim() {
            t -= self.similarity.get(i, i);
        }
        t
    }
}

/// Matrix-free view of one component's Laplacian block.
struct ComponentOp<'a> {
    lap: &'a Laplacian,
    nodes: &'a [usize],
}

impl LinOp for ComponentOp<'_> {
    fn dim(&self) -> usize {
        self.nodes.len()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let map: std::collections::BTreeMap<usize, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(local, &node)| (node, local))
            .collect();
        for (local, &node) in self.nodes.iter().enumerate() {
            let mut acc = self.lap.degrees[node] * x[local];
            let (cols, vals) = self.lap.similarity.row(node);
            for (&j, &s) in cols.iter().zip(vals) {
                acc -= s * x[map[&j]];
            }
            out[local] = acc;
        }
    }
}

impl LinOp for Laplacian {
    fn dim(&self) -> usize {
        self.similarity.dim()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        // (D − S) x.
        self.similarity.matvec(x, out);
        for ((o, &d), &xi) in out.iter_mut().zip(&self.degrees).zip(x) {
            *o = d * xi - *o;
        }
    }
}

/// A truncated eigendecomposition `L ≈ V Λ Vᵀ` (eigenvalues descending)
/// with the shifted-inverse application of Eq. 6/7.
///
/// The update rule for auxiliary variables (Algorithm 1 line 4) is
/// `B ← (ηI + αL)⁻¹ R` with `R = ηA − Y`. Expanding on the eigenbasis:
///
/// `(ηI + αL)⁻¹ = Σᵢ vᵢvᵢᵀ / (η + αλᵢ)`
///
/// Keeping the `K` **smallest** eigenvalues — the smooth graph directions
/// the regularizer is supposed to *preserve* — and modelling every
/// remaining (rougher) direction at the complement's mean eigenvalue
/// `λ̄ = (tr(L) − Σ_kept λ) / (I − K)` (exact, because `tr(L) = Σ dᵢ` is
/// known without any eigensolve) gives
///
/// `B ≈ V diag(1/(η+αλ)) (VᵀR) + (R − V(VᵀR)) / (η + αλ̄)`.
///
/// This reduces to the exact inverse at `K = I` and to `R/η` for a zero
/// Laplacian, and — unlike keeping the large end — it damps *all* rough
/// directions, which is what makes small `K` (≈ the number of smooth
/// structures, e.g. communities) sufficient in practice. Eq. 7's
/// FLOP-ordering is preserved: the `K×R` product `VᵀR` is formed first,
/// diagonally rescaled, then expanded by `V` — `O(IR + IKR)` instead of
/// an `O(I³)` solve per iteration. (The paper prints only the `VΛ⁻¹VᵀR`
/// term; without a complement term a truncated basis would annihilate
/// every component of `R` outside `span(V)`, so we keep it. The two
/// coincide exactly when the decomposition is not truncated.)
#[derive(Debug, Clone)]
pub struct TruncatedLaplacian {
    /// Kept eigenvalues, ascending (the small end of the spectrum).
    pub values: Vec<f64>,
    /// Matching eigenvectors as columns (`I × K`).
    pub vectors: Mat,
    /// Mean eigenvalue `λ̄` of the truncated complement.
    pub complement_lambda: f64,
}

impl TruncatedLaplacian {
    /// Assemble from kept eigenpairs plus the operator's exact trace.
    pub fn new(values: Vec<f64>, vectors: Mat, trace: f64) -> Self {
        let n = vectors.rows();
        let k = values.len();
        let kept: f64 = values.iter().sum();
        let complement_lambda = if n > k {
            ((trace - kept) / (n - k) as f64).max(0.0)
        } else {
            0.0
        };
        TruncatedLaplacian { values, vectors, complement_lambda }
    }

    /// A zero Laplacian (identity similarity ⇒ `L = 0`), for modes without
    /// auxiliary information: `apply_shifted_inverse` becomes `R/η`.
    pub fn zero(n: usize) -> Self {
        TruncatedLaplacian {
            values: Vec::new(),
            vectors: Mat::zeros(n, 0),
            complement_lambda: 0.0,
        }
    }

    /// Number of kept eigenpairs `K`.
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// Mode dimension `I`.
    pub fn dim(&self) -> usize {
        self.vectors.rows()
    }

    /// Apply `(ηI + αL)⁻¹` to `rhs` using the truncated basis (Eq. 7 with
    /// the complement term; see the type-level docs).
    pub fn apply_shifted_inverse(&self, eta: f64, alpha: f64, rhs: &Mat) -> LinResult<Mat> {
        assert!(eta > 0.0, "penalty η must be positive");
        if alpha == 0.0 {
            return Ok(rhs.scaled(1.0 / eta));
        }
        // Baseline: every direction damped at the complement rate.
        let base = 1.0 / (eta + alpha * self.complement_lambda);
        if self.k() == 0 {
            return Ok(rhs.scaled(base));
        }
        // Step 1 (small): P = Vᵀ R, shape K×R.
        let p = self.vectors.matvec_mat_t(rhs)?;
        // Step 2 (diagonal): scale row i of P by 1/(η+αλᵢ) − base, so the
        // expansion below is the *correction* to the baseline.
        let mut scaled = p;
        for (i, &lam) in self.values.iter().enumerate() {
            let coeff = 1.0 / (eta + alpha * lam) - base;
            for v in scaled.row_mut(i) {
                *v *= coeff;
            }
        }
        // Step 3: B = base·R + V · scaled.
        let mut out = rhs.scaled(base);
        let corr = self.vectors.matmul(&scaled)?;
        out.axpy(1.0, &corr)?;
        Ok(out)
    }

    /// Approximate heap footprint in bytes (`O(I·K + K)`, Lemma 2's
    /// eigen-decomposition term).
    pub fn mem_bytes(&self) -> usize {
        self.vectors.mem_bytes() + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Allocation-free [`TruncatedLaplacian::apply_shifted_inverse`]:
    /// identical arithmetic (including the separate correction buffer the
    /// bit-exactness of the three-step expansion depends on), with every
    /// intermediate supplied by a [`ShiftedInverseScratch`] sized once.
    pub fn apply_shifted_inverse_into(
        &self,
        eta: f64,
        alpha: f64,
        rhs: &Mat,
        out: &mut Mat,
        scratch: &mut ShiftedInverseScratch,
    ) -> LinResult<()> {
        assert!(eta > 0.0, "penalty η must be positive");
        if alpha == 0.0 {
            return rhs.scaled_into(1.0 / eta, out);
        }
        let base = 1.0 / (eta + alpha * self.complement_lambda);
        if self.k() == 0 {
            return rhs.scaled_into(base, out);
        }
        let p = &mut scratch.p;
        self.vectors.matvec_mat_t_into(rhs, p)?;
        for (i, &lam) in self.values.iter().enumerate() {
            let coeff = 1.0 / (eta + alpha * lam) - base;
            for v in p.row_mut(i) {
                *v *= coeff;
            }
        }
        rhs.scaled_into(base, out)?;
        self.vectors.matmul_into(p, &mut scratch.corr)?;
        out.axpy(1.0, &scratch.corr)?;
        Ok(())
    }
}

/// Preallocated intermediates for
/// [`TruncatedLaplacian::apply_shifted_inverse_into`]: the `K×R`
/// projection `VᵀR` and the `I×R` correction expansion.
#[derive(Debug, Clone)]
pub struct ShiftedInverseScratch {
    p: Mat,
    corr: Mat,
}

impl ShiftedInverseScratch {
    /// Size the scratch for applying `trunc` to right-hand sides with `r`
    /// columns.
    pub fn new(trunc: &TruncatedLaplacian, r: usize) -> Self {
        ShiftedInverseScratch {
            p: Mat::zeros(trunc.k(), r),
            corr: Mat::zeros(trunc.dim(), r),
        }
    }
}

/// Helper: `Vᵀ R` without materializing `Vᵀ`.
trait MatVecT {
    fn matvec_mat_t(&self, rhs: &Mat) -> LinResult<Mat>;
    fn matvec_mat_t_into(&self, rhs: &Mat, out: &mut Mat) -> LinResult<()>;
}

impl MatVecT for Mat {
    fn matvec_mat_t(&self, rhs: &Mat) -> LinResult<Mat> {
        let mut out = Mat::zeros(self.cols(), rhs.cols());
        self.matvec_mat_t_into(rhs, &mut out)?;
        Ok(out)
    }

    fn matvec_mat_t_into(&self, rhs: &Mat, out: &mut Mat) -> LinResult<()> {
        // self: I×K, rhs: I×R → out: K×R. Row-major friendly accumulation.
        let (i_dim, k_dim) = self.shape();
        let r_dim = rhs.cols();
        if out.shape() != (k_dim, r_dim) {
            return Err(distenc_linalg::LinalgError::ShapeMismatch {
                op: "matvec_mat_t_into",
                lhs: (k_dim, r_dim),
                rhs: out.shape(),
            });
        }
        out.fill(0.0);
        for i in 0..i_dim {
            let v_row = self.row(i);
            let r_row = rhs.row(i);
            for (kk, &v) in v_row.iter().enumerate() {
                if v == 0.0 {
                    continue;
                }
                let o = out.row_mut(kk);
                for (oo, &rr) in o.iter_mut().zip(r_row) {
                    *oo += v * rr;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::tridiagonal_chain;
    use distenc_linalg::Cholesky;

    fn chain_laplacian(n: usize) -> Laplacian {
        Laplacian::from_similarity(tridiagonal_chain(n))
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = chain_laplacian(6).to_dense();
        for i in 0..6 {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn trace_quadratic_matches_dense() {
        let lap = chain_laplacian(8);
        let b = Mat::random(8, 3, 4);
        let sparse = lap.trace_quadratic(&b);
        let dense = lap.to_dense();
        // tr(BᵀLB) via explicit products.
        let ltb = dense.matmul(&b).unwrap();
        let mut want = 0.0;
        for i in 0..8 {
            for r in 0..3 {
                want += b.get(i, r) * ltb.get(i, r);
            }
        }
        assert!((sparse - want).abs() < 1e-10);
    }

    #[test]
    fn trace_quadratic_zero_for_constant_columns() {
        // L annihilates constant vectors on a connected graph.
        let lap = chain_laplacian(10);
        let b = Mat::from_vec(10, 2, vec![3.0; 20]);
        assert!(lap.trace_quadratic(&b).abs() < 1e-10);
    }

    #[test]
    fn full_truncation_matches_exact_inverse() {
        // With K = I the shifted-inverse application must equal a direct
        // solve of (ηI + αL) B = R.
        let lap = chain_laplacian(12);
        let trunc = lap.truncate_dense(12).unwrap();
        let rhs = Mat::random(12, 3, 7);
        let (eta, alpha) = (0.7, 1.3);
        let fast = trunc.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
        let mut shifted = lap.to_dense().scaled(alpha);
        shifted.add_diag(eta);
        let exact = Cholesky::factor(&shifted).unwrap().solve_mat(&rhs).unwrap();
        for (a, b) in fast.as_slice().iter().zip(exact.as_slice()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn truncated_application_approaches_exact_as_k_grows() {
        let lap = chain_laplacian(20);
        let rhs = Mat::random(20, 2, 9);
        let (eta, alpha) = (1.0, 2.0);
        let mut shifted = lap.to_dense().scaled(alpha);
        shifted.add_diag(eta);
        let exact = Cholesky::factor(&shifted).unwrap().solve_mat(&rhs).unwrap();
        let mut last_err = f64::INFINITY;
        for k in [2, 5, 10, 20] {
            let trunc = lap.truncate_dense(k).unwrap();
            let approx = trunc.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
            let err = approx.frob_dist(&exact).unwrap();
            assert!(
                err <= last_err + 1e-9,
                "error must shrink with k: k={k}, {err} > {last_err}"
            );
            last_err = err;
        }
        assert!(last_err < 1e-8);
    }

    #[test]
    fn shifted_inverse_into_is_bit_identical() {
        let lap = chain_laplacian(15);
        let rhs = Mat::random(15, 3, 11);
        for (k, eta, alpha) in [(0, 0.9, 0.0), (0, 0.9, 1.4), (6, 0.7, 1.3), (15, 1.1, 2.0)] {
            let trunc = if k == 0 { TruncatedLaplacian::zero(15) } else { lap.truncate_dense(k).unwrap() };
            let mut scratch = ShiftedInverseScratch::new(&trunc, 3);
            let mut out = Mat::random(15, 3, 99); // dirty on purpose
            // Apply twice through the same scratch: reuse must not drift.
            for _ in 0..2 {
                trunc.apply_shifted_inverse_into(eta, alpha, &rhs, &mut out, &mut scratch).unwrap();
                let want = trunc.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
                assert_eq!(out, want, "k={k} eta={eta} alpha={alpha}");
            }
        }
    }

    #[test]
    fn zero_laplacian_scales_by_inverse_eta() {
        let trunc = TruncatedLaplacian::zero(5);
        let rhs = Mat::random(5, 2, 3);
        let out = trunc.apply_shifted_inverse(2.0, 1.0, &rhs).unwrap();
        for (a, b) in out.as_slice().iter().zip(rhs.as_slice()) {
            assert!((a - b / 2.0).abs() < 1e-14);
        }
    }

    #[test]
    fn lanczos_truncation_close_to_dense_on_small_eigenvalues() {
        // The chain Laplacian's small eigenvalues cluster near zero, the
        // hardest case for an un-restarted Krylov method; what matters
        // downstream is the *shifted-inverse application*, which is
        // smooth in λ. Check both: eigenvalues to coarse accuracy, and
        // the application to tight accuracy.
        let lap = chain_laplacian(40);
        let dense = lap.truncate_dense(3).unwrap();
        let lz = lap.truncate_lanczos(3, 5).unwrap();
        for (a, b) in dense.values.iter().zip(&lz.values) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        let rhs = Mat::random(40, 2, 3);
        let (eta, alpha) = (1.0, 1.0);
        let via_dense = dense.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
        let via_lz = lz.apply_shifted_inverse(eta, alpha, &rhs).unwrap();
        let rel = via_dense.frob_dist(&via_lz).unwrap() / via_dense.frob_norm();
        assert!(rel < 0.05, "application deviates by {rel}");
    }

    #[test]
    fn normalized_laplacian_spectrum_bounded_by_two() {
        let sim = crate::builders::community_blocks(40, 4, 0.6, 3);
        let lap = Laplacian::normalized_from_similarity(sim);
        let full = lap.truncate_dense(40).unwrap();
        for &v in &full.values {
            assert!((-1e-9..=2.0 + 1e-9).contains(&v), "eigenvalue {v} out of [0,2]");
        }
        // Smallest eigenvalue is 0 (one per connected component).
        assert!(full.values[0].abs() < 1e-9);
    }

    #[test]
    fn normalized_equals_unnormalized_on_regular_graphs() {
        // A cycle is 2-regular: L_sym = L / 2 exactly.
        let n = 12;
        let mut triplets: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        triplets.dedup();
        let sim = crate::sparse::SparseSym::from_triplets(n, &triplets);
        let un = Laplacian::from_similarity(sim.clone()).to_dense();
        let norm = Laplacian::normalized_from_similarity(sim).to_dense();
        for (a, b) in norm.as_slice().iter().zip(un.as_slice()) {
            assert!((a - b / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_isolated_nodes_are_zero_rows() {
        // Node 3 has no edges.
        let sim = crate::sparse::SparseSym::from_triplets(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let lap = Laplacian::normalized_from_similarity(sim);
        let dense = lap.to_dense();
        for j in 0..4 {
            assert_eq!(dense.get(3, j), 0.0);
        }
    }

    #[test]
    fn component_aware_truncate_resolves_multiplicity() {
        // Three disconnected blocks ⇒ the zero eigenvalue has multiplicity
        // three; a single Krylov sequence cannot see that, the
        // component-aware path must.
        let sim = crate::builders::community_blocks(60, 3, 1.0, 0);
        let lap = Laplacian::from_similarity(sim);
        let t = lap.truncate(3, 1).unwrap();
        assert_eq!(t.k(), 3);
        for &v in &t.values {
            assert!(v.abs() < 1e-8, "all three kept eigenvalues must be ~0, got {v}");
        }
        // Each kept eigenvector is constant on exactly one block.
        for j in 0..3 {
            let col = t.vectors.col(j);
            let nonzero_blocks: Vec<usize> = (0..3)
                .filter(|&b| (0..20).any(|i| col[b * 20 + i].abs() > 1e-8))
                .collect();
            assert_eq!(nonzero_blocks.len(), 1, "eigenvector {j} spans {nonzero_blocks:?}");
        }
    }

    #[test]
    fn truncate_auto_picks_and_clamps_k() {
        let lap = chain_laplacian(10);
        let t = lap.truncate(50, 1).unwrap();
        assert_eq!(t.k(), 10);
    }
}
