//! The distributed DisTenC solver (Algorithm 3) on the dataflow engine.
//!
//! Numerically this performs exactly the serial Algorithm 1 iteration —
//! the step math itself lives in [`crate::solver`], shared with
//! [`crate::AdmmSolver`] — but the work is organized the way §III-C/D and
//! §III-F describe, and every stage, shuffle, and broadcast is accounted
//! on the [`Cluster`]:
//!
//! * the observed tensor is split into `P₁×…×P_N` blocks with Algorithm 2
//!   boundaries and the blocks are pinned to machines;
//! * factor matrices (and `B`, `Y`, and the Laplacian eigenbases) are
//!   row-partitioned by the same boundaries, co-located with the mode
//!   partitions;
//! * MTTKRP runs block-locally over the *residual* tensor: remote factor
//!   rows are fetched (counted as shuffle), per-block partial `H` rows are
//!   reduced to the factor partition's home machine;
//! * `U⁽ⁿ⁾ᵀU⁽ⁿ⁾` comes from per-partition Gram contributions reduced to
//!   `R×R` and broadcast back (Eq. 12/13);
//! * the `B⁽ⁿ⁾` update reduces the `K×R` projection `Vᵀ(ηA−Y)` the same
//!   way (Eq. 7).
//!
//! This driver owns only what is genuinely distributed: the Algorithm 2
//! blocking, the resident-memory ledger, and the one-off setup charges.
//! The per-iteration decomposition and its charges live in the
//! [`crate::solver::ClusterBackend`]; the iteration itself is
//! [`crate::solver::run`].
//!
//! Floating-point note: per-block accumulation order differs from the
//! serial solver's entry order, so iterates match the oracle to rounding,
//! not bit-for-bit; the integration tests assert agreement to `1e-8`.

use crate::admm::{truncate_all, validate_problem};
use crate::config::AdmmConfig;
use crate::solver::{self, BlockMeta, ClusterBackend, ResidualBlock, ResidualStore, SolverState};
use crate::{CompletionResult, Result};
use distenc_dataflow::cluster::TaskCost;
use distenc_dataflow::Cluster;
use distenc_graph::{Laplacian, TruncatedLaplacian};
use distenc_partition::TensorBlocks;
use distenc_tensor::{CooTensor, KruskalTensor};

const F64: u64 = 8;

/// The distributed DisTenC solver bound to a simulated cluster.
#[derive(Debug)]
pub struct DisTenC<'c> {
    cluster: &'c Cluster,
    cfg: AdmmConfig,
}

impl<'c> DisTenC<'c> {
    /// Create a solver, validating the configuration.
    pub fn new(cluster: &'c Cluster, cfg: AdmmConfig) -> Result<Self> {
        cfg.validate().map_err(crate::CoreError::Invalid)?;
        Ok(DisTenC { cluster, cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Run distributed tensor completion. Returns the learned model plus a
    /// trace whose timestamps are the cluster's **virtual** clock; read
    /// [`Cluster::metrics`] afterwards for shuffle/memory totals.
    pub fn solve(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
    ) -> Result<CompletionResult> {
        self.solve_inner(observed, laplacians, None)
    }

    /// Like [`DisTenC::solve`], but warm-started from `init`'s factors.
    ///
    /// The blocked residual is rebuilt on the cluster (its values start
    /// stale and the solver prologue refreshes them against `init`), so
    /// this is a factor-warm / residual-cold restart — the distributed
    /// analogue of [`crate::AdmmSolver::solve_from`]. Used by the
    /// streaming layer to re-converge after a delta batch without
    /// discarding the learned model.
    pub fn solve_from(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        init: &KruskalTensor,
    ) -> Result<CompletionResult> {
        if init.shape() != observed.shape() || init.rank() != self.cfg.rank {
            return Err(crate::CoreError::Invalid(format!(
                "warm-start model is {:?} rank {}, problem is {:?} rank {}",
                init.shape(),
                init.rank(),
                observed.shape(),
                self.cfg.rank
            )));
        }
        self.solve_inner(observed, laplacians, Some(init.clone()))
    }

    fn solve_inner(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        initial: Option<KruskalTensor>,
    ) -> Result<CompletionResult> {
        validate_problem(observed, laplacians, &self.cfg)?;
        let cl = self.cluster;
        let m = cl.machines();
        let shape = observed.shape().to_vec();
        let n_modes = shape.len();
        let rank = self.cfg.rank;
        let entry_bytes = (n_modes as u64 + 1) * F64;

        // ---- Setup: Algorithm 2 blocking -------------------------------
        // Counting per-slice non-zeros is one pass over the entries.
        self.stage_over_even_split(observed.nnz(), 1.0, entry_bytes)?;
        let parts_per_mode: Vec<usize> = shape.iter().map(|&d| d.min(m)).collect();
        let blocking = TensorBlocks::build_with(observed, &parts_per_mode, self.cfg.partition);
        // Partitioning shuffles the whole input tensor (Lemma 3's
        // O(nnz(X)) term).
        self.charge_partition_shuffle(&blocking, entry_bytes)?;

        let mut blocks: Vec<ResidualBlock> = Vec::with_capacity(blocking.blocks.len());
        let mut meta: Vec<BlockMeta> = Vec::with_capacity(blocking.blocks.len());
        for (i, (id, t)) in blocking.blocks.iter().enumerate() {
            meta.push(BlockMeta {
                machine: cl.machine_for_partition(i),
                coords: blocking.block_coords(*id),
                active: (0..n_modes).map(|n| t.active_indices(n)).collect(),
            });
            // Residual values start stale (zero); solver::run's prologue
            // refreshes them before anything reads them.
            blocks.push(ResidualBlock { entries: t.clone(), vals: vec![0.0; t.nnz()] });
        }
        let mode_parts = blocking.modes.clone();

        // ---- Resident memory: blocks, factor state, eigenbases ---------
        let mut reserved: Vec<(usize, u64)> = Vec::new();
        let mut reserve = |mach: usize, bytes: u64| -> Result<()> {
            cl.reserve(mach, bytes)?;
            reserved.push((mach, bytes));
            Ok(())
        };
        for (b, bm) in blocks.iter().zip(&meta) {
            // Tensor block + residual values.
            let bytes = b.entries.nnz() as u64 * (entry_bytes + F64);
            reserve(bm.machine, bytes)?;
        }
        let truncated = self.truncate_charged(&shape, laplacians)?;
        for (n, part) in mode_parts.iter().enumerate() {
            let k = truncated[n].k() as u64;
            for p in 0..part.parts() {
                let rows = part.range(p).len() as u64;
                // A, B, Y rows plus the eigenbasis rows for this range.
                let bytes = rows * rank as u64 * F64 * 3 + rows * k * F64;
                reserve(cl.machine_for_partition(p), bytes)?;
            }
        }

        // ---- Delegate the iteration to the shared solver core ----------
        let boundaries: Vec<Vec<usize>> = mode_parts
            .iter()
            .map(|part| (0..part.parts()).map(|p| part.range(p).end).collect())
            .collect();
        let eigen_k: Vec<usize> = truncated.iter().map(|t| t.k()).collect();
        let mut backend =
            ClusterBackend::new(cl, rank, mode_parts, meta, eigen_k, self.cfg.fused);
        let st = SolverState::new(
            observed,
            &truncated,
            &self.cfg,
            initial,
            ResidualStore::Blocked { blocks },
            boundaries,
        )?;
        let (result, _) = solver::run(observed, &truncated, &self.cfg, &mut backend, st, false)?;

        // Release resident memory (the job is done). An error above keeps
        // it reserved — the failed job's footprint stays visible in the
        // cluster metrics, matching the pre-refactor behavior.
        for (mach, bytes) in reserved {
            cl.release(mach, bytes);
        }

        Ok(result)
    }

    // ---- One-off setup accounting ---------------------------------------

    /// A stage whose work is an even split of `records` across machines.
    fn stage_over_even_split(
        &self,
        records: usize,
        flops_per_record: f64,
        bytes_per_record: u64,
    ) -> Result<()> {
        let m = self.cluster.machines();
        let per = records.div_ceil(m);
        let tasks: Vec<TaskCost> = (0..m)
            .map(|mach| TaskCost {
                machine: mach,
                flops: per as f64 * flops_per_record,
                input_bytes: per as u64 * bytes_per_record,
                output_bytes: 0,
            })
            .collect();
        self.cluster.run_stage(&tasks)?;
        Ok(())
    }

    /// The initial all-to-all that moves every entry to its block's home.
    fn charge_partition_shuffle(&self, blocking: &TensorBlocks, entry_bytes: u64) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        for (i, (_, t)) in blocking.blocks.iter().enumerate() {
            let dst = cl.machine_for_partition(i);
            let bytes = t.nnz() as u64 * entry_bytes;
            // Entries start evenly spread; (m−1)/m of them are remote.
            let remote = bytes * (m as u64 - 1) / m as u64;
            received[dst] += remote;
            sent[dst % m] += 0; // placeholder to keep vec sizes aligned
            // Spread the sends evenly over sources (approximation of a
            // random initial layout).
            for (s, slot) in sent.iter_mut().enumerate() {
                if s != dst {
                    *slot += remote / (m as u64 - 1).max(1);
                }
            }
        }
        // Fix rounding so conservation holds.
        let total_recv: u64 = received.iter().sum();
        let total_sent: u64 = sent.iter().sum();
        if total_sent < total_recv {
            sent[0] += total_recv - total_sent;
        } else {
            received[0] += total_sent - total_recv;
        }
        cl.shuffle(&sent, &received)?;
        Ok(())
    }

    /// Charge the one-off truncated eigendecompositions (`O(K·I)` per the
    /// paper's §III-B claim) and produce them.
    fn truncate_charged(
        &self,
        shape: &[usize],
        laplacians: &[Option<&Laplacian>],
    ) -> Result<Vec<TruncatedLaplacian>> {
        for (n, lap) in laplacians.iter().enumerate() {
            if lap.is_some() {
                let flops = (self.cfg.eigen_k * shape[n]) as f64 * 8.0;
                self.cluster.charge_driver_flops(flops)?;
            }
        }
        truncate_all(shape, laplacians, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::AdmmSolver;
    use distenc_dataflow::{ClusterConfig, DataflowError};
    use distenc_graph::builders::tridiagonal_chain;
    use distenc_tensor::KruskalTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        truth.eval_at(&mask).unwrap()
    }

    fn test_cluster(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::test(machines).with_time_budget(None))
    }

    #[test]
    fn matches_serial_oracle() {
        let observed = planted(&[15, 12, 10], 2, 500, 3);
        let cfg = AdmmConfig { rank: 2, max_iters: 12, tol: 1e-12, ..Default::default() };
        let serial = AdmmSolver::new(cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let cluster = test_cluster(3);
        let dist = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        assert_eq!(serial.iterations, dist.iterations);
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(
                a.frob_dist(b).unwrap() < 1e-8,
                "distributed factors must match the serial oracle"
            );
        }
        let (s_rmse, d_rmse) = (
            serial.trace.final_rmse().unwrap(),
            dist.trace.final_rmse().unwrap(),
        );
        assert!((s_rmse - d_rmse).abs() < 1e-10);
    }

    #[test]
    fn matches_serial_with_auxiliary_info() {
        let observed = planted(&[20, 16, 12], 2, 600, 7);
        let laps: Vec<Laplacian> = [20, 16, 12]
            .iter()
            .map(|&d| Laplacian::from_similarity(tridiagonal_chain(d)))
            .collect();
        let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
        let cfg = AdmmConfig {
            rank: 2,
            max_iters: 10,
            tol: 1e-12,
            alpha: 2.0,
            eigen_k: 8,
            ..Default::default()
        };
        let serial = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &lap_refs).unwrap();
        let cluster = test_cluster(4);
        let dist = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &lap_refs).unwrap();
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(a.frob_dist(b).unwrap() < 1e-8);
        }
    }

    #[test]
    fn accounts_shuffle_and_stages() {
        let observed = planted(&[20, 20, 20], 2, 800, 5);
        let cluster = test_cluster(4);
        let cfg = AdmmConfig { rank: 2, max_iters: 3, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        let m = cluster.metrics();
        assert!(m.stages > 10, "stages = {}", m.stages);
        assert!(m.shuffled_bytes > 0);
        assert!(m.broadcast_bytes > 0);
        assert!(m.virtual_seconds > 0.0);
        assert!(m.peak_resident > 0);
    }

    #[test]
    fn memory_released_after_solve() {
        let observed = planted(&[15, 15, 15], 2, 300, 11);
        let cluster = test_cluster(2);
        let cfg = AdmmConfig { rank: 2, max_iters: 2, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        // All resident memory released: a full-capacity reserve succeeds.
        let cap = cluster.config().mem_per_machine;
        assert!(cluster.reserve(0, cap).is_ok());
    }

    #[test]
    fn oom_surfaces_on_tiny_cluster() {
        let observed = planted(&[30, 30, 30], 4, 3000, 13);
        let cfg_small = ClusterConfig::test(2).with_memory(16 * 1024).with_time_budget(None);
        let cluster = Cluster::new(cfg_small);
        let cfg = AdmmConfig { rank: 4, max_iters: 2, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        match err {
            crate::CoreError::Dataflow(DataflowError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn out_of_time_surfaces() {
        let observed = planted(&[20, 20, 20], 2, 500, 17);
        let cluster = Cluster::new(ClusterConfig::test(2).with_time_budget(Some(0.2)));
        let cfg = AdmmConfig { rank: 2, max_iters: 50, tol: 1e-15, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::Dataflow(DataflowError::OutOfTime { .. })
        ));
    }

    #[test]
    fn more_machines_less_virtual_time() {
        // Enough iterations that the per-iteration compute dwarfs the
        // one-time partition shuffle; latency zeroed so the signal is the
        // distributed work itself.
        let observed = planted(&[40, 40, 40], 4, 8000, 19);
        let cfg = AdmmConfig { rank: 4, max_iters: 20, tol: 1e-12, ..Default::default() };
        let mut times = Vec::new();
        for m in [1usize, 4] {
            let mut cc = ClusterConfig::test(m).with_time_budget(None);
            cc.cost.stage_latency = 0.0;
            let cluster = Cluster::new(cc);
            let _ = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            times.push(cluster.now());
        }
        assert!(
            times[1] < times[0],
            "4 machines ({}s) must beat 1 machine ({}s)",
            times[1],
            times[0]
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let observed = planted(&[12, 12, 12], 2, 400, 23);
        let cfg = AdmmConfig { rank: 2, max_iters: 5, tol: 1e-12, ..Default::default() };
        let run = || {
            let cluster = test_cluster(3);
            let r = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            (r.trace.final_rmse().unwrap(), cluster.metrics().shuffled_bytes)
        };
        assert_eq!(run(), run());
    }
}
