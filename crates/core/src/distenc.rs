//! The distributed DisTenC solver (Algorithm 3) on the dataflow engine.
//!
//! Numerically this performs exactly the serial Algorithm 1 iteration (see
//! [`crate::admm`]), but the work is organized the way §III-C/D and §III-F
//! describe — and every stage, shuffle, and broadcast is accounted on the
//! [`Cluster`]:
//!
//! * the observed tensor is split into `P₁×…×P_N` blocks with Algorithm 2
//!   boundaries and the blocks are pinned to machines;
//! * factor matrices (and `B`, `Y`, and the Laplacian eigenbases) are
//!   row-partitioned by the same boundaries, co-located with the mode
//!   partitions;
//! * MTTKRP runs block-locally over the *residual* tensor: remote factor
//!   rows are fetched (counted as shuffle), per-block partial `H` rows are
//!   reduced to the factor partition's home machine;
//! * `U⁽ⁿ⁾ᵀU⁽ⁿ⁾` comes from per-partition Gram contributions reduced to
//!   `R×R` and broadcast back (Eq. 12/13);
//! * the `B⁽ⁿ⁾` update reduces the `K×R` projection `Vᵀ(ηA−Y)` the same
//!   way (Eq. 7).
//!
//! Floating-point note: per-block accumulation order differs from the
//! serial solver's entry order, so iterates match the oracle to rounding,
//! not bit-for-bit; the integration tests assert agreement to `1e-8`.

use crate::admm::{truncate_all, validate_problem};
use crate::config::AdmmConfig;
use crate::trace::{ConvergenceTrace, TracePoint};
use crate::{CompletionResult, Result};
use distenc_dataflow::cluster::TaskCost;
use distenc_dataflow::Cluster;
use distenc_graph::{Laplacian, TruncatedLaplacian};
use distenc_linalg::{Cholesky, Mat};
use distenc_partition::{ModePartition, TensorBlocks};
use distenc_tensor::mttkrp::gram_product;
use distenc_tensor::{CooTensor, KruskalTensor};

const F64: u64 = 8;

/// One tensor block pinned to a machine, carrying its slice of the
/// residual tensor (values parallel to `entries`).
#[derive(Debug)]
struct Block {
    machine: usize,
    /// Per-mode partition coordinates of this block.
    coords: Vec<usize>,
    entries: CooTensor,
    /// Residual values `E = Ω∗(T − [[A…]])` restricted to this block.
    e_vals: Vec<f64>,
    /// Distinct mode-`n` indices appearing in this block (per mode) —
    /// determines which factor rows the block needs and how large its
    /// partial-`H` output is.
    active: Vec<Vec<usize>>,
}

/// The distributed DisTenC solver bound to a simulated cluster.
#[derive(Debug)]
pub struct DisTenC<'c> {
    cluster: &'c Cluster,
    cfg: AdmmConfig,
}

impl<'c> DisTenC<'c> {
    /// Create a solver, validating the configuration.
    pub fn new(cluster: &'c Cluster, cfg: AdmmConfig) -> Result<Self> {
        cfg.validate().map_err(crate::CoreError::Invalid)?;
        Ok(DisTenC { cluster, cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Run distributed tensor completion. Returns the learned model plus a
    /// trace whose timestamps are the cluster's **virtual** clock; read
    /// [`Cluster::metrics`] afterwards for shuffle/memory totals.
    pub fn solve(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
    ) -> Result<CompletionResult> {
        validate_problem(observed, laplacians, &self.cfg)?;
        let cl = self.cluster;
        let m = cl.machines();
        let shape = observed.shape().to_vec();
        let n_modes = shape.len();
        let rank = self.cfg.rank;
        let entry_bytes = (n_modes as u64 + 1) * F64;

        // ---- Setup: Algorithm 2 blocking -------------------------------
        // Counting per-slice non-zeros is one pass over the entries.
        self.stage_over_even_split(observed.nnz(), 1.0, entry_bytes)?;
        let parts_per_mode: Vec<usize> = shape.iter().map(|&d| d.min(m)).collect();
        let blocking = TensorBlocks::build_with(observed, &parts_per_mode, self.cfg.partition);
        // Partitioning shuffles the whole input tensor (Lemma 3's
        // O(nnz(X)) term).
        self.charge_partition_shuffle(&blocking, entry_bytes)?;

        let mut blocks: Vec<Block> = blocking
            .blocks
            .iter()
            .enumerate()
            .map(|(i, (id, t))| {
                let active = (0..n_modes).map(|n| t.active_indices(n)).collect();
                Block {
                    machine: cl.machine_for_partition(i),
                    coords: blocking.block_coords(*id),
                    entries: t.clone(),
                    e_vals: vec![0.0; t.nnz()],
                    active,
                }
            })
            .collect();
        let mode_parts: Vec<ModePartition> = blocking.modes.clone();

        // ---- Resident memory: blocks, factor state, eigenbases ---------
        let mut reserved: Vec<(usize, u64)> = Vec::new();
        let mut reserve = |mach: usize, bytes: u64| -> Result<()> {
            cl.reserve(mach, bytes)?;
            reserved.push((mach, bytes));
            Ok(())
        };
        for b in &blocks {
            // Tensor block + residual values.
            let bytes = b.entries.nnz() as u64 * (entry_bytes + F64);
            reserve(b.machine, bytes)?;
        }
        let truncated = self.truncate_charged(&shape, laplacians)?;
        for (n, part) in mode_parts.iter().enumerate() {
            let k = truncated[n].k() as u64;
            for p in 0..part.parts() {
                let rows = part.range(p).len() as u64;
                // A, B, Y rows plus the eigenbasis rows for this range.
                let bytes = rows * rank as u64 * F64 * 3 + rows * k * F64;
                reserve(cl.machine_for_partition(p), bytes)?;
            }
        }

        // ---- State ------------------------------------------------------
        let mut model = KruskalTensor::random(&shape, rank, self.cfg.seed);
        let mut b_aux: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let mut y_mul: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let mut grams: Vec<Mat> = model
            .factors()
            .iter()
            .zip(&mode_parts)
            .map(|(f, part)| self.partitioned_gram(f, part))
            .collect();
        self.charge_gram_stage(&mode_parts, rank)?;

        // Initial residual (line 5): needs every mode's rows at each block.
        self.charge_factor_fetch(&blocks, &mode_parts, rank, None)?;
        self.compute_residual_blocks(&mut blocks, observed, &model)?;

        let mut eta = self.cfg.eta0;
        let mut trace = ConvergenceTrace::new();
        let mut converged = false;
        let mut iterations = 0;

        // ---- Main loop (Algorithm 3 lines 6–17) -------------------------
        for t in 0..self.cfg.max_iters {
            iterations = t + 1;
            let mut new_factors: Vec<Mat> = Vec::with_capacity(n_modes);

            for n in 0..n_modes {
                // Line 8: B-update via the eigenbasis (Eq. 7).
                let mut rhs = model.factors()[n].scaled(eta);
                rhs.axpy(-1.0, &y_mul[n]).map_err(crate::CoreError::from)?;
                self.charge_b_update(&mode_parts[n], rank, truncated[n].k())?;
                b_aux[n] = truncated[n].apply_shifted_inverse(eta, self.cfg.alpha, &rhs)?;

                // Line 9: Fⁿ from cached Grams (already computed this
                // iteration); Hadamard on the driver is O(N·R²).
                let f = gram_product(&grams, n)?;
                cl.charge_driver_flops((n_modes * rank * rank) as f64)?;

                // Line 10: blockwise MTTKRP over the residual.
                let h_sparse = self.blockwise_mttkrp(&blocks, &mode_parts, &model, n, rank)?;

                // Line 11: A-update.
                let mut numer = model.factors()[n].matmul(&f)?;
                numer.axpy(1.0, &h_sparse).map_err(crate::CoreError::from)?;
                numer.axpy(eta, &b_aux[n]).map_err(crate::CoreError::from)?;
                numer.axpy(1.0, &y_mul[n]).map_err(crate::CoreError::from)?;
                let mut denom = f;
                denom.add_diag(self.cfg.lambda + eta);
                // The R×R factorization happens once, replicated: O(R³).
                cl.charge_driver_flops((rank * rank * rank) as f64)?;
                self.charge_a_update(&mode_parts[n], rank)?;
                let mut a_new = Cholesky::factor(&denom)?.solve_right(&numer)?;
                if self.cfg.nonneg {
                    a_new.clamp_nonneg();
                }

                // Line 12: Y-update.
                self.charge_rows_stage(&mode_parts[n], rank as f64, rank as u64 * F64)?;
                let mut y_new = y_mul[n].clone();
                y_new
                    .axpy(eta, &b_aux[n].sub(&a_new)?)
                    .map_err(crate::CoreError::from)?;
                y_mul[n] = y_new;

                new_factors.push(a_new);
            }

            // Jacobi swap + convergence statistic (line 15).
            let mut delta = 0.0_f64;
            for (n, a_new) in new_factors.into_iter().enumerate() {
                delta = delta.max(model.factors()[n].frob_dist(&a_new)?);
                model.set_factor(n, a_new)?;
                grams[n] = self.partitioned_gram(&model.factors()[n], &mode_parts[n]);
            }
            self.charge_gram_stage(&mode_parts, rank)?;
            self.charge_rows_stage_all(&mode_parts, rank as f64, 0)?; // delta reduce

            // Line 13: refresh the residual blocks.
            self.charge_factor_fetch(&blocks, &mode_parts, rank, None)?;
            self.compute_residual_blocks(&mut blocks, observed, &model)?;

            let sq: f64 = blocks
                .iter()
                .flat_map(|b| b.e_vals.iter())
                .map(|v| v * v)
                .sum();
            let train_rmse = (sq / observed.nnz() as f64).sqrt();
            trace.push(TracePoint {
                iter: t,
                seconds: cl.now(),
                train_rmse,
                factor_delta: delta,
            });

            eta = (self.cfg.rho * eta).min(self.cfg.eta_max);
            if delta < self.cfg.tol {
                converged = true;
                break;
            }
        }

        // Release resident memory (the job is done).
        for (mach, bytes) in reserved {
            cl.release(mach, bytes);
        }

        Ok(CompletionResult { model, trace, iterations, converged })
    }

    // ---- Real block-local computation ----------------------------------

    /// MTTKRP of the residual against the current factors, computed
    /// block-by-block with per-block accounting, reduced into a full
    /// `Iₙ×R` matrix (partials combine at each factor partition's home).
    fn blockwise_mttkrp(
        &self,
        blocks: &[Block],
        mode_parts: &[ModePartition],
        model: &KruskalTensor,
        mode: usize,
        rank: usize,
    ) -> Result<Mat> {
        let cl = self.cluster;
        // Remote factor rows for every mode except `mode`'s own output —
        // inputs come from all modes k ≠ mode.
        self.charge_factor_fetch(blocks, mode_parts, rank, Some(mode))?;

        let shape = model.shape();
        // Algorithm 2's block boundaries double as the parallel work
        // decomposition: blocks sharing a mode-`mode` partition coordinate
        // write the same output row range, so they form one work unit
        // (processed in ascending block order — the same order the old
        // sequential loop used), while distinct coordinates own disjoint
        // row ranges and run concurrently with no atomics. Bit-identical
        // to a single sequential sweep for every `ExecMode`.
        let part = &mode_parts[mode];
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); part.parts()];
        for (i, b) in blocks.iter().enumerate() {
            groups[b.coords[mode]].push(i);
        }
        let slabs = cl.executor().run(&groups, |p, members| {
            let rows = part.range(p);
            let mut slab = Mat::zeros(rows.len(), rank);
            let mut scratch = vec![0.0; rank];
            for &bi in members {
                let b = &blocks[bi];
                for (pos, (idx, _)) in b.entries.iter().enumerate() {
                    let v = b.e_vals[pos];
                    scratch.iter_mut().for_each(|s| *s = v);
                    for (k, f) in model.factors().iter().enumerate() {
                        if k == mode {
                            continue;
                        }
                        let row = f.row(idx[k]);
                        for (s, &a) in scratch.iter_mut().zip(row) {
                            *s *= a;
                        }
                    }
                    let out = slab.row_mut(idx[mode] - rows.start);
                    for (o, &s) in out.iter_mut().zip(&scratch) {
                        *o += s;
                    }
                }
            }
            slab
        });
        // Stitch the disjoint row slabs in fixed partition order.
        let mut h = Mat::zeros(shape[mode], rank);
        for (p, slab) in slabs.iter().enumerate() {
            let rows = part.range(p);
            h.as_mut_slice()[rows.start * rank..rows.end * rank]
                .copy_from_slice(slab.as_slice());
        }
        let mut tasks = Vec::with_capacity(blocks.len());
        let mut sent = vec![0u64; cl.machines()];
        let mut received = vec![0u64; cl.machines()];
        for b in blocks {
            let nnz = b.entries.nnz();
            let out_rows = b.active[mode].len() as u64;
            tasks.push(TaskCost {
                machine: b.machine,
                flops: (nnz * shape.len() * rank) as f64,
                input_bytes: nnz as u64 * (shape.len() as u64 + 2) * F64,
                output_bytes: out_rows * rank as u64 * F64,
            });
            // Partial-H rows travel to the factor partition's home.
            let dst = cl.machine_for_partition(b.coords[mode]);
            if dst != b.machine {
                let bytes = out_rows * rank as u64 * F64;
                sent[b.machine] += bytes;
                received[dst] += bytes;
            }
        }
        cl.run_stage(&tasks)?;
        cl.shuffle(&sent, &received)?;
        // Combine stage at the partition homes.
        self.charge_rows_stage(&mode_parts[mode], rank as f64, 0)?;
        Ok(h)
    }

    /// `A⁽ⁿ⁾ᵀA⁽ⁿ⁾` as the paper computes it (Eq. 13): each mode
    /// partition contributes the partial Gram of its factor rows, and the
    /// `R×R` partials reduce on the driver.
    ///
    /// The partial boundaries come from the *mode partition* — a function
    /// of the data, never of the thread count — and the partials are
    /// summed in ascending partition order under **every** `ExecMode`, so
    /// the floating-point association is fixed and `Sequential` and
    /// `Threads(n)` produce identical bits. (This association differs
    /// from a single unblocked row sweep, which is why the serial
    /// `AdmmSolver` oracle agrees to rounding, not to the bit.)
    fn partitioned_gram(&self, factor: &Mat, part: &ModePartition) -> Mat {
        let ranges: Vec<std::ops::Range<usize>> =
            (0..part.parts()).map(|p| part.range(p)).collect();
        let partials = self
            .cluster
            .executor()
            .run(&ranges, |_, r| factor.gram_range(r.clone()));
        let r = factor.cols();
        let mut g = Mat::zeros(r, r);
        for partial in &partials {
            g.axpy(1.0, partial).expect("partial grams share the R×R shape");
        }
        g.mirror_upper();
        g
    }

    /// Recompute residual values block-locally: `e = t − [[A…]](idx)`.
    fn compute_residual_blocks(
        &self,
        blocks: &mut [Block],
        observed: &CooTensor,
        model: &KruskalTensor,
    ) -> Result<()> {
        let n_modes = observed.order();
        let rank = model.rank();
        // Residual entries are independent, so one task per block on the
        // executor is bit-exact regardless of scheduling.
        self.cluster.executor().run_mut(blocks, |_, b| {
            for (pos, (idx, v)) in b.entries.iter().enumerate() {
                b.e_vals[pos] = v - model.eval(idx);
            }
        });
        let mut tasks = Vec::with_capacity(blocks.len());
        for b in blocks.iter() {
            let nnz = b.entries.nnz();
            tasks.push(TaskCost {
                machine: b.machine,
                flops: (nnz * n_modes * rank) as f64,
                input_bytes: nnz as u64 * (n_modes as u64 + 1) * F64,
                output_bytes: nnz as u64 * F64,
            });
        }
        self.cluster.run_stage(&tasks)?;
        Ok(())
    }

    // ---- Accounting helpers ---------------------------------------------

    /// A stage whose work is an even split of `records` across machines.
    fn stage_over_even_split(
        &self,
        records: usize,
        flops_per_record: f64,
        bytes_per_record: u64,
    ) -> Result<()> {
        let m = self.cluster.machines();
        let per = records.div_ceil(m);
        let tasks: Vec<TaskCost> = (0..m)
            .map(|mach| TaskCost {
                machine: mach,
                flops: per as f64 * flops_per_record,
                input_bytes: per as u64 * bytes_per_record,
                output_bytes: 0,
            })
            .collect();
        self.cluster.run_stage(&tasks)?;
        Ok(())
    }

    /// The initial all-to-all that moves every entry to its block's home.
    fn charge_partition_shuffle(&self, blocking: &TensorBlocks, entry_bytes: u64) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        for (i, (_, t)) in blocking.blocks.iter().enumerate() {
            let dst = cl.machine_for_partition(i);
            let bytes = t.nnz() as u64 * entry_bytes;
            // Entries start evenly spread; (m−1)/m of them are remote.
            let remote = bytes * (m as u64 - 1) / m as u64;
            received[dst] += remote;
            sent[dst % m] += 0; // placeholder to keep vec sizes aligned
            // Spread the sends evenly over sources (approximation of a
            // random initial layout).
            for (s, slot) in sent.iter_mut().enumerate() {
                if s != dst {
                    *slot += remote / (m as u64 - 1).max(1);
                }
            }
        }
        // Fix rounding so conservation holds.
        let total_recv: u64 = received.iter().sum();
        let total_sent: u64 = sent.iter().sum();
        if total_sent < total_recv {
            sent[0] += total_recv - total_sent;
        } else {
            received[0] += total_sent - total_recv;
        }
        cl.shuffle(&sent, &received)?;
        Ok(())
    }

    /// Charge the one-off truncated eigendecompositions (`O(K·I)` per the
    /// paper's §III-B claim) and produce them.
    fn truncate_charged(
        &self,
        shape: &[usize],
        laplacians: &[Option<&Laplacian>],
    ) -> Result<Vec<TruncatedLaplacian>> {
        for (n, lap) in laplacians.iter().enumerate() {
            if lap.is_some() {
                let flops = (self.cfg.eigen_k * shape[n]) as f64 * 8.0;
                self.cluster.charge_driver_flops(flops)?;
            }
        }
        truncate_all(shape, laplacians, &self.cfg)
    }

    /// A per-row stage over one mode's partitions (updates touching each
    /// factor row once: Y-updates, combines, …).
    fn charge_rows_stage(
        &self,
        part: &ModePartition,
        flops_per_row: f64,
        out_bytes_per_row: u64,
    ) -> Result<()> {
        let cl = self.cluster;
        let tasks: Vec<TaskCost> = (0..part.parts())
            .map(|p| {
                let rows = part.range(p).len();
                TaskCost {
                    machine: cl.machine_for_partition(p),
                    flops: rows as f64 * flops_per_row,
                    input_bytes: rows as u64 * self.cfg.rank as u64 * F64,
                    output_bytes: rows as u64 * out_bytes_per_row,
                }
            })
            .collect();
        cl.run_stage(&tasks)?;
        Ok(())
    }

    /// Same, across all modes at once (convergence-delta reduction).
    fn charge_rows_stage_all(
        &self,
        parts: &[ModePartition],
        flops_per_row: f64,
        out_bytes_per_row: u64,
    ) -> Result<()> {
        for part in parts {
            self.charge_rows_stage(part, flops_per_row, out_bytes_per_row)?;
        }
        Ok(())
    }

    /// Gram computation for every mode: per-partition `rows·R²` flops,
    /// `R×R` partials reduced and broadcast (Eqs. 12–13).
    fn charge_gram_stage(&self, parts: &[ModePartition], rank: usize) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        let r2_bytes = (rank * rank) as u64 * F64;
        for part in parts {
            self.charge_rows_stage(part, (rank * rank) as f64, r2_bytes)?;
            // Reduce partials to machine 0, broadcast the result.
            let mut sent = vec![r2_bytes; m];
            sent[0] = 0;
            let mut received = vec![0u64; m];
            received[0] = r2_bytes * (m as u64 - 1);
            cl.shuffle(&sent, &received)?;
            cl.broadcast_charge(r2_bytes)?;
        }
        Ok(())
    }

    /// The B-update of one mode (Eq. 7): local `ηA−Y`, a `K×R` projection
    /// reduced across machines and broadcast back, then local expansion.
    fn charge_b_update(&self, part: &ModePartition, rank: usize, k: usize) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        // Local work: 2·rows·R (rhs) + rows·K·R (projection) + rows·K·R
        // (expansion).
        let per_row = (2 * rank + 2 * k * rank) as f64;
        self.charge_rows_stage(part, per_row, rank as u64 * F64)?;
        if k > 0 {
            let kr_bytes = (k * rank) as u64 * F64;
            let mut sent = vec![kr_bytes; m];
            sent[0] = 0;
            let mut received = vec![0u64; m];
            received[0] = kr_bytes * (m as u64 - 1);
            cl.shuffle(&sent, &received)?;
            cl.broadcast_charge(kr_bytes)?;
        }
        Ok(())
    }

    /// The A-update application: assembling the numerator and applying the
    /// `R×R` inverse is `O(rows·R²)` per partition.
    fn charge_a_update(&self, part: &ModePartition, rank: usize) -> Result<()> {
        self.charge_rows_stage(part, (2 * rank * rank + 3 * rank) as f64, rank as u64 * F64)
    }

    /// Fetch the factor rows each block needs for modes it reads. With
    /// `skip_output = Some(n)`, mode `n`'s rows are not inputs (they are
    /// the stage's *output*), matching MTTKRP; with `None` every mode's
    /// rows are fetched (residual update). Rows whose home machine already
    /// hosts the block are free (§III-F keeps joins co-partitioned for
    /// exactly this reason).
    fn charge_factor_fetch(
        &self,
        blocks: &[Block],
        mode_parts: &[ModePartition],
        rank: usize,
        skip_output: Option<usize>,
    ) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        // Dedup: machine × mode × partition fetched at most once per stage.
        let mut needed: std::collections::BTreeSet<(usize, usize, usize)> =
            std::collections::BTreeSet::new();
        for b in blocks {
            for (k, &pk) in b.coords.iter().enumerate() {
                if Some(k) == skip_output {
                    continue;
                }
                let home = cl.machine_for_partition(pk);
                if home != b.machine {
                    needed.insert((b.machine, k, pk));
                }
            }
        }
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        for &(dst, k, pk) in &needed {
            let rows = mode_parts[k].range(pk).len() as u64;
            let bytes = rows * rank as u64 * F64;
            sent[cl.machine_for_partition(pk)] += bytes;
            received[dst] += bytes;
        }
        cl.shuffle(&sent, &received)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::AdmmSolver;
    use distenc_dataflow::{ClusterConfig, DataflowError};
    use distenc_graph::builders::tridiagonal_chain;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        truth.eval_at(&mask).unwrap()
    }

    fn test_cluster(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::test(machines).with_time_budget(None))
    }

    #[test]
    fn matches_serial_oracle() {
        let observed = planted(&[15, 12, 10], 2, 500, 3);
        let cfg = AdmmConfig { rank: 2, max_iters: 12, tol: 1e-12, ..Default::default() };
        let serial = AdmmSolver::new(cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let cluster = test_cluster(3);
        let dist = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        assert_eq!(serial.iterations, dist.iterations);
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(
                a.frob_dist(b).unwrap() < 1e-8,
                "distributed factors must match the serial oracle"
            );
        }
        let (s_rmse, d_rmse) = (
            serial.trace.final_rmse().unwrap(),
            dist.trace.final_rmse().unwrap(),
        );
        assert!((s_rmse - d_rmse).abs() < 1e-10);
    }

    #[test]
    fn matches_serial_with_auxiliary_info() {
        let observed = planted(&[20, 16, 12], 2, 600, 7);
        let laps: Vec<Laplacian> = [20, 16, 12]
            .iter()
            .map(|&d| Laplacian::from_similarity(tridiagonal_chain(d)))
            .collect();
        let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
        let cfg = AdmmConfig {
            rank: 2,
            max_iters: 10,
            tol: 1e-12,
            alpha: 2.0,
            eigen_k: 8,
            ..Default::default()
        };
        let serial = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &lap_refs).unwrap();
        let cluster = test_cluster(4);
        let dist = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &lap_refs).unwrap();
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(a.frob_dist(b).unwrap() < 1e-8);
        }
    }

    #[test]
    fn accounts_shuffle_and_stages() {
        let observed = planted(&[20, 20, 20], 2, 800, 5);
        let cluster = test_cluster(4);
        let cfg = AdmmConfig { rank: 2, max_iters: 3, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        let m = cluster.metrics();
        assert!(m.stages > 10, "stages = {}", m.stages);
        assert!(m.shuffled_bytes > 0);
        assert!(m.broadcast_bytes > 0);
        assert!(m.virtual_seconds > 0.0);
        assert!(m.peak_resident > 0);
    }

    #[test]
    fn memory_released_after_solve() {
        let observed = planted(&[15, 15, 15], 2, 300, 11);
        let cluster = test_cluster(2);
        let cfg = AdmmConfig { rank: 2, max_iters: 2, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        // All resident memory released: a full-capacity reserve succeeds.
        let cap = cluster.config().mem_per_machine;
        assert!(cluster.reserve(0, cap).is_ok());
    }

    #[test]
    fn oom_surfaces_on_tiny_cluster() {
        let observed = planted(&[30, 30, 30], 4, 3000, 13);
        let cfg_small = ClusterConfig::test(2).with_memory(16 * 1024).with_time_budget(None);
        let cluster = Cluster::new(cfg_small);
        let cfg = AdmmConfig { rank: 4, max_iters: 2, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        match err {
            crate::CoreError::Dataflow(DataflowError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn out_of_time_surfaces() {
        let observed = planted(&[20, 20, 20], 2, 500, 17);
        let cluster = Cluster::new(ClusterConfig::test(2).with_time_budget(Some(0.2)));
        let cfg = AdmmConfig { rank: 2, max_iters: 50, tol: 1e-15, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::Dataflow(DataflowError::OutOfTime { .. })
        ));
    }

    #[test]
    fn more_machines_less_virtual_time() {
        // Enough iterations that the per-iteration compute dwarfs the
        // one-time partition shuffle; latency zeroed so the signal is the
        // distributed work itself.
        let observed = planted(&[40, 40, 40], 4, 8000, 19);
        let cfg = AdmmConfig { rank: 4, max_iters: 20, tol: 1e-12, ..Default::default() };
        let mut times = Vec::new();
        for m in [1usize, 4] {
            let mut cc = ClusterConfig::test(m).with_time_budget(None);
            cc.cost.stage_latency = 0.0;
            let cluster = Cluster::new(cc);
            let _ = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            times.push(cluster.now());
        }
        assert!(
            times[1] < times[0],
            "4 machines ({}s) must beat 1 machine ({}s)",
            times[1],
            times[0]
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let observed = planted(&[12, 12, 12], 2, 400, 23);
        let cfg = AdmmConfig { rank: 2, max_iters: 5, tol: 1e-12, ..Default::default() };
        let run = || {
            let cluster = test_cluster(3);
            let r = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            (r.trace.final_rmse().unwrap(), cluster.metrics().shuffled_bytes)
        };
        assert_eq!(run(), run());
    }
}
