//! The distributed DisTenC solver (Algorithm 3) on the dataflow engine.
//!
//! Numerically this performs exactly the serial Algorithm 1 iteration —
//! the step math itself lives in [`crate::solver`], shared with
//! [`crate::AdmmSolver`] — but the work is organized the way §III-C/D and
//! §III-F describe, and every stage, shuffle, and broadcast is accounted
//! on the [`Cluster`]:
//!
//! * the observed tensor is split into `P₁×…×P_N` blocks with Algorithm 2
//!   boundaries and the blocks are pinned to machines;
//! * factor matrices (and `B`, `Y`, and the Laplacian eigenbases) are
//!   row-partitioned by the same boundaries, co-located with the mode
//!   partitions;
//! * MTTKRP runs block-locally over the *residual* tensor: remote factor
//!   rows are fetched (counted as shuffle), per-block partial `H` rows are
//!   reduced to the factor partition's home machine;
//! * `U⁽ⁿ⁾ᵀU⁽ⁿ⁾` comes from per-partition Gram contributions reduced to
//!   `R×R` and broadcast back (Eq. 12/13);
//! * the `B⁽ⁿ⁾` update reduces the `K×R` projection `Vᵀ(ηA−Y)` the same
//!   way (Eq. 7).
//!
//! This driver owns only what is genuinely distributed: the Algorithm 2
//! blocking, the resident-memory ledger, and the one-off setup charges.
//! The per-iteration decomposition and its charges live in the
//! [`crate::solver::ClusterBackend`]; the iteration itself is
//! [`crate::solver::run`].
//!
//! Floating-point note: per-block accumulation order differs from the
//! serial solver's entry order, so iterates match the oracle to rounding,
//! not bit-for-bit; the integration tests assert agreement to `1e-8`.

use crate::admm::{truncate_all, validate_problem};
use crate::config::AdmmConfig;
use crate::solver::checkpoint::Checkpoint;
use crate::solver::{self, BlockMeta, ClusterBackend, ResidualBlock, ResidualStore, SolverState};
use crate::trace::ConvergenceTrace;
use crate::{CompletionResult, CoreError, Result};
use distenc_dataflow::cluster::TaskCost;
use distenc_dataflow::{Cluster, DataflowError, MemoryReservation};
use distenc_graph::{Laplacian, TruncatedLaplacian};
use distenc_partition::TensorBlocks;
use distenc_tensor::{CooTensor, KruskalTensor};

const F64: u64 = 8;

/// How many injected machine losses one solve call will absorb before
/// giving up and surfacing the loss. Each recovery consumes the fault
/// that caused it (injected faults are one-shot), so this bound only
/// trips when a fault plan schedules more distinct crashes than any
/// plausible test scenario.
const MAX_RECOVERIES: usize = 8;

/// The distributed DisTenC solver bound to a simulated cluster.
#[derive(Debug)]
pub struct DisTenC<'c> {
    cluster: &'c Cluster,
    cfg: AdmmConfig,
}

impl<'c> DisTenC<'c> {
    /// Create a solver, validating the configuration.
    pub fn new(cluster: &'c Cluster, cfg: AdmmConfig) -> Result<Self> {
        cfg.validate().map_err(crate::CoreError::Invalid)?;
        Ok(DisTenC { cluster, cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Run distributed tensor completion. Returns the learned model plus a
    /// trace whose timestamps are the cluster's **virtual** clock; read
    /// [`Cluster::metrics`] afterwards for shuffle/memory totals.
    pub fn solve(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
    ) -> Result<CompletionResult> {
        self.solve_inner(observed, laplacians, None)
    }

    /// Like [`DisTenC::solve`], but warm-started from `init`'s factors.
    ///
    /// The blocked residual is rebuilt on the cluster (its values start
    /// stale and the solver prologue refreshes them against `init`), so
    /// this is a factor-warm / residual-cold restart — the distributed
    /// analogue of [`crate::AdmmSolver::solve_from`]. Used by the
    /// streaming layer to re-converge after a delta batch without
    /// discarding the learned model.
    pub fn solve_from(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        init: &KruskalTensor,
    ) -> Result<CompletionResult> {
        if init.shape() != observed.shape() || init.rank() != self.cfg.rank {
            return Err(crate::CoreError::Invalid(format!(
                "warm-start model is {:?} rank {}, problem is {:?} rank {}",
                init.shape(),
                init.rank(),
                observed.shape(),
                self.cfg.rank
            )));
        }
        self.solve_inner(observed, laplacians, Some(init.clone()))
    }

    fn solve_inner(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        initial: Option<KruskalTensor>,
    ) -> Result<CompletionResult> {
        validate_problem(observed, laplacians, &self.cfg)?;
        let cl = self.cluster;
        let m = cl.machines();
        let shape = observed.shape().to_vec();
        let entry_bytes = (shape.len() as u64 + 1) * F64;

        // The Algorithm 2 blocking and the eigendecompositions are
        // driver-side metadata: computed once, they survive any machine
        // loss (the charges for them still land inside attempt 0, in the
        // pre-fault order, so a fault-free solve is byte-identical to the
        // pre-recovery driver). `positions[i][j]` maps block `i`'s entry
        // `j` back to its index in `observed`'s canonical entry order —
        // the order checkpoints store the residual in.
        let parts_per_mode: Vec<usize> = shape.iter().map(|&d| d.min(m)).collect();
        let blocking = TensorBlocks::build_with(observed, &parts_per_mode, self.cfg.partition);
        let truncated = truncate_all(&shape, laplacians, &self.cfg)?;
        let positions: Option<Vec<Vec<usize>>> = self.cfg.checkpoint.as_ref().map(|_| {
            blocking
                .blocks
                .iter()
                .map(|(_, t)| {
                    (0..t.nnz())
                        .map(|e| {
                            observed
                                .position_of(t.index(e))
                                .expect("block entries are drawn from the observed tensor")
                        })
                        .collect()
                })
                .collect()
        });

        // Lineage-style recovery loop: a lost machine aborts the attempt,
        // the next attempt reloads that machine's blocks from the
        // (simulated) reliable input store, restores the latest snapshot
        // if checkpointing was on — a cold restart otherwise — and
        // continues. Every injected fault is one-shot, so each retry
        // makes progress.
        let mut image: Option<Vec<u8>> = None;
        let mut recovering: Option<usize> = None;
        for attempt in 0..=MAX_RECOVERIES {
            let out = self.run_attempt(
                observed,
                laplacians,
                &truncated,
                &blocking,
                positions.as_deref(),
                initial.as_ref(),
                recovering,
                &mut image,
                entry_bytes,
            );
            match out {
                Err(CoreError::Dataflow(DataflowError::MachineLost { machine, .. }))
                    if attempt < MAX_RECOVERIES =>
                {
                    recovering = Some(machine);
                }
                other => return other,
            }
        }
        unreachable!("the final attempt either succeeds or returns its error")
    }

    /// One solve attempt: charge the setup (full on the first attempt,
    /// the recovery reload on retries), reserve resident memory behind an
    /// RAII guard, restore the latest checkpoint image if there is one,
    /// and run the shared solver core. Any snapshot the attempt produced
    /// is harvested into `image` even when the attempt dies, so the
    /// *next* attempt resumes from the most recent snapshot.
    #[allow(clippy::too_many_arguments)]
    fn run_attempt(
        &self,
        observed: &CooTensor,
        _laplacians: &[Option<&Laplacian>],
        truncated: &[TruncatedLaplacian],
        blocking: &TensorBlocks,
        positions: Option<&[Vec<usize>]>,
        initial: Option<&KruskalTensor>,
        recovering: Option<usize>,
        image: &mut Option<Vec<u8>>,
        entry_bytes: u64,
    ) -> Result<CompletionResult> {
        let cl = self.cluster;
        let shape = observed.shape().to_vec();
        let n_modes = shape.len();
        let rank = self.cfg.rank;

        let mut blocks: Vec<ResidualBlock> = Vec::with_capacity(blocking.blocks.len());
        let mut meta: Vec<BlockMeta> = Vec::with_capacity(blocking.blocks.len());
        for (i, (id, t)) in blocking.blocks.iter().enumerate() {
            meta.push(BlockMeta {
                machine: cl.machine_for_partition(i),
                coords: blocking.block_coords(*id),
                active: (0..n_modes).map(|n| t.active_indices(n)).collect(),
            });
            // Residual values start stale (zero); the solver prologue
            // refreshes them before anything reads them. A checkpoint
            // restore overwrites them with the snapshot's values below.
            blocks.push(ResidualBlock { entries: t.clone(), vals: vec![0.0; t.nnz()] });
        }
        let mode_parts = blocking.modes.clone();

        if recovering.is_none() {
            // ---- First attempt: the Algorithm 2 setup charges ----------
            // Counting per-slice non-zeros is one pass over the entries;
            // partitioning then shuffles the whole input tensor (Lemma
            // 3's O(nnz(X)) term).
            self.stage_over_even_split(observed.nnz(), 1.0, entry_bytes)?;
            self.charge_partition_shuffle(blocking, entry_bytes)?;
        }

        // ---- Resident memory: blocks, factor state, eigenbases ---------
        // The guard releases whatever was reserved when the attempt ends,
        // success or failure — a failed attempt is torn down (its peak
        // footprint stays in `peak_resident`), so retries never leak the
        // ledger.
        let mut reservation = MemoryReservation::new(cl);
        for (b, bm) in blocks.iter().zip(&meta) {
            // Tensor block + residual values.
            let bytes = b.entries.nnz() as u64 * (entry_bytes + F64);
            reservation.reserve(bm.machine, bytes)?;
        }
        if recovering.is_none() {
            self.charge_truncation(&shape, _laplacians)?;
        }
        for (n, part) in mode_parts.iter().enumerate() {
            let k = truncated[n].k() as u64;
            for p in 0..part.parts() {
                let rows = part.range(p).len() as u64;
                // A, B, Y rows plus the eigenbasis rows for this range.
                let bytes = rows * rank as u64 * F64 * 3 + rows * k * F64;
                reservation.reserve(cl.machine_for_partition(p), bytes)?;
            }
        }

        if let Some(lost) = recovering {
            // ---- Recovery charges: reload + restore --------------------
            // The lost machine re-reads its blocks from the reliable
            // input store, and the latest snapshot (if any) is broadcast
            // back out. All of it is recovery work: charged to the
            // virtual clock *and* to `Metrics::recovery_seconds`.
            let t0 = cl.now();
            let lost_nnz: u64 = blocks
                .iter()
                .zip(&meta)
                .filter(|(_, bm)| bm.machine == lost)
                .map(|(b, _)| b.entries.nnz() as u64)
                .sum();
            cl.run_stage(&[TaskCost {
                machine: lost,
                flops: lost_nnz as f64,
                input_bytes: lost_nnz * entry_bytes,
                output_bytes: 0,
            }])?;
            if let Some(img) = image.as_ref() {
                cl.broadcast_charge(img.len() as u64)?;
            }
            cl.note_recovery(cl.now() - t0);
        }

        // ---- Restore the snapshot, or start (possibly warm) ------------
        let mut restored: Option<(Vec<distenc_linalg::Mat>, f64, solver::ResumePoint)> = None;
        let mut init = initial.cloned();
        let mut residual_fresh = false;
        if let Some(img) = image.as_ref() {
            let ck = Checkpoint::from_bytes(img)?;
            let pos = positions.expect("a snapshot implies a checkpoint policy");
            for (b, p) in blocks.iter_mut().zip(pos) {
                for (v, &at) in b.vals.iter_mut().zip(p) {
                    *v = ck.residual[at];
                }
            }
            init = Some(KruskalTensor::new(ck.factors)?);
            residual_fresh = true;
            restored = Some((
                ck.y_mul,
                ck.eta,
                solver::ResumePoint { start_iter: ck.iters_done, trace: ck.trace },
            ));
        }

        // ---- Delegate the iteration to the shared solver core ----------
        let boundaries: Vec<Vec<usize>> = mode_parts
            .iter()
            .map(|part| (0..part.parts()).map(|p| part.range(p).end).collect())
            .collect();
        let eigen_k: Vec<usize> = truncated.iter().map(|t| t.k()).collect();
        let mut backend =
            ClusterBackend::new(cl, rank, mode_parts, meta, eigen_k, self.cfg.fused);
        let mut st = SolverState::new(
            observed,
            truncated,
            &self.cfg,
            init,
            ResidualStore::Blocked { blocks },
            boundaries,
        )?;
        let resume_point = restored.map(|(y_mul, eta, rp)| {
            st.y_mul = y_mul;
            st.eta = eta;
            rp
        });
        let mut sink_store = self.cfg.checkpoint.as_ref().map(|_| ClusterSink {
            cl,
            cfg: &self.cfg,
            shape: &shape,
            nnz: observed.nnz(),
            positions: positions.expect("a checkpoint policy implies positions"),
            latest: None,
        });
        let out = {
            let sink: Option<&mut dyn solver::CheckpointSink> = match sink_store.as_mut() {
                Some(s) => Some(s),
                None => None,
            };
            solver::run_resumable(
                observed,
                truncated,
                &self.cfg,
                &mut backend,
                st,
                residual_fresh,
                resume_point,
                sink,
            )
        };
        // Harvest the newest snapshot even from a dead attempt: the
        // simulated reliable store outlives the machines.
        if let Some(s) = sink_store {
            if let Some(latest) = s.latest {
                *image = Some(latest);
            }
        }
        let (result, _) = out?;
        drop(reservation);
        Ok(result)
    }

    // ---- One-off setup accounting ---------------------------------------

    /// A stage whose work is an even split of `records` across machines.
    fn stage_over_even_split(
        &self,
        records: usize,
        flops_per_record: f64,
        bytes_per_record: u64,
    ) -> Result<()> {
        let m = self.cluster.machines();
        let per = records.div_ceil(m);
        let tasks: Vec<TaskCost> = (0..m)
            .map(|mach| TaskCost {
                machine: mach,
                flops: per as f64 * flops_per_record,
                input_bytes: per as u64 * bytes_per_record,
                output_bytes: 0,
            })
            .collect();
        self.cluster.run_stage(&tasks)?;
        Ok(())
    }

    /// The initial all-to-all that moves every entry to its block's home.
    fn charge_partition_shuffle(&self, blocking: &TensorBlocks, entry_bytes: u64) -> Result<()> {
        let cl = self.cluster;
        let m = cl.machines();
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        for (i, (_, t)) in blocking.blocks.iter().enumerate() {
            let dst = cl.machine_for_partition(i);
            let bytes = t.nnz() as u64 * entry_bytes;
            // Entries start evenly spread; (m−1)/m of them are remote.
            let remote = bytes * (m as u64 - 1) / m as u64;
            received[dst] += remote;
            sent[dst % m] += 0; // placeholder to keep vec sizes aligned
            // Spread the sends evenly over sources (approximation of a
            // random initial layout).
            for (s, slot) in sent.iter_mut().enumerate() {
                if s != dst {
                    *slot += remote / (m as u64 - 1).max(1);
                }
            }
        }
        // Fix rounding so conservation holds.
        let total_recv: u64 = received.iter().sum();
        let total_sent: u64 = sent.iter().sum();
        if total_sent < total_recv {
            sent[0] += total_recv - total_sent;
        } else {
            received[0] += total_sent - total_recv;
        }
        cl.shuffle(&sent, &received)?;
        Ok(())
    }

    /// Charge the one-off truncated eigendecompositions (`O(K·I)` per the
    /// paper's §III-B claim). The decomposition itself is computed
    /// driver-side before the attempt loop (it never changes), so a
    /// recovery attempt skips both the work and this charge.
    fn charge_truncation(&self, shape: &[usize], laplacians: &[Option<&Laplacian>]) -> Result<()> {
        for (n, lap) in laplacians.iter().enumerate() {
            if lap.is_some() {
                let flops = (self.cfg.eigen_k * shape[n]) as f64 * 8.0;
                self.cluster.charge_driver_flops(flops)?;
            }
        }
        Ok(())
    }
}

/// The distributed [`solver::CheckpointSink`]: snapshots are serialized
/// to the driver's simulated reliable store (a byte image surviving
/// machine loss) and the collect of the snapshot — every machine shipping
/// its share of the factors, duals, and residual to the driver — is
/// charged to the cluster, so checkpoint cadence shows up honestly in the
/// virtual metrics.
struct ClusterSink<'a> {
    cl: &'a Cluster,
    cfg: &'a AdmmConfig,
    shape: &'a [usize],
    nnz: usize,
    /// Per-block maps from block entry order to the canonical observed
    /// entry order the checkpoint format stores the residual in.
    positions: &'a [Vec<usize>],
    /// The most recent snapshot image ("reliable store" contents).
    latest: Option<Vec<u8>>,
}

impl solver::CheckpointSink for ClusterSink<'_> {
    fn save(
        &mut self,
        st: &SolverState,
        iters_done: usize,
        trace: &ConvergenceTrace,
    ) -> Result<()> {
        let ResidualStore::Blocked { blocks } = &st.residual else {
            return Err(CoreError::Invalid(
                "cluster checkpoint sink requires the blocked residual layout".into(),
            ));
        };
        // Gather the blocked residual back into canonical entry order —
        // the layout-independent form both drivers' restores understand.
        let mut residual = vec![0.0; self.nnz];
        for (b, pos) in blocks.iter().zip(self.positions) {
            for (&v, &at) in b.vals.iter().zip(pos) {
                residual[at] = v;
            }
        }
        let ckpt = Checkpoint {
            config: self.cfg.clone(),
            shape: self.shape.to_vec(),
            iters_done,
            eta: st.eta,
            factors: st.model.factors().to_vec(),
            y_mul: st.y_mul.clone(),
            residual,
            trace: trace.clone(),
        };
        let bytes = ckpt.to_bytes();
        // Collect: each machine ships an even share of the snapshot.
        let m = self.cl.machines();
        let per = (bytes.len() as u64).div_ceil(m as u64);
        self.cl.collect_charge(&vec![per; m])?;
        self.latest = Some(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admm::AdmmSolver;
    use distenc_dataflow::{ClusterConfig, DataflowError};
    use distenc_graph::builders::tridiagonal_chain;
    use distenc_tensor::KruskalTensor;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        truth.eval_at(&mask).unwrap()
    }

    fn test_cluster(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::test(machines).with_time_budget(None))
    }

    #[test]
    fn matches_serial_oracle() {
        let observed = planted(&[15, 12, 10], 2, 500, 3);
        let cfg = AdmmConfig { rank: 2, max_iters: 12, tol: 1e-12, ..Default::default() };
        let serial = AdmmSolver::new(cfg.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let cluster = test_cluster(3);
        let dist = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        assert_eq!(serial.iterations, dist.iterations);
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(
                a.frob_dist(b).unwrap() < 1e-8,
                "distributed factors must match the serial oracle"
            );
        }
        let (s_rmse, d_rmse) = (
            serial.trace.final_rmse().unwrap(),
            dist.trace.final_rmse().unwrap(),
        );
        assert!((s_rmse - d_rmse).abs() < 1e-10);
    }

    #[test]
    fn matches_serial_with_auxiliary_info() {
        let observed = planted(&[20, 16, 12], 2, 600, 7);
        let laps: Vec<Laplacian> = [20, 16, 12]
            .iter()
            .map(|&d| Laplacian::from_similarity(tridiagonal_chain(d)))
            .collect();
        let lap_refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
        let cfg = AdmmConfig {
            rank: 2,
            max_iters: 10,
            tol: 1e-12,
            alpha: 2.0,
            eigen_k: 8,
            ..Default::default()
        };
        let serial = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &lap_refs).unwrap();
        let cluster = test_cluster(4);
        let dist = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &lap_refs).unwrap();
        for (a, b) in serial.model.factors().iter().zip(dist.model.factors()) {
            assert!(a.frob_dist(b).unwrap() < 1e-8);
        }
    }

    #[test]
    fn accounts_shuffle_and_stages() {
        let observed = planted(&[20, 20, 20], 2, 800, 5);
        let cluster = test_cluster(4);
        let cfg = AdmmConfig { rank: 2, max_iters: 3, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        let m = cluster.metrics();
        assert!(m.stages > 10, "stages = {}", m.stages);
        assert!(m.shuffled_bytes > 0);
        assert!(m.broadcast_bytes > 0);
        assert!(m.virtual_seconds > 0.0);
        assert!(m.peak_resident > 0);
    }

    #[test]
    fn memory_released_after_solve() {
        let observed = planted(&[15, 15, 15], 2, 300, 11);
        let cluster = test_cluster(2);
        let cfg = AdmmConfig { rank: 2, max_iters: 2, tol: 1e-12, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        // All resident memory released: a full-capacity reserve succeeds.
        let cap = cluster.config().mem_per_machine;
        assert!(cluster.reserve(0, cap).is_ok());
    }

    #[test]
    fn oom_surfaces_on_tiny_cluster() {
        let observed = planted(&[30, 30, 30], 4, 3000, 13);
        let cfg_small = ClusterConfig::test(2).with_memory(16 * 1024).with_time_budget(None);
        let cluster = Cluster::new(cfg_small);
        let cfg = AdmmConfig { rank: 4, max_iters: 2, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        match err {
            crate::CoreError::Dataflow(DataflowError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn out_of_time_surfaces() {
        let observed = planted(&[20, 20, 20], 2, 500, 17);
        let cluster = Cluster::new(ClusterConfig::test(2).with_time_budget(Some(0.2)));
        let cfg = AdmmConfig { rank: 2, max_iters: 50, tol: 1e-15, ..Default::default() };
        let err = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::Dataflow(DataflowError::OutOfTime { .. })
        ));
    }

    #[test]
    fn more_machines_less_virtual_time() {
        // Enough iterations that the per-iteration compute dwarfs the
        // one-time partition shuffle; latency zeroed so the signal is the
        // distributed work itself.
        let observed = planted(&[40, 40, 40], 4, 8000, 19);
        let cfg = AdmmConfig { rank: 4, max_iters: 20, tol: 1e-12, ..Default::default() };
        let mut times = Vec::new();
        for m in [1usize, 4] {
            let mut cc = ClusterConfig::test(m).with_time_budget(None);
            cc.cost.stage_latency = 0.0;
            let cluster = Cluster::new(cc);
            let _ = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            times.push(cluster.now());
        }
        assert!(
            times[1] < times[0],
            "4 machines ({}s) must beat 1 machine ({}s)",
            times[1],
            times[0]
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let observed = planted(&[12, 12, 12], 2, 400, 23);
        let cfg = AdmmConfig { rank: 2, max_iters: 5, tol: 1e-12, ..Default::default() };
        let run = || {
            let cluster = test_cluster(3);
            let r = DisTenC::new(&cluster, cfg.clone())
                .unwrap()
                .solve(&observed, &[None, None, None])
                .unwrap();
            (r.trace.final_rmse().unwrap(), cluster.metrics().shuffled_bytes)
        };
        assert_eq!(run(), run());
    }
}
