//! Serial ADMM reference solver (Algorithm 1 with the §III updates).
//!
//! This is the single-machine ground truth that the distributed
//! [`crate::DisTenC`] must reproduce. All three of the paper's
//! efficiency ideas are already applied here, because they are exact
//! reformulations, not approximations (modulo Laplacian truncation):
//!
//! 1. `B⁽ⁿ⁾`-update through the precomputed truncated eigendecomposition
//!    (Eq. 7),
//! 2. `U⁽ⁿ⁾ᵀU⁽ⁿ⁾` as a Hadamard product of cached Gram matrices (Eq. 12),
//! 3. the MTTKRP against the *completed* tensor via the sparse residual
//!    (Eq. 16).
//!
//! Within an iteration every mode update reads the factors from the
//! iteration's start (`A⁽ⁿ⁾ₜ` on every right-hand side, exactly as
//! Algorithm 3 lines 8–12 are written). This Jacobi ordering is what makes
//! the mode updates independent — and therefore distributable.

use crate::config::{AdmmConfig, SolverTier};
use crate::solver::checkpoint::Checkpoint;
use crate::solver::{self, HostBackend, ResidualStore, SketchedBackend, SolverState};
use crate::trace::{ConvergenceTrace, TracePoint};
use crate::{CompletionResult, CoreError, Result};
use distenc_dataflow::Executor;
use distenc_graph::{Laplacian, TruncatedLaplacian};
use distenc_tensor::{CooTensor, KruskalTensor, LayoutAccel, TensorLayout};
use std::path::PathBuf;
use std::time::Instant;

/// The serial Algorithm 1 solver.
#[derive(Debug, Clone)]
pub struct AdmmSolver {
    cfg: AdmmConfig,
}

impl AdmmSolver {
    /// Create a solver, validating the configuration.
    pub fn new(cfg: AdmmConfig) -> Result<Self> {
        cfg.validate().map_err(CoreError::Invalid)?;
        Ok(AdmmSolver { cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Run tensor completion on `observed` (the `Ω∗X = T` constraint data)
    /// with optional per-mode auxiliary Laplacians.
    ///
    /// `laplacians[n] = None` means mode `n` has no side information (its
    /// trace term vanishes; the `B`-update degenerates to `(ηA−Y)/η`).
    pub fn solve(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
    ) -> Result<CompletionResult> {
        validate_problem(observed, laplacians, &self.cfg)?;
        let truncated = truncate_all(observed.shape(), laplacians, &self.cfg)?;
        let start = Instant::now();
        solve_with(observed, &truncated, &self.cfg, None, |_iter| {
            start.elapsed().as_secs_f64()
        })
    }

    /// Warm-started completion: continue from an existing model instead of
    /// a random initialization — the online scenario where new
    /// observations arrive and the previous factors are a good starting
    /// point. The ADMM state (`B`, `Y`, `η`) restarts, only the factors
    /// carry over.
    pub fn solve_from(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        init: &KruskalTensor,
    ) -> Result<CompletionResult> {
        validate_problem(observed, laplacians, &self.cfg)?;
        if init.shape() != observed.shape() || init.rank() != self.cfg.rank {
            return Err(CoreError::Invalid(format!(
                "warm-start model (shape {:?}, rank {}) does not match problem                  (shape {:?}, rank {})",
                init.shape(),
                init.rank(),
                observed.shape(),
                self.cfg.rank
            )));
        }
        let truncated = truncate_all(observed.shape(), laplacians, &self.cfg)?;
        let start = Instant::now();
        solve_with(observed, &truncated, &self.cfg, Some(init.clone()), |_iter| {
            start.elapsed().as_secs_f64()
        })
    }

    /// Streaming completion step: a solve that accepts — and returns — a
    /// [`ResidualHandoff`] so consecutive re-solves over a drifting
    /// observation set never rebuild the residual from scratch.
    ///
    /// * `init = None` is a cold solve, identical to [`AdmmSolver::solve`]
    ///   (bit-for-bit), that additionally hands the final residual out.
    /// * `init = Some` with `carry = None` is [`AdmmSolver::solve_from`]:
    ///   warm factors, residual rebuilt by the prologue.
    /// * `init = Some` with `carry = Some` is the fully warm path: the
    ///   carried residual values must be exactly `Ω∗(T − [[init…]])` on
    ///   `observed`'s support (the invariant the streaming delta apply
    ///   maintains), and the prologue refresh is skipped — the solve
    ///   starts in `O(1)` residual work instead of `O(nnz·N·R)`. The
    ///   result is bit-identical to `solve_from` on the same inputs.
    ///
    /// The ADMM auxiliaries restart either way (`Y = 0`, `η = η₀`; `B`'s
    /// carried value is irrelevant because every mode step recomputes it
    /// from `ηA − Y` before any read), so warm state is exactly: factors
    /// plus residual.
    pub fn solve_streamed(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        init: Option<&KruskalTensor>,
        carry: Option<ResidualHandoff>,
    ) -> Result<(CompletionResult, ResidualHandoff)> {
        validate_problem(observed, laplacians, &self.cfg)?;
        if let Some(m) = init {
            if m.shape() != observed.shape() || m.rank() != self.cfg.rank {
                return Err(CoreError::Invalid(format!(
                    "warm-start model (shape {:?}, rank {}) does not match problem (shape {:?}, rank {})",
                    m.shape(),
                    m.rank(),
                    observed.shape(),
                    self.cfg.rank
                )));
            }
        }
        if let Some(c) = &carry {
            if init.is_none() {
                return Err(CoreError::Invalid(
                    "a residual hand-off requires the warm-start model it was computed against"
                        .into(),
                ));
            }
            if c.e.shape() != observed.shape() || c.e.nnz() != observed.nnz() {
                return Err(CoreError::Invalid(format!(
                    "carried residual (shape {:?}, nnz {}) does not share the observed support (shape {:?}, nnz {})",
                    c.e.shape(),
                    c.e.nnz(),
                    observed.shape(),
                    observed.nnz()
                )));
            }
            if (0..observed.nnz()).any(|i| c.e.index(i) != observed.index(i)) {
                return Err(CoreError::Invalid(
                    "carried residual support diverges from the observed tensor".into(),
                ));
            }
        }
        let truncated = truncate_all(observed.shape(), laplacians, &self.cfg)?;
        let start = Instant::now();
        solve_with_handoff(observed, &truncated, &self.cfg, init.cloned(), carry, |_iter| {
            start.elapsed().as_secs_f64()
        })
    }

    /// Continue an interrupted solve from a [`Checkpoint`] (typically read
    /// back with [`Checkpoint::read_file`]).
    ///
    /// The iteration-determining numerics (rank, λ, α, η schedule, seed,
    /// tolerance, …) come from the *checkpoint* — they are what the
    /// interrupted run was solving — while the environment-dependent
    /// settings come from *this* solver: its execution mode and its
    /// checkpoint policy (so a resumed run keeps snapshotting if asked
    /// to). The solver tier is pinned to [`SolverTier::Exact`]:
    /// checkpoints are exact-tier artifacts.
    ///
    /// **Bit-exact recovery invariant**: resuming from a checkpoint of
    /// iteration `k` produces exactly — bit for bit — the factors, RMSE,
    /// and trace the uninterrupted run would have produced, at
    /// `DISTENC_THREADS=1` and in threaded mode alike
    /// (`tests/fault_recovery.rs` pins this). A checkpoint whose
    /// `iters_done` already reached `max_iters` returns the stored state
    /// without iterating.
    ///
    /// `observed` and `laplacians` must be the same problem the
    /// interrupted run was solving: shape, observed support size, and
    /// Laplacian dimensions are validated, and the checkpointed residual
    /// is trusted to be `Ω∗(T − [[A…]])` on that support (the format's
    /// checksum guards transport corruption; it cannot detect a swapped
    /// input tensor).
    pub fn resume(
        &self,
        observed: &CooTensor,
        laplacians: &[Option<&Laplacian>],
        ckpt: &Checkpoint,
    ) -> Result<CompletionResult> {
        let cfg = AdmmConfig {
            exec: self.cfg.exec,
            checkpoint: self.cfg.checkpoint.clone(),
            // Like `exec`, the layout override is an environment knob of
            // *this* invocation (the checkpoint stores `use_csf`, so a
            // legacy-selected CSF run resumes onto CSF by default).
            layout: self.cfg.layout,
            ..ckpt.config.clone()
        };
        cfg.validate().map_err(CoreError::Invalid)?;
        validate_problem(observed, laplacians, &cfg)?;
        if ckpt.shape != observed.shape() {
            return Err(CoreError::Invalid(format!(
                "checkpoint shape {:?} does not match observed tensor shape {:?}",
                ckpt.shape,
                observed.shape()
            )));
        }
        if ckpt.residual.len() != observed.nnz() {
            return Err(CoreError::Invalid(format!(
                "checkpoint residual has {} entries, observed support has {}",
                ckpt.residual.len(),
                observed.nnz()
            )));
        }
        let truncated = truncate_all(observed.shape(), laplacians, &cfg)?;
        // The checkpointed residual values are fresh for the checkpointed
        // factors (snapshots are taken right after the iteration's
        // residual refresh), so they re-enter the solve through the same
        // hand-off machinery the streaming path uses: prologue skipped,
        // bit-invisibly.
        let mut e = observed.clone();
        e.values_mut().copy_from_slice(&ckpt.residual);
        let carry = ResidualHandoff { e, accel: LayoutAccel::default() };
        let init = KruskalTensor::new(ckpt.factors.clone())?;
        let start = Instant::now();
        solve_exact(
            observed,
            &truncated,
            &cfg,
            Some(init),
            Some(carry),
            Some(ckpt),
            |_iter| start.elapsed().as_secs_f64(),
        )
        .map(|(r, _)| r)
    }
}

/// Host-side [`solver::CheckpointSink`]: serializes each snapshot into
/// the versioned on-disk format at the configured path. Writes are
/// atomic (temp-file-then-rename), so an interrupted save never
/// corrupts the previously persisted snapshot.
struct FileSink<'a> {
    cfg: &'a AdmmConfig,
    shape: Vec<usize>,
    path: PathBuf,
}

impl solver::CheckpointSink for FileSink<'_> {
    fn save(
        &mut self,
        st: &SolverState,
        iters_done: usize,
        trace: &ConvergenceTrace,
    ) -> Result<()> {
        let layout = st.residual.host()?;
        let ckpt = Checkpoint {
            config: self.cfg.clone(),
            shape: self.shape.clone(),
            iters_done,
            eta: st.eta,
            factors: st.model.factors().to_vec(),
            y_mul: st.y_mul.clone(),
            residual: layout.values().to_vec(),
            trace: trace.clone(),
        };
        ckpt.write_file(&self.path)?;
        Ok(())
    }
}

/// Fresh residual state handed between consecutive streaming solves.
///
/// Invariant: `e`'s values are exactly `Ω∗(T − [[model…]])` for the model
/// returned alongside it — [`solver::run`] leaves them that way (the last
/// iteration's residual refresh runs *after* the final factor swap), and
/// the streaming delta apply keeps them that way when the observation set
/// changes. `accel` carries the layout's acceleration structure (CSF
/// fiber trees, tiled entry orders); its *structure* is reusable as long
/// as the support is unchanged (values are re-scattered at the next
/// solve), and the streaming layer clears it on structural deltas so the
/// next solve rebuilds.
#[derive(Debug, Clone)]
pub struct ResidualHandoff {
    /// Residual values on the observed support, in entry order.
    pub e: CooTensor,
    /// Layout acceleration structure of the solve that produced `e`
    /// (empty for the plain COO layout).
    pub accel: LayoutAccel,
}

/// Shared problem validation (also used by the distributed solver).
pub(crate) fn validate_problem(
    observed: &CooTensor,
    laplacians: &[Option<&Laplacian>],
    cfg: &AdmmConfig,
) -> Result<()> {
    if laplacians.len() != observed.order() {
        return Err(CoreError::Invalid(format!(
            "{} Laplacians for an order-{} tensor",
            laplacians.len(),
            observed.order()
        )));
    }
    for (n, lap) in laplacians.iter().enumerate() {
        if let Some(l) = lap {
            if l.dim() != observed.shape()[n] {
                return Err(CoreError::Invalid(format!(
                    "Laplacian for mode {n} has dimension {}, mode has length {}",
                    l.dim(),
                    observed.shape()[n]
                )));
            }
        }
    }
    if observed.nnz() == 0 {
        return Err(CoreError::Invalid("observed tensor has no entries".into()));
    }
    let _ = cfg;
    Ok(())
}

/// Truncate every provided Laplacian once, up front (§III-B: the
/// eigendecomposition is precomputed because `L` never changes).
pub(crate) fn truncate_all(
    shape: &[usize],
    laplacians: &[Option<&Laplacian>],
    cfg: &AdmmConfig,
) -> Result<Vec<TruncatedLaplacian>> {
    shape
        .iter()
        .zip(laplacians)
        .map(|(&dim, lap)| match lap {
            Some(l) => Ok(l.truncate(cfg.eigen_k, cfg.seed)?),
            None => Ok(TruncatedLaplacian::zero(dim)),
        })
        .collect()
}

/// The host driver: build the single-machine backend and state, then run
/// the shared core ([`solver::run`]). The `clock` closure stamps each
/// trace point (wall time here, virtual cluster time for the distributed
/// driver).
pub(crate) fn solve_with(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    initial: Option<KruskalTensor>,
    clock: impl Fn(usize) -> f64,
) -> Result<CompletionResult> {
    solve_with_handoff(observed, truncated, cfg, initial, None, clock).map(|(r, _)| r)
}

/// The host driver with residual hand-off: the full streaming-aware
/// path, dispatching on [`AdmmConfig::solver_tier`].
///
/// * [`SolverTier::Exact`] runs the bit-pinned single-phase solve.
/// * [`SolverTier::Sketched`] runs the two-phase schedule
///   ([`solve_sketched`]) — unless a documented fallback applies:
///   `samples ≥ nnz` (a sample that large can't beat a full sweep; the
///   exact path is also what makes the degenerate config bit-identical
///   to `Exact`, which `tests/sketched_equivalence.rs` pins) or
///   `polish_iters ≥ max_iters` (no sketch-phase budget left).
pub(crate) fn solve_with_handoff(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    initial: Option<KruskalTensor>,
    carry: Option<ResidualHandoff>,
    clock: impl Fn(usize) -> f64,
) -> Result<(CompletionResult, ResidualHandoff)> {
    if let SolverTier::Sketched { samples, polish_iters } = cfg.solver_tier {
        let sketch_iters = cfg.max_iters.saturating_sub(polish_iters);
        if samples < observed.nnz() && sketch_iters > 0 {
            return solve_sketched(
                observed, truncated, cfg, initial, carry, samples, sketch_iters, clock,
            );
        }
    }
    solve_exact(observed, truncated, cfg, initial, carry, None, clock)
}

/// Shared host-side setup: the executor, the Algorithm 2 greedy MTTKRP
/// boundaries, and the residual store (carried or rebuilt) with its
/// optional CSF trees. Used by both the exact path and the sketch phase
/// so a tier switch never changes how the problem is laid out.
///
/// The per-mode boundaries are computed once — the support never changes
/// *within* a solve — and any blocking is bit-exact, so sizing them to
/// the worker count is free. `parallelism()` (not `threads()`) clamps
/// the chunk count to the cores actually available, so a
/// `DISTENC_THREADS` setting above the machine's core count does not
/// oversplit the kernels.
///
/// The residual shares the observed support. Cold: its values start
/// stale (they still hold `T`'s) and the solver refreshes them before
/// anything reads them. Warm: the carried values are already fresh for
/// the warm-start model and the prologue is skipped. The carried layout
/// acceleration structure (CSF trees, tiled orders) is reused when it
/// still matches the support; otherwise the layout rebuilds it.
fn build_host_layout(
    observed: &CooTensor,
    cfg: &AdmmConfig,
    carry: Option<ResidualHandoff>,
) -> Result<(Executor, Vec<Vec<usize>>, ResidualStore, bool)> {
    let n_modes = observed.order();
    let exec = Executor::new(cfg.exec);
    let boundaries: Vec<Vec<usize>> = (0..n_modes)
        .map(|n| {
            distenc_partition::greedy_boundaries(&observed.slice_nnz(n), exec.parallelism())
        })
        .collect();

    let kind = cfg.resolved_layout().map_err(CoreError::Invalid)?;
    let residual_fresh = carry.is_some();
    let (e, accel) = match carry {
        Some(c) => (c.e, c.accel),
        None => (observed.clone(), LayoutAccel::default()),
    };
    let layout = TensorLayout::build_with(e, kind, accel)?;
    Ok((exec, boundaries, ResidualStore::Host(layout), residual_fresh))
}

/// The single-phase exact host solve (the pre-tier behavior,
/// bit-for-bit when no checkpointing or resumption is in play).
///
/// `resume` continues at the checkpoint's iteration cursor: the caller
/// already routed the checkpointed factors through `initial` and the
/// checkpointed residual through `carry`; this function restores the
/// remaining ADMM state (duals `Y`, penalty `η`) and the trace. A
/// [`FileSink`] is attached when the config asks for on-disk
/// checkpointing ([`crate::CheckpointPolicy::with_path`]); a policy
/// without a path is the distributed driver's concern and is a no-op
/// here.
fn solve_exact(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    initial: Option<KruskalTensor>,
    carry: Option<ResidualHandoff>,
    resume: Option<&Checkpoint>,
    clock: impl Fn(usize) -> f64,
) -> Result<(CompletionResult, ResidualHandoff)> {
    let (exec, boundaries, store, residual_fresh) = build_host_layout(observed, cfg, carry)?;
    let mut backend =
        HostBackend::new(store.host()?, &boundaries, cfg.rank, exec, cfg.fused, clock)?;
    let mut st = SolverState::new(observed, truncated, cfg, initial, store, boundaries)?;
    let resume_point = resume.map(|ck| {
        st.y_mul = ck.y_mul.clone();
        st.eta = ck.eta;
        solver::ResumePoint { start_iter: ck.iters_done, trace: ck.trace.clone() }
    });
    let mut file_sink = cfg
        .checkpoint
        .as_ref()
        .and_then(|policy| policy.path.as_ref())
        .map(|path| FileSink { cfg, shape: observed.shape().to_vec(), path: path.clone() });
    let sink: Option<&mut dyn solver::CheckpointSink> = match file_sink.as_mut() {
        Some(s) => Some(s),
        None => None,
    };
    let (result, residual) = solver::run_resumable(
        observed,
        truncated,
        cfg,
        &mut backend,
        st,
        residual_fresh,
        resume_point,
        sink,
    )?;
    let (e, accel) = residual.into_host()?.into_parts();
    Ok((result, ResidualHandoff { e, accel }))
}

/// The two-phase sketched solve: `sketch_iters` sampled iterations on
/// the [`SketchedBackend`], then the remaining `max_iters − sketch_iters`
/// exact polish iterations on the [`HostBackend`], warm-started through
/// the same [`ResidualHandoff`] machinery the streaming path uses.
///
/// The hand-off between the phases is free: the sketch phase's final
/// `fused_step` performs a full exact residual refresh (the
/// [`ResidualHandoff`] invariant), so the polish phase skips its
/// prologue rebuild and starts directly on fresh values. Both phases
/// stamp trace points through the same `clock` closure, so `seconds` is
/// cumulative across the whole solve; the polish phase's trace points
/// are renumbered to continue the sketch phase's iteration count. Trace
/// `train_rmse` during the sketch phase is the *sampled estimate* of the
/// true RMSE (unbiased in the squared norm); the polish phase's points —
/// including the final one — are exact.
#[allow(clippy::too_many_arguments)]
fn solve_sketched(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    initial: Option<KruskalTensor>,
    carry: Option<ResidualHandoff>,
    samples: usize,
    sketch_iters: usize,
    clock: impl Fn(usize) -> f64,
) -> Result<(CompletionResult, ResidualHandoff)> {
    // Phase A: sampled iterations. The config keeps every solver knob
    // except the iteration budget; the sketched backend ignores the
    // `fused` ablation flag (its fused sampled sweep *is* the schedule —
    // there is no unfused sampled path to ablate against). Checkpointing
    // is stripped from both phases: checkpoints are exact-tier artifacts
    // (a sketch-phase snapshot would resume into a different sampling
    // stream, and a polish-phase snapshot would store a phase-local
    // iteration cursor that lies about the whole solve).
    let cfg_a = AdmmConfig { max_iters: sketch_iters, checkpoint: None, ..cfg.clone() };
    let (exec, boundaries, store, residual_fresh) = build_host_layout(observed, &cfg_a, carry)?;
    let mut backend_a =
        SketchedBackend::new(observed, samples, cfg.rank, exec, cfg.seed, &clock)?;
    let st = SolverState::new(observed, truncated, &cfg_a, initial, store, boundaries)?;
    let (res_a, residual) =
        solver::run(observed, truncated, &cfg_a, &mut backend_a, st, residual_fresh)?;
    let (e, accel) = residual.into_host()?.into_parts();
    let handoff = ResidualHandoff { e, accel };

    // Phase B: exact polish, warm-started from the sketch phase's model
    // and (fresh) residual. `polish_iters = 0` is legal: the fallback in
    // `solve_with_handoff` only guards the sketch budget, so a zero
    // polish config returns the sketch phase's result directly.
    let polish_iters = cfg.max_iters - sketch_iters;
    let cfg_b = AdmmConfig {
        max_iters: polish_iters,
        solver_tier: SolverTier::Exact,
        checkpoint: None,
        ..cfg.clone()
    };
    let (res_b, handoff) = solve_exact(
        observed,
        truncated,
        &cfg_b,
        Some(res_a.model),
        Some(handoff),
        None,
        &clock,
    )?;

    // Merge the phases into one result: polish trace points continue the
    // sketch phase's iteration numbering, iteration counts add, and the
    // convergence flag is the polish phase's (the sketch phase's flag
    // only matters when there is no polish to run).
    let offset = res_a.iterations;
    let mut trace = res_a.trace;
    trace.points.reserve(res_b.trace.points.len());
    for p in res_b.trace.points {
        trace.push(TracePoint { iter: offset + p.iter, ..p });
    }
    let converged = if res_b.iterations > 0 { res_b.converged } else { res_a.converged };
    let result = CompletionResult {
        model: res_b.model,
        trace,
        iterations: offset + res_b.iterations,
        converged,
    };
    Ok((result, handoff))
}


#[cfg(test)]
mod tests {
    use super::*;
    use distenc_graph::builders::tridiagonal_chain;
    use distenc_linalg::Mat;
    use distenc_tensor::split::split_missing;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Planted low-rank data: sample a mask, evaluate a ground-truth CP
    /// model on it.
    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> (CooTensor, KruskalTensor) {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        let observed = truth.eval_at(&mask).unwrap();
        (observed, truth)
    }

    #[test]
    fn recovers_planted_low_rank_data() {
        let shape = [12, 10, 8];
        let (observed, _) = planted(&shape, 3, 700, 2);
        let cfg = AdmmConfig {
            rank: 3,
            lambda: 1e-3,
            max_iters: 120,
            tol: 1e-7,
            ..Default::default()
        };
        let solver = AdmmSolver::new(cfg).unwrap();
        let res = solver.solve(&observed, &[None, None, None]).unwrap();
        let rmse = res.trace.final_rmse().unwrap();
        assert!(rmse < 0.02, "train RMSE {rmse} too high");
    }

    #[test]
    fn generalizes_to_held_out_entries() {
        let shape = [12, 10, 8];
        let (observed, _truth) = planted(&shape, 2, 900, 3);
        let split = split_missing(&observed, 0.3, 5);
        let cfg = AdmmConfig {
            rank: 2,
            lambda: 1e-3,
            max_iters: 150,
            tol: 1e-8,
            ..Default::default()
        };
        let res = AdmmSolver::new(cfg)
            .unwrap()
            .solve(&split.train, &[None, None, None])
            .unwrap();
        let test_rmse =
            distenc_tensor::residual::observed_rmse(&split.test, &res.model).unwrap();
        // Mean |value| of products of 3 uniforms is 1/8; RMSE ≪ that means
        // real signal was recovered.
        assert!(test_rmse < 0.1, "test RMSE {test_rmse}");
    }

    #[test]
    fn auxiliary_information_helps_on_smooth_factors() {
        // The paper's §IV-A construction: factor rows vary linearly with
        // the index, so consecutive rows are similar and the chain
        // similarity (Eq. 17) is informative.
        let (i1, i2, i3, r) = (30, 30, 30, 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut factors = Vec::new();
        for &dim in &[i1, i2, i3] {
            let mut m = Mat::zeros(dim, r);
            for rr in 0..r {
                let slope: f64 = rng.random::<f64>() * 0.1;
                let inter: f64 = rng.random::<f64>();
                for i in 0..dim {
                    m.set(i, rr, i as f64 * slope + inter);
                }
            }
            factors.push(m);
        }
        let truth = KruskalTensor::new(factors).unwrap();
        let mut mask = CooTensor::new(vec![i1, i2, i3]);
        for _ in 0..800 {
            let idx = [
                rng.random_range(0..i1),
                rng.random_range(0..i2),
                rng.random_range(0..i3),
            ];
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        let observed = truth.eval_at(&mask).unwrap();
        let split = split_missing(&observed, 0.7, 2); // 70% missing: hard
        let laps: Vec<Laplacian> = (0..3)
            .map(|_| Laplacian::from_similarity(tridiagonal_chain(30)))
            .collect();

        let cfg = AdmmConfig {
            rank: r,
            lambda: 1e-2,
            max_iters: 80,
            tol: 1e-8,
            eigen_k: 15,
            ..Default::default()
        };
        let with_aux = AdmmSolver::new(cfg.clone().with_alpha(5.0))
            .unwrap()
            .solve(&split.train, &[Some(&laps[0]), Some(&laps[1]), Some(&laps[2])])
            .unwrap();
        let without_aux = AdmmSolver::new(cfg.with_alpha(0.0))
            .unwrap()
            .solve(&split.train, &[None, None, None])
            .unwrap();

        let rmse_aux =
            distenc_tensor::residual::observed_rmse(&split.test, &with_aux.model).unwrap();
        let rmse_plain =
            distenc_tensor::residual::observed_rmse(&split.test, &without_aux.model).unwrap();
        assert!(
            rmse_aux < rmse_plain,
            "aux RMSE {rmse_aux} should beat plain {rmse_plain} at 70% missing"
        );
    }

    #[test]
    fn converges_and_reports_flag() {
        let (observed, _) = planted(&[8, 8, 8], 2, 400, 9);
        let cfg = AdmmConfig { rank: 2, max_iters: 200, tol: 1e-5, ..Default::default() };
        let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        assert!(res.converged, "should converge within 200 iterations");
        assert!(res.iterations < 200);
        assert_eq!(res.trace.points.len(), res.iterations);
    }

    #[test]
    fn trace_rmse_decreases_overall() {
        let (observed, _) = planted(&[10, 9, 8], 2, 500, 13);
        let cfg = AdmmConfig { rank: 2, max_iters: 40, ..Default::default() };
        let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        let first = res.trace.points.first().unwrap().train_rmse;
        let last = res.trace.final_rmse().unwrap();
        assert!(last < first * 0.5, "RMSE {first} → {last} must at least halve");
        assert!(res.trace.roughly_monotone(0.05));
    }

    #[test]
    fn nonneg_projection_respected() {
        let (observed, _) = planted(&[8, 8, 8], 2, 300, 17);
        let cfg = AdmmConfig { rank: 2, max_iters: 10, nonneg: true, ..Default::default() };
        let res = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        for f in res.model.factors() {
            assert!(f.as_slice().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn rejects_bad_setups() {
        let t = CooTensor::new(vec![4, 4]);
        let solver = AdmmSolver::new(AdmmConfig::default()).unwrap();
        // Empty tensor.
        assert!(solver.solve(&t, &[None, None]).is_err());
        // Wrong Laplacian count.
        let (observed, _) = planted(&[4, 4], 2, 10, 1);
        assert!(solver.solve(&observed, &[None]).is_err());
        // Wrong Laplacian dimension.
        let lap = Laplacian::from_similarity(tridiagonal_chain(7));
        assert!(solver.solve(&observed, &[Some(&lap), None]).is_err());
        // Invalid config.
        assert!(AdmmSolver::new(AdmmConfig { rank: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn warm_start_improves_on_its_initialization() {
        let (observed, _) = planted(&[12, 10, 8], 2, 500, 41);
        let cfg = AdmmConfig { rank: 2, max_iters: 10, tol: 1e-12, ..Default::default() };
        let solver = AdmmSolver::new(cfg).unwrap();
        let first = solver.solve(&observed, &[None, None, None]).unwrap();
        let first_rmse = first.trace.final_rmse().unwrap();
        // Continue from the first run's model: training RMSE keeps going
        // down (or stays), never regresses past the handoff point.
        let second = solver
            .solve_from(&observed, &[None, None, None], &first.model)
            .unwrap();
        let second_rmse = second.trace.final_rmse().unwrap();
        assert!(
            second_rmse <= first_rmse * 1.01,
            "warm start must not regress: {first_rmse} → {second_rmse}"
        );
        // And a warm start must beat a cold run of the same length when
        // the init is good.
        assert!(second_rmse < first.trace.points[0].train_rmse);
    }

    #[test]
    fn warm_start_rejects_mismatched_model() {
        let (observed, _) = planted(&[8, 8, 8], 2, 200, 43);
        let solver =
            AdmmSolver::new(AdmmConfig { rank: 2, ..Default::default() }).unwrap();
        let wrong_rank = KruskalTensor::random(&[8, 8, 8], 5, 1);
        assert!(solver.solve_from(&observed, &[None, None, None], &wrong_rank).is_err());
        let wrong_shape = KruskalTensor::random(&[8, 8, 9], 2, 1);
        assert!(solver.solve_from(&observed, &[None, None, None], &wrong_shape).is_err());
    }

    #[test]
    fn csf_path_matches_coo_path_exactly() {
        // The CSF MTTKRP is an exact reorganization of the COO kernel:
        // only floating-point association differs, so iterates match to
        // rounding.
        let (observed, _) = planted(&[14, 11, 9], 3, 600, 31);
        let base = AdmmConfig { rank: 3, max_iters: 12, tol: 1e-12, ..Default::default() };
        let coo_run = AdmmSolver::new(base.clone())
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let csf_run = AdmmSolver::new(AdmmConfig { use_csf: true, ..base })
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        assert_eq!(coo_run.iterations, csf_run.iterations);
        for (a, b) in coo_run.model.factors().iter().zip(csf_run.model.factors()) {
            assert!(a.frob_dist(b).unwrap() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (observed, _) = planted(&[8, 8, 8], 2, 300, 21);
        let cfg = AdmmConfig { rank: 2, max_iters: 15, ..Default::default() };
        let a = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &[None, None, None]).unwrap();
        let b = AdmmSolver::new(cfg).unwrap().solve(&observed, &[None, None, None]).unwrap();
        assert_eq!(a.trace.final_rmse(), b.trace.final_rmse());
    }
}
