//! The distributed [`StepBackend`]: block-local kernels plus the stage,
//! shuffle, and broadcast accounting of Algorithm 3 on a simulated
//! [`Cluster`].
//!
//! Numerically this backend runs the same [`super::mode_step`] arithmetic
//! as the host; what it adds is (a) the block/partition decomposition of
//! the three data-dependent kernels and (b) cluster charges at exactly
//! the points the pre-refactor `DisTenC::solve` charged them — the
//! charge *order* is load-bearing, because every charge advances the
//! virtual clock and the golden distenc trace pins the resulting
//! timestamps bit-for-bit.
//!
//! The accounting vectors built per stage (`TaskCost` lists, shuffle
//! tallies, per-call reduction slabs) are bookkeeping, not step math, and
//! are the distributed driver's documented exemption from the
//! steady-state allocation budget.

use super::{ResidualStore, StepBackend};
use crate::Result;
use distenc_dataflow::cluster::TaskCost;
use distenc_dataflow::Cluster;
use distenc_linalg::Mat;
use distenc_partition::ModePartition;
use distenc_tensor::KruskalTensor;

const F64: u64 = 8;

/// Placement and activity metadata for one tensor block, parallel to the
/// [`super::ResidualBlock`] vector in the state's residual store.
pub(crate) struct BlockMeta {
    /// Machine this block is pinned to.
    pub machine: usize,
    /// Per-mode partition coordinates of this block.
    pub coords: Vec<usize>,
    /// Distinct mode-`n` indices appearing in this block (per mode) —
    /// determines which factor rows the block needs and how large its
    /// partial-`H` output is.
    pub active: Vec<Vec<usize>>,
}

/// Cluster backend bound to a simulated cluster and a fixed Algorithm 2
/// blocking.
pub(crate) struct ClusterBackend<'c> {
    cl: &'c Cluster,
    rank: usize,
    n_modes: usize,
    mode_parts: Vec<ModePartition>,
    meta: Vec<BlockMeta>,
    /// Per-mode MTTKRP work groups: blocks sharing a mode-`n` partition
    /// coordinate write the same output row range, so they form one work
    /// unit (fixed at construction — the blocking never changes).
    groups: Vec<Vec<Vec<usize>>>,
    /// Per-mode partial-Gram row ranges (the mode partition's ranges).
    gram_ranges: Vec<Vec<std::ops::Range<usize>>>,
    /// `truncated[n].k()` per mode, for the B-update projection charge.
    eigen_k: Vec<usize>,
    /// Fuse the residual refresh with the next mode-0 MTTKRP
    /// ([`crate::AdmmConfig::fused`]).
    fused: bool,
    /// Stashed `E₍₀₎U⁽⁰⁾` (`I₀×R`) banked by the fused sweep. The virtual
    /// clock still pays for mode 0 in full — only the *local* compute is
    /// skipped — so fusion never perturbs the golden timestamps.
    h0: Mat,
    /// Whether `h0` holds a live stash for the upcoming mode-0 call.
    h0_ready: bool,
}

impl<'c> ClusterBackend<'c> {
    /// Bind the backend to `cl` with the given blocking metadata.
    pub fn new(
        cl: &'c Cluster,
        rank: usize,
        mode_parts: Vec<ModePartition>,
        meta: Vec<BlockMeta>,
        eigen_k: Vec<usize>,
        fused: bool,
    ) -> Self {
        let n_modes = mode_parts.len();
        let groups = (0..n_modes)
            .map(|mode| {
                let mut g: Vec<Vec<usize>> = vec![Vec::new(); mode_parts[mode].parts()];
                for (i, b) in meta.iter().enumerate() {
                    g[b.coords[mode]].push(i);
                }
                g
            })
            .collect();
        let gram_ranges: Vec<Vec<std::ops::Range<usize>>> = mode_parts
            .iter()
            .map(|part| (0..part.parts()).map(|p| part.range(p)).collect())
            .collect();
        // The mode-0 ranges cover [0, I₀), so the last end is the row
        // count of the stash.
        let rows0 = mode_parts[0].range(mode_parts[0].parts() - 1).end;
        ClusterBackend {
            cl,
            rank,
            n_modes,
            mode_parts,
            meta,
            groups,
            gram_ranges,
            eigen_k,
            fused,
            h0: Mat::zeros(rows0, rank),
            h0_ready: false,
        }
    }

    // ---- Accounting helpers ---------------------------------------------

    /// A per-row stage over one mode's partitions (updates touching each
    /// factor row once: Y-updates, combines, …).
    fn charge_rows_stage(
        &self,
        part: &ModePartition,
        flops_per_row: f64,
        out_bytes_per_row: u64,
    ) -> Result<()> {
        let cl = self.cl;
        let tasks: Vec<TaskCost> = (0..part.parts())
            .map(|p| {
                let rows = part.range(p).len();
                TaskCost {
                    machine: cl.machine_for_partition(p),
                    flops: rows as f64 * flops_per_row,
                    input_bytes: rows as u64 * self.rank as u64 * F64,
                    output_bytes: rows as u64 * out_bytes_per_row,
                }
            })
            .collect();
        cl.run_stage(&tasks)?;
        Ok(())
    }

    /// Same, across all modes at once (convergence-delta reduction).
    fn charge_rows_stage_all(&self, flops_per_row: f64, out_bytes_per_row: u64) -> Result<()> {
        for part in &self.mode_parts {
            self.charge_rows_stage(part, flops_per_row, out_bytes_per_row)?;
        }
        Ok(())
    }

    /// Gram computation for every mode: per-partition `rows·R²` flops,
    /// `R×R` partials reduced and broadcast (Eqs. 12–13).
    fn charge_gram_stage(&self) -> Result<()> {
        let cl = self.cl;
        let m = cl.machines();
        let rank = self.rank;
        let r2_bytes = (rank * rank) as u64 * F64;
        for part in &self.mode_parts {
            self.charge_rows_stage(part, (rank * rank) as f64, r2_bytes)?;
            // Reduce partials to machine 0, broadcast the result.
            let mut sent = vec![r2_bytes; m];
            sent[0] = 0;
            let mut received = vec![0u64; m];
            received[0] = r2_bytes * (m as u64 - 1);
            cl.shuffle(&sent, &received)?;
            cl.broadcast_charge(r2_bytes)?;
        }
        Ok(())
    }

    /// Fetch the factor rows each block needs for modes it reads. With
    /// `skip_output = Some(n)`, mode `n`'s rows are not inputs (they are
    /// the stage's *output*), matching MTTKRP; with `None` every mode's
    /// rows are fetched (residual update). Rows whose home machine already
    /// hosts the block are free (§III-F keeps joins co-partitioned for
    /// exactly this reason).
    fn charge_factor_fetch(&self, skip_output: Option<usize>) -> Result<()> {
        let cl = self.cl;
        let m = cl.machines();
        // Dedup: machine × mode × partition fetched at most once per stage.
        let mut needed: std::collections::BTreeSet<(usize, usize, usize)> =
            std::collections::BTreeSet::new();
        for b in &self.meta {
            for (k, &pk) in b.coords.iter().enumerate() {
                if Some(k) == skip_output {
                    continue;
                }
                let home = cl.machine_for_partition(pk);
                if home != b.machine {
                    needed.insert((b.machine, k, pk));
                }
            }
        }
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        for &(dst, k, pk) in &needed {
            let rows = self.mode_parts[k].range(pk).len() as u64;
            let bytes = rows * self.rank as u64 * F64;
            sent[cl.machine_for_partition(pk)] += bytes;
            received[dst] += bytes;
        }
        cl.shuffle(&sent, &received)?;
        Ok(())
    }

    /// The residual refresh's per-block stage charge (`nnz·N·R` flops,
    /// entries in, values out) — shared verbatim by the fused and unfused
    /// refresh paths so their virtual-time footprints are identical.
    fn charge_refresh_stage(&self, blocks: &[super::ResidualBlock]) -> Result<()> {
        let mut tasks = Vec::with_capacity(blocks.len());
        for (b, m) in blocks.iter().zip(&self.meta) {
            let nnz = b.entries.nnz();
            tasks.push(TaskCost {
                machine: m.machine,
                flops: (nnz * self.n_modes * self.rank) as f64,
                input_bytes: nnz as u64 * (self.n_modes as u64 + 1) * F64,
                output_bytes: nnz as u64 * F64,
            });
        }
        self.cl.run_stage(&tasks)?;
        Ok(())
    }
}

impl StepBackend for ClusterBackend<'_> {
    /// MTTKRP of the residual against the current factors, computed
    /// block-by-block with per-block accounting, reduced into a full
    /// `Iₙ×R` matrix (partials combine at each factor partition's home).
    fn sparse_mttkrp(
        &mut self,
        residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()> {
        let blocks = residual.blocked()?;
        let cl = self.cl;
        let rank = self.rank;
        // Remote factor rows for every mode except `mode`'s own output —
        // inputs come from all modes k ≠ mode. Charged even when the
        // fused stash answers below: the simulated cluster still moves
        // the rows (the stash is a local-compute shortcut, not a
        // communication one), which keeps the virtual clock identical to
        // the unfused schedule.
        self.charge_factor_fetch(Some(mode))?;

        let shape = model.shape();
        if mode == 0 && self.h0_ready {
            // The fused sweep already computed this against the very same
            // factors (no swap between the refresh and this call).
            self.h0_ready = false;
            out.as_mut_slice().copy_from_slice(self.h0.as_slice());
        } else {
            crate::record_entry_sweep(blocks.iter().map(|b| b.entries.nnz()).sum());
            // Algorithm 2's block boundaries double as the parallel work
            // decomposition: blocks sharing a mode-`mode` partition
            // coordinate write the same output row range, so they form one
            // work unit (processed in ascending block order — the same
            // order the old sequential loop used), while distinct
            // coordinates own disjoint row ranges and run concurrently
            // with no atomics. Bit-identical to a single sequential sweep
            // for every `ExecMode`.
            let part = &self.mode_parts[mode];
            let slabs = cl.executor().run(&self.groups[mode], |p, members| {
                let rows = part.range(p);
                let mut slab = Mat::zeros(rows.len(), rank);
                let mut scratch = vec![0.0; rank];
                for &bi in members {
                    let b = &blocks[bi];
                    for (pos, (idx, _)) in b.entries.iter().enumerate() {
                        let v = b.vals[pos];
                        scratch.iter_mut().for_each(|s| *s = v);
                        for (k, f) in model.factors().iter().enumerate() {
                            if k == mode {
                                continue;
                            }
                            let row = f.row(idx[k]);
                            for (s, &a) in scratch.iter_mut().zip(row) {
                                *s *= a;
                            }
                        }
                        let o = slab.row_mut(idx[mode] - rows.start);
                        for (o, &s) in o.iter_mut().zip(&scratch) {
                            *o += s;
                        }
                    }
                }
                slab
            });
            // Stitch the disjoint row slabs in fixed partition order; the
            // ranges cover every output row, so no pre-zeroing is needed.
            for (p, slab) in slabs.iter().enumerate() {
                let rows = part.range(p);
                out.as_mut_slice()[rows.start * rank..rows.end * rank]
                    .copy_from_slice(slab.as_slice());
            }
        }
        let mut tasks = Vec::with_capacity(blocks.len());
        let mut sent = vec![0u64; cl.machines()];
        let mut received = vec![0u64; cl.machines()];
        for (b, m) in blocks.iter().zip(&self.meta) {
            let nnz = b.entries.nnz();
            let out_rows = m.active[mode].len() as u64;
            tasks.push(TaskCost {
                machine: m.machine,
                flops: (nnz * shape.len() * rank) as f64,
                input_bytes: nnz as u64 * (shape.len() as u64 + 2) * F64,
                output_bytes: out_rows * rank as u64 * F64,
            });
            // Partial-H rows travel to the factor partition's home.
            let dst = cl.machine_for_partition(m.coords[mode]);
            if dst != m.machine {
                let bytes = out_rows * rank as u64 * F64;
                sent[m.machine] += bytes;
                received[dst] += bytes;
            }
        }
        cl.run_stage(&tasks)?;
        cl.shuffle(&sent, &received)?;
        // Combine stage at the partition homes.
        self.charge_rows_stage(&self.mode_parts[mode], rank as f64, 0)?;
        Ok(())
    }

    /// `A⁽ⁿ⁾ᵀA⁽ⁿ⁾` as the paper computes it (Eq. 13): each mode
    /// partition contributes the partial Gram of its factor rows, and the
    /// `R×R` partials reduce on the driver.
    ///
    /// The partial boundaries come from the *mode partition* — a function
    /// of the data, never of the thread count — and the partials are
    /// summed in ascending partition order under **every** `ExecMode`, so
    /// the floating-point association is fixed and `Sequential` and
    /// `Threads(n)` produce identical bits. (This association differs
    /// from a single unblocked row sweep, which is why the serial
    /// `AdmmSolver` oracle agrees to rounding, not to the bit.)
    fn refresh_gram(&mut self, factor: &Mat, mode: usize, out: &mut Mat) -> Result<()> {
        let partials = self
            .cl
            .executor()
            .run(&self.gram_ranges[mode], |_, r| factor.gram_range(r.clone()));
        out.fill(0.0);
        for partial in &partials {
            out.axpy(1.0, partial).expect("partial grams share the R×R shape");
        }
        out.mirror_upper();
        Ok(())
    }

    /// Recompute residual values block-locally: `e = t − [[A…]](idx)`.
    fn refresh_residual(
        &mut self,
        _observed: &distenc_tensor::CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()> {
        let blocks = residual.blocked_mut()?;
        // This stage reads every mode's factor rows at each block.
        self.charge_factor_fetch(None)?;
        crate::record_entry_sweep(blocks.iter().map(|b| b.entries.nnz()).sum());
        // Residual entries are independent, so one task per block on the
        // executor is bit-exact regardless of scheduling.
        self.cl.executor().run_mut(blocks, |_, b| {
            for (pos, (idx, v)) in b.entries.iter().enumerate() {
                b.vals[pos] = v - model.eval(idx);
            }
        });
        self.charge_refresh_stage(blocks)?;
        Ok(())
    }

    /// Fused refresh + mode-0 MTTKRP (see [`StepBackend::fused_step`]):
    /// one sweep over the block entries recomputes `e = t − [[A…]](idx)`,
    /// accumulates the mode-0 partial `H` slabs, and banks them in `h0`.
    /// The cluster charges are *exactly* the unfused refresh's —
    /// `charge_factor_fetch(None)` then the per-block refresh stage — so
    /// the virtual clock (and the golden distenc trace) is untouched; the
    /// fused win on the simulated cluster is local flops, which this model
    /// charges per stage, not per arithmetic op.
    fn fused_step(
        &mut self,
        observed: &distenc_tensor::CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
        fuse_next: bool,
    ) -> Result<f64> {
        if !(self.fused && fuse_next) {
            self.refresh_residual(observed, model, residual)?;
            return Ok(residual.frob_norm_sq());
        }
        let blocks = residual.blocked_mut()?;
        self.charge_factor_fetch(None)?;
        crate::record_entry_sweep(blocks.iter().map(|b| b.entries.nnz()).sum());
        let rank = self.rank;
        // Mode-0 work groups partition the blocks (every block has exactly
        // one mode-0 coordinate), so sweeping group-by-group visits each
        // entry once. Per entry the arithmetic is the refresh's
        // `t − eval` followed by the MTTKRP's own scratch fold — the same
        // two folds the unfused schedule runs in separate sweeps, in the
        // same order, so values, slabs, and `‖E‖²` all match bit-for-bit.
        let part = &self.mode_parts[0];
        let groups = &self.groups[0];
        let results = self.cl.executor().run(groups, |p, members| {
            let rows = part.range(p);
            let mut slab = Mat::zeros(rows.len(), rank);
            let mut scratch = vec![0.0; rank];
            // Fresh residual values per member block (written back below —
            // the closure cannot alias `blocks` mutably). Reduction-slab
            // exemption from the allocation budget, like `slab` itself.
            let mut fresh: Vec<Vec<f64>> = Vec::with_capacity(members.len());
            for &bi in members {
                let b = &blocks[bi];
                let mut vals = vec![0.0; b.entries.nnz()];
                for (pos, (idx, t)) in b.entries.iter().enumerate() {
                    let v = t - model.eval(idx);
                    vals[pos] = v;
                    scratch.iter_mut().for_each(|s| *s = v);
                    for (k, f) in model.factors().iter().enumerate() {
                        if k == 0 {
                            continue;
                        }
                        let row = f.row(idx[k]);
                        for (s, &a) in scratch.iter_mut().zip(row) {
                            *s *= a;
                        }
                    }
                    let o = slab.row_mut(idx[0] - rows.start);
                    for (o, &s) in o.iter_mut().zip(&scratch) {
                        *o += s;
                    }
                }
                fresh.push(vals);
            }
            (slab, fresh)
        });
        for (p, (slab, fresh)) in results.iter().enumerate() {
            let rows = part.range(p);
            self.h0.as_mut_slice()[rows.start * rank..rows.end * rank]
                .copy_from_slice(slab.as_slice());
            for (&bi, vals) in groups[p].iter().zip(fresh) {
                blocks[bi].vals.copy_from_slice(vals);
            }
        }
        self.h0_ready = true;
        self.charge_refresh_stage(blocks)?;
        Ok(residual.frob_norm_sq())
    }

    fn clock(&self, _iter: usize) -> f64 {
        self.cl.now()
    }

    /// Line 8 (Eq. 7): local `ηA−Y`, a `K×R` projection reduced across
    /// machines and broadcast back, then local expansion.
    fn on_b_update(&mut self, mode: usize) -> Result<()> {
        let cl = self.cl;
        let m = cl.machines();
        let rank = self.rank;
        let k = self.eigen_k[mode];
        // Local work: 2·rows·R (rhs) + rows·K·R (projection) + rows·K·R
        // (expansion).
        let per_row = (2 * rank + 2 * k * rank) as f64;
        self.charge_rows_stage(&self.mode_parts[mode], per_row, rank as u64 * F64)?;
        if k > 0 {
            let kr_bytes = (k * rank) as u64 * F64;
            let mut sent = vec![kr_bytes; m];
            sent[0] = 0;
            let mut received = vec![0u64; m];
            received[0] = kr_bytes * (m as u64 - 1);
            cl.shuffle(&sent, &received)?;
            cl.broadcast_charge(kr_bytes)?;
        }
        Ok(())
    }

    /// Line 9: the Hadamard product on the driver is O(N·R²).
    fn on_gram_product(&mut self) -> Result<()> {
        self.cl
            .charge_driver_flops((self.n_modes * self.rank * self.rank) as f64)?;
        Ok(())
    }

    /// Line 11: the `R×R` factorization happens once, replicated (O(R³));
    /// assembling the numerator and applying the inverse is `O(rows·R²)`
    /// per partition.
    fn on_a_update(&mut self, mode: usize) -> Result<()> {
        let rank = self.rank;
        self.cl.charge_driver_flops((rank * rank * rank) as f64)?;
        self.charge_rows_stage(
            &self.mode_parts[mode],
            (2 * rank * rank + 3 * rank) as f64,
            rank as u64 * F64,
        )
    }

    /// Line 12: per-row Y write-back.
    fn on_y_update(&mut self, mode: usize) -> Result<()> {
        self.charge_rows_stage(
            &self.mode_parts[mode],
            self.rank as f64,
            self.rank as u64 * F64,
        )
    }

    fn on_grams_refreshed(&mut self) -> Result<()> {
        self.charge_gram_stage()
    }

    fn on_delta_reduced(&mut self) -> Result<()> {
        self.charge_rows_stage_all(self.rank as f64, 0)
    }
}
