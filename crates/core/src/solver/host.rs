//! The single-machine [`StepBackend`]: thread-blocked kernels on a
//! [`distenc_dataflow::Executor`], no accounting.
//!
//! Every kernel workspace is sized once at construction and reused every
//! iteration, so the steady state allocates nothing on the calling
//! thread (the threaded executor hands work to its resident pool through
//! an unboxed index broadcast; the sequential path is a plain loop).
//!
//! With fusion enabled this backend implements the N-pass schedule: the
//! end-of-iteration [`StepBackend::fused_step`] refreshes the residual,
//! reduces `‖E‖²_F`, and precomputes the next iteration's mode-0 MTTKRP
//! into the `h0` stash in one sweep over the nonzeros; the next
//! [`StepBackend::sparse_mttkrp`] call for mode 0 serves the stash
//! instead of sweeping again. Every fused kernel is bit-identical to the
//! separate sweeps it replaces (`distenc_tensor::fused` pins this), so
//! the solver's iterates — and the golden traces — are unchanged.

use super::{ResidualStore, StepBackend};
use crate::Result;
use distenc_dataflow::Executor;
use distenc_linalg::Mat;
use distenc_tensor::fused::fused_mttkrp_refresh_into;
use distenc_tensor::mttkrp::{mttkrp_blocked_into, MttkrpWorkspace};
use distenc_tensor::residual::{residual_refresh_exec, ResidualWorkspace};
use distenc_tensor::{CooTensor, KruskalTensor};

/// Host backend: Algorithm 2 greedy thread blocking for the MTTKRP,
/// even-chunked residual refresh, plain Grams, wall-clock trace stamps.
pub(crate) struct HostBackend<C> {
    exec: Executor,
    /// One bucketed workspace per mode (unused rows on the CSF path, but
    /// cheap: the buckets are indices into the fixed support).
    mtt: Vec<MttkrpWorkspace>,
    res: ResidualWorkspace,
    /// Fuse the residual refresh with the next mode-0 MTTKRP
    /// ([`crate::AdmmConfig::fused`]).
    fused: bool,
    /// Stashed `E₍₀₎U⁽⁰⁾` (`I₀×R`) banked by the fused sweep for the next
    /// iteration's mode-0 [`StepBackend::sparse_mttkrp`].
    h0: Mat,
    /// Whether `h0` holds a live stash for the upcoming mode-0 call.
    h0_ready: bool,
    clock: C,
}

impl<C: Fn(usize) -> f64> HostBackend<C> {
    /// Bucket `observed` for every mode over `boundaries` at rank `rank`,
    /// chunk the residual refresh for `exec`, and stamp trace points with
    /// `clock`.
    pub fn new(
        observed: &CooTensor,
        boundaries: &[Vec<usize>],
        rank: usize,
        exec: Executor,
        fused: bool,
        clock: C,
    ) -> Result<Self> {
        let mtt = (0..observed.order())
            .map(|n| MttkrpWorkspace::new(observed, n, &boundaries[n], rank))
            .collect::<distenc_tensor::Result<Vec<_>>>()?;
        let res = ResidualWorkspace::new(observed.nnz(), &exec);
        let h0 = Mat::zeros(observed.shape()[0], rank);
        Ok(HostBackend { exec, mtt, res, fused, h0, h0_ready: false, clock })
    }
}

impl<C: Fn(usize) -> f64> StepBackend for HostBackend<C> {
    fn sparse_mttkrp(
        &mut self,
        residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()> {
        if mode == 0 && self.h0_ready {
            // The fused sweep already computed this against the very same
            // factors (no swap happens between the refresh and this call);
            // serving the stash saves the whole pass.
            self.h0_ready = false;
            out.as_mut_slice().copy_from_slice(self.h0.as_slice());
            return Ok(());
        }
        let ResidualStore::Coo { e, csf } = residual else {
            return Err(crate::CoreError::Invalid(
                "host backend requires a COO residual".into(),
            ));
        };
        if csf.is_empty() {
            mttkrp_blocked_into(e, model.factors(), &mut self.mtt[mode], &self.exec, out)?;
        } else {
            // §III-C's fiber layout: the tree walk shares partial Hadamard
            // products across fibers. Same zero-then-accumulate contract
            // as the blocked kernel.
            csf[mode].mttkrp_root_into(model.factors(), out)?;
        }
        Ok(())
    }

    fn refresh_gram(&mut self, factor: &Mat, _mode: usize, out: &mut Mat) -> Result<()> {
        factor.gram_into(out)?;
        Ok(())
    }

    fn refresh_residual(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()> {
        let ResidualStore::Coo { e, csf } = residual else {
            return Err(crate::CoreError::Invalid(
                "host backend requires a COO residual".into(),
            ));
        };
        residual_refresh_exec(observed, model, e, &mut self.res, &self.exec)?;
        for c in csf.iter_mut() {
            c.set_values(e)?;
        }
        Ok(())
    }

    fn fused_step(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
        fuse_next: bool,
    ) -> Result<f64> {
        if !(self.fused && fuse_next) {
            // Nothing to bank (ablation switch off, or no next iteration):
            // the plain refresh does one pass without the MTTKRP flops.
            self.refresh_residual(observed, model, residual)?;
            return Ok(residual.frob_norm_sq());
        }
        let ResidualStore::Coo { e, csf } = residual else {
            return Err(crate::CoreError::Invalid(
                "host backend requires a COO residual".into(),
            ));
        };
        let frob = if csf.is_empty() {
            fused_mttkrp_refresh_into(
                observed,
                model,
                &mut self.mtt[0],
                &self.exec,
                e,
                &mut self.h0,
            )?
        } else {
            // The mode-0 tree walk refreshes its own leaves and `e`; the
            // other modes' trees re-scatter from `e` (values only, not a
            // sweep over the factors).
            let frob = csf[0].fused_mttkrp_refresh_root_into(observed, model, e, &mut self.h0)?;
            for c in csf[1..].iter_mut() {
                c.set_values(e)?;
            }
            frob
        };
        self.h0_ready = true;
        Ok(frob)
    }

    fn clock(&self, iter: usize) -> f64 {
        (self.clock)(iter)
    }
}
