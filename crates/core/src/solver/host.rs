//! The single-machine [`StepBackend`]: thread-blocked kernels on a
//! [`distenc_dataflow::Executor`], no accounting.
//!
//! Every kernel workspace is sized once at construction and reused every
//! iteration, so the steady state allocates nothing on the calling
//! thread (the threaded executor boxes O(parts) jobs per dispatch; the
//! sequential path is a plain loop).

use super::{ResidualStore, StepBackend};
use crate::Result;
use distenc_dataflow::Executor;
use distenc_linalg::Mat;
use distenc_tensor::mttkrp::{mttkrp_blocked_into, MttkrpWorkspace};
use distenc_tensor::residual::{residual_refresh_exec, ResidualWorkspace};
use distenc_tensor::{CooTensor, KruskalTensor};

/// Host backend: Algorithm 2 greedy thread blocking for the MTTKRP,
/// even-chunked residual refresh, plain Grams, wall-clock trace stamps.
pub(crate) struct HostBackend<C> {
    exec: Executor,
    /// One bucketed workspace per mode (unused rows on the CSF path, but
    /// cheap: the buckets are indices into the fixed support).
    mtt: Vec<MttkrpWorkspace>,
    res: ResidualWorkspace,
    clock: C,
}

impl<C: Fn(usize) -> f64> HostBackend<C> {
    /// Bucket `observed` for every mode over `boundaries` at rank `rank`,
    /// chunk the residual refresh for `exec`, and stamp trace points with
    /// `clock`.
    pub fn new(
        observed: &CooTensor,
        boundaries: &[Vec<usize>],
        rank: usize,
        exec: Executor,
        clock: C,
    ) -> Result<Self> {
        let mtt = (0..observed.order())
            .map(|n| MttkrpWorkspace::new(observed, n, &boundaries[n], rank))
            .collect::<distenc_tensor::Result<Vec<_>>>()?;
        let res = ResidualWorkspace::new(observed.nnz(), &exec);
        Ok(HostBackend { exec, mtt, res, clock })
    }
}

impl<C: Fn(usize) -> f64> StepBackend for HostBackend<C> {
    fn sparse_mttkrp(
        &mut self,
        residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()> {
        let ResidualStore::Coo { e, csf } = residual else {
            return Err(crate::CoreError::Invalid(
                "host backend requires a COO residual".into(),
            ));
        };
        if csf.is_empty() {
            mttkrp_blocked_into(e, model.factors(), &mut self.mtt[mode], &self.exec, out)?;
        } else {
            // §III-C's fiber layout: the tree walk shares partial Hadamard
            // products across fibers. Same zero-then-accumulate contract
            // as the blocked kernel.
            csf[mode].mttkrp_root_into(model.factors(), out)?;
        }
        Ok(())
    }

    fn refresh_gram(&mut self, factor: &Mat, _mode: usize, out: &mut Mat) -> Result<()> {
        factor.gram_into(out)?;
        Ok(())
    }

    fn refresh_residual(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()> {
        let ResidualStore::Coo { e, csf } = residual else {
            return Err(crate::CoreError::Invalid(
                "host backend requires a COO residual".into(),
            ));
        };
        residual_refresh_exec(observed, model, e, &mut self.res, &self.exec)?;
        for c in csf.iter_mut() {
            c.set_values(e)?;
        }
        Ok(())
    }

    fn clock(&self, iter: usize) -> f64 {
        (self.clock)(iter)
    }
}
