//! The single-machine [`StepBackend`]: thread-blocked kernels on a
//! [`distenc_dataflow::Executor`], no accounting.
//!
//! All storage-dependent work goes through the residual's
//! [`TensorLayout`] — this backend never inspects which layout (COO,
//! CSF, or tiled) is in play; it sizes one [`LayoutWorkspace`] at
//! construction and hands every kernel call to the layout's dispatch
//! point. The steady state allocates nothing on the calling thread (the
//! threaded executor hands work to its resident pool through an unboxed
//! index broadcast; the sequential path is a plain loop).
//!
//! With fusion enabled this backend implements the N-pass schedule: the
//! end-of-iteration [`StepBackend::fused_step`] refreshes the residual,
//! reduces `‖E‖²_F`, and precomputes the next iteration's mode-0 MTTKRP
//! into the `h0` stash in one sweep over the nonzeros; the next
//! [`StepBackend::sparse_mttkrp`] call for mode 0 serves the stash
//! instead of sweeping again. Every fused kernel is bit-identical to the
//! separate sweeps it replaces (`distenc_tensor::fused` and
//! `distenc_tensor::layout` pin this), so the solver's iterates — and
//! the golden traces — are unchanged.

use super::{ResidualStore, StepBackend};
use crate::Result;
use distenc_dataflow::Executor;
use distenc_linalg::Mat;
use distenc_tensor::residual::ResidualWorkspace;
use distenc_tensor::{CooTensor, KruskalTensor, LayoutWorkspace, TensorLayout};

/// Host backend: Algorithm 2 greedy thread blocking for the MTTKRP,
/// even-chunked residual refresh, plain Grams, wall-clock trace stamps.
pub(crate) struct HostBackend<C> {
    exec: Executor,
    /// The layout's per-mode sweep workspace (buckets for COO, tile
    /// partitions for tiled, nothing for CSF).
    lw: LayoutWorkspace,
    res: ResidualWorkspace,
    /// Fuse the residual refresh with the next mode-0 MTTKRP
    /// ([`crate::AdmmConfig::fused`]).
    fused: bool,
    /// Stashed `E₍₀₎U⁽⁰⁾` (`I₀×R`) banked by the fused sweep for the next
    /// iteration's mode-0 [`StepBackend::sparse_mttkrp`].
    h0: Mat,
    /// Whether `h0` holds a live stash for the upcoming mode-0 call.
    h0_ready: bool,
    clock: C,
}

impl<C: Fn(usize) -> f64> HostBackend<C> {
    /// Size the layout workspace for every mode over `boundaries` at rank
    /// `rank`, chunk the residual refresh for `exec`, and stamp trace
    /// points with `clock`.
    pub fn new(
        layout: &TensorLayout,
        boundaries: &[Vec<usize>],
        rank: usize,
        exec: Executor,
        fused: bool,
        clock: C,
    ) -> Result<Self> {
        let lw = layout.workspace(rank, boundaries, &exec)?;
        let res = ResidualWorkspace::new(layout.nnz(), &exec);
        let h0 = Mat::zeros(layout.entries().shape()[0], rank);
        Ok(HostBackend { exec, lw, res, fused, h0, h0_ready: false, clock })
    }
}

impl<C: Fn(usize) -> f64> StepBackend for HostBackend<C> {
    fn sparse_mttkrp(
        &mut self,
        residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()> {
        if mode == 0 && self.h0_ready {
            // The fused sweep already computed this against the very same
            // factors (no swap happens between the refresh and this call);
            // serving the stash saves the whole pass.
            self.h0_ready = false;
            out.as_mut_slice().copy_from_slice(self.h0.as_slice());
            return Ok(());
        }
        residual
            .host()?
            .mttkrp_into(model.factors(), mode, &mut self.lw, &self.exec, out)?;
        Ok(())
    }

    fn refresh_gram(&mut self, factor: &Mat, _mode: usize, out: &mut Mat) -> Result<()> {
        factor.gram_into(out)?;
        Ok(())
    }

    fn refresh_residual(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()> {
        residual
            .host_mut()?
            .refresh_values(observed, model, &mut self.res, &self.exec)?;
        Ok(())
    }

    fn fused_step(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
        fuse_next: bool,
    ) -> Result<f64> {
        if !(self.fused && fuse_next) {
            // Nothing to bank (ablation switch off, or no next iteration):
            // the plain refresh does one pass without the MTTKRP flops.
            self.refresh_residual(observed, model, residual)?;
            return Ok(residual.frob_norm_sq());
        }
        let frob = residual.host_mut()?.fused_refresh_into(
            observed,
            model,
            &mut self.lw,
            &self.exec,
            &mut self.h0,
        )?;
        self.h0_ready = true;
        Ok(frob)
    }

    fn clock(&self, iter: usize) -> f64 {
        (self.clock)(iter)
    }
}
