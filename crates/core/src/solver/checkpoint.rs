//! Versioned, checksummed solver checkpoints (DESIGN.md §14).
//!
//! A [`Checkpoint`] captures everything the ADMM loop needs to continue
//! from the end of iteration `iters_done` with **bit-identical** results:
//! the factor matrices, the ADMM scaled duals `Y⁽ⁿ⁾·(1/η)` (`y_mul`),
//! the penalty `η` *after* that iteration's schedule update, the residual
//! tensor values in canonical observed-entry order, and the convergence
//! trace so far. Gram matrices and the `B`-update scratch are *not*
//! stored — the solver recomputes both from the factors before their
//! first read, deterministically, so omitting them cannot change a bit.
//!
//! ## On-disk layout (version 1, all integers little-endian)
//!
//! ```text
//! magic   b"DTCK"
//! version u32 (= 1)
//! config  rank u64 · λ α η₀ ρ η_max (f64 bits) · max_iters u64 ·
//!         tol (f64 bits) · eigen_k u64 · seed u64 ·
//!         nonneg u8 · partition u8 (0 = Greedy, 1 = EqualWidth) ·
//!         use_csf u8 · fused u8
//! shape   order u64, then one u64 per mode
//! cursor  iters_done u64 · eta (f64 bits)
//! factors per mode: rows u64 · cols u64 · rows×cols f64 bits
//! y_mul   same encoding as factors
//! residual nnz u64 · nnz f64 bits (canonical observed-entry order)
//! trace   npoints u64, then per point: iter u64 · seconds · train_rmse ·
//!         factor_delta (f64 bits)
//! check   FNV-1a 64 checksum over every preceding byte
//! ```
//!
//! Floats are stored as `f64::to_bits`, so a round-trip is exact for
//! every value including negative zero and NaN payloads. The checksum is
//! verified *before* any field is parsed: a corrupt or truncated file is
//! rejected with a typed [`CheckpointError`], never deserialized into
//! garbage factors.
//!
//! The execution-environment fields of [`AdmmConfig`] (`exec`,
//! `solver_tier`, `checkpoint`) are deliberately **not** serialized: a
//! checkpoint is an exact-tier artifact and must resume bit-identically
//! on any host backend, so the reader fills them with the environment's
//! defaults (`exec` from `DISTENC_THREADS`, tier `Exact`, no follow-on
//! checkpoint policy).

use crate::config::{AdmmConfig, SolverTier};
use crate::trace::{ConvergenceTrace, TracePoint};
use distenc_linalg::Mat;
use distenc_partition::PartitionStrategy;

/// File-format magic: "DisTenC ChecKpoint".
const MAGIC: [u8; 4] = *b"DTCK";
/// Current format version.
const VERSION: u32 = 1;

/// Why a checkpoint could not be read or written.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem failure (message carries the underlying error).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the file's contents.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// The file ends before the declared data does.
    Truncated,
    /// A field holds a value no writer could have produced (e.g. a zero
    /// rank or mismatched factor shapes).
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a DisTenC checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads ≤ {VERSION})")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A complete snapshot of the solver loop after `iters_done` iterations.
/// See the module docs for the recovery contract and the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The solve's configuration (environment fields reset on read — see
    /// the module docs).
    pub config: AdmmConfig,
    /// Shape of the observed tensor the solve ran on.
    pub shape: Vec<usize>,
    /// Iterations completed when the snapshot was taken.
    pub iters_done: usize,
    /// ADMM penalty `η` *after* iteration `iters_done`'s schedule update.
    pub eta: f64,
    /// Factor matrices `A⁽ⁿ⁾`, one per mode.
    pub factors: Vec<Mat>,
    /// Scaled duals `Y⁽ⁿ⁾·(1/η)`, one per mode.
    pub y_mul: Vec<Mat>,
    /// Residual values `Ω∗(T − [[A]])` in canonical observed-entry order
    /// (the order of the observed tensor's entry list).
    pub residual: Vec<f64>,
    /// Convergence trace up to and including iteration `iters_done`.
    pub trace: ConvergenceTrace,
}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty to
/// catch torn writes and bit rot (this is an integrity check, not an
/// adversarial MAC).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn mat(&mut self, m: &Mat) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &v in m.as_slice() {
            self.f64(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type Result<T> = std::result::Result<T, CheckpointError>;

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// A u64 that must fit in usize and stay under a sanity bound
    /// (corruption the checksum cannot catch only exists for files we
    /// did not write; the bound keeps even those from causing huge
    /// allocations).
    fn len(&mut self, what: &str) -> Result<usize> {
        let v = self.u64()?;
        // No snapshot field can plausibly exceed the remaining bytes.
        if v > self.buf.len() as u64 {
            return Err(CheckpointError::Malformed(format!("{what} length {v} is absurd")));
        }
        Ok(v as usize)
    }
    fn mat(&mut self) -> Result<Mat> {
        let rows = self.len("matrix rows")?;
        let cols = self.len("matrix cols")?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Malformed("matrix size overflow".into()))?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Ok(Mat::from_vec(rows, cols, data))
    }
}

impl Checkpoint {
    /// Serialize to the version-1 byte format (checksum included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        let c = &self.config;
        w.u64(c.rank as u64);
        w.f64(c.lambda);
        w.f64(c.alpha);
        w.f64(c.eta0);
        w.f64(c.rho);
        w.f64(c.eta_max);
        w.u64(c.max_iters as u64);
        w.f64(c.tol);
        w.u64(c.eigen_k as u64);
        w.u64(c.seed);
        w.u8(u8::from(c.nonneg));
        w.u8(match c.partition {
            PartitionStrategy::Greedy => 0,
            PartitionStrategy::EqualWidth => 1,
        });
        w.u8(u8::from(c.use_csf));
        w.u8(u8::from(c.fused));
        w.u64(self.shape.len() as u64);
        for &d in &self.shape {
            w.u64(d as u64);
        }
        w.u64(self.iters_done as u64);
        w.f64(self.eta);
        for m in &self.factors {
            w.mat(m);
        }
        for m in &self.y_mul {
            w.mat(m);
        }
        w.u64(self.residual.len() as u64);
        for &v in &self.residual {
            w.f64(v);
        }
        w.u64(self.trace.points.len() as u64);
        for p in &self.trace.points {
            w.u64(p.iter as u64);
            w.f64(p.seconds);
            w.f64(p.train_rmse);
            w.f64(p.factor_delta);
        }
        let sum = fnv1a(&w.buf);
        w.u64(sum);
        w.buf
    }

    /// Parse and validate the version-1 byte format. The checksum is
    /// verified over the whole payload before any field is interpreted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint> {
        // Magic and version first so "not a checkpoint at all" and "from
        // a newer build" beat the generic corruption error.
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let (payload, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader { buf: payload, pos: 8 };
        let rank = r.len("rank")?;
        let lambda = r.f64()?;
        let alpha = r.f64()?;
        let eta0 = r.f64()?;
        let rho = r.f64()?;
        let eta_max = r.f64()?;
        let max_iters = r.len("max_iters")?;
        let tol = r.f64()?;
        let eigen_k = r.len("eigen_k")?;
        let seed = r.u64()?;
        let nonneg = r.u8()? != 0;
        let partition = match r.u8()? {
            0 => PartitionStrategy::Greedy,
            1 => PartitionStrategy::EqualWidth,
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "unknown partition strategy tag {other}"
                )))
            }
        };
        let use_csf = r.u8()? != 0;
        let fused = r.u8()? != 0;
        let config = AdmmConfig {
            rank,
            lambda,
            alpha,
            eta0,
            rho,
            eta_max,
            max_iters,
            tol,
            eigen_k,
            seed,
            nonneg,
            partition,
            use_csf,
            // Not serialized: the layout override is an invocation-time
            // knob like `exec`. `use_csf` above *is* stored, so a run
            // whose CSF selection came from the legacy flag resumes onto
            // the same layout; `resume()` re-applies the resuming
            // solver's own `layout` on top.
            layout: None,
            // Environment fields: not serialized, reset to this host's
            // defaults (see the module docs).
            exec: distenc_dataflow::ExecMode::default(),
            fused,
            solver_tier: SolverTier::Exact,
            checkpoint: None,
        };
        if config.rank == 0 {
            return Err(CheckpointError::Malformed("rank is zero".into()));
        }

        let order = r.len("order")?;
        let mut shape = Vec::with_capacity(order);
        for _ in 0..order {
            shape.push(r.u64()? as usize);
        }
        let iters_done = r.len("iters_done")?;
        let eta = r.f64()?;
        let mut factors = Vec::with_capacity(order);
        for _ in 0..order {
            factors.push(r.mat()?);
        }
        let mut y_mul = Vec::with_capacity(order);
        for _ in 0..order {
            y_mul.push(r.mat()?);
        }
        let nnz = r.len("residual nnz")?;
        let mut residual = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            residual.push(r.f64()?);
        }
        let npoints = r.len("trace points")?;
        let mut trace = ConvergenceTrace::new();
        for _ in 0..npoints {
            let iter = r.u64()? as usize;
            let seconds = r.f64()?;
            let train_rmse = r.f64()?;
            let factor_delta = r.f64()?;
            trace.push(TracePoint { iter, seconds, train_rmse, factor_delta });
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing bytes after the trace",
                payload.len() - r.pos
            )));
        }

        // Cross-field sanity: a writer can only produce consistent
        // shapes, so reject anything else before it reaches the solver.
        for (n, f) in factors.iter().enumerate() {
            if f.rows() != shape.get(n).copied().unwrap_or(0) || f.cols() != config.rank {
                return Err(CheckpointError::Malformed(format!(
                    "factor {n} is {}×{}, expected {}×{}",
                    f.rows(),
                    f.cols(),
                    shape.get(n).copied().unwrap_or(0),
                    config.rank
                )));
            }
        }
        for (n, y) in y_mul.iter().enumerate() {
            if y.rows() != shape[n] || y.cols() != config.rank {
                return Err(CheckpointError::Malformed(format!(
                    "dual {n} is {}×{}, expected {}×{}",
                    y.rows(),
                    y.cols(),
                    shape[n],
                    config.rank
                )));
            }
        }
        if !(eta.is_finite() && eta > 0.0) {
            return Err(CheckpointError::Malformed(format!("penalty η = {eta}")));
        }

        Ok(Checkpoint {
            config,
            shape,
            iters_done,
            eta,
            factors,
            y_mul,
            residual,
            trace,
        })
    }

    /// Write atomically to `path`: the bytes land in a `.tmp` sibling
    /// first and are renamed into place, so a crash mid-write leaves
    /// either the previous checkpoint or none — never a torn file.
    pub fn write_file(&self, path: &std::path::Path) -> Result<()> {
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))
    }

    /// Read and validate a checkpoint file.
    pub fn read_file(path: &std::path::Path) -> Result<Checkpoint> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Checkpoint::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut trace = ConvergenceTrace::new();
        trace.push(TracePoint { iter: 0, seconds: 0.5, train_rmse: 0.9, factor_delta: 1.1 });
        trace.push(TracePoint { iter: 1, seconds: 1.25, train_rmse: 0.4, factor_delta: 0.3 });
        Checkpoint {
            config: AdmmConfig {
                rank: 2,
                use_csf: true,
                partition: PartitionStrategy::EqualWidth,
                ..AdmmConfig::default()
            },
            shape: vec![3, 2],
            iters_done: 2,
            eta: 1.1025,
            factors: vec![
                Mat::from_vec(3, 2, vec![1.0, -0.0, 3.5e-310, f64::MIN_POSITIVE, 2.0, -7.25]),
                Mat::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]),
            ],
            y_mul: vec![Mat::zeros(3, 2), Mat::from_vec(2, 2, vec![-1.0, 0.5, 0.0, 9.0])],
            residual: vec![0.25, -0.5, 1.0e-17],
            trace,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ck = sample();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.shape, ck.shape);
        assert_eq!(back.iters_done, ck.iters_done);
        assert_eq!(back.eta.to_bits(), ck.eta.to_bits());
        for (a, b) in back.factors.iter().zip(&ck.factors) {
            let (a, b) = (a.as_slice(), b.as_slice());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (x, y) in back.residual.iter().zip(&ck.residual) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(back.trace, ck.trace);
        assert_eq!(back.config.rank, 2);
        assert!(back.config.use_csf);
        assert_eq!(back.config.partition, PartitionStrategy::EqualWidth);
        assert_eq!(back.config.solver_tier, SolverTier::Exact);
        assert_eq!(back.config.checkpoint, None);
    }

    #[test]
    fn every_corrupted_byte_is_rejected_with_a_typed_error() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let err = Checkpoint::from_bytes(&bad)
                .expect_err(&format!("flipping byte {i} must not parse"));
            assert!(
                matches!(
                    err,
                    CheckpointError::ChecksumMismatch { .. }
                        | CheckpointError::BadMagic
                        | CheckpointError::UnsupportedVersion(_)
                ),
                "byte {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for keep in [0, 3, 7, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = Checkpoint::from_bytes(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "keep {keep}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&bytes).unwrap_err(),
            CheckpointError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn file_round_trip_and_atomic_write() {
        let dir = std::env::temp_dir().join("distenc_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solve.ckpt");
        let ck = sample();
        ck.write_file(&path).unwrap();
        // Overwrite with a newer snapshot; the rename replaces in place.
        let mut ck2 = ck.clone();
        ck2.iters_done = 7;
        ck2.write_file(&path).unwrap();
        let back = Checkpoint::read_file(&path).unwrap();
        assert_eq!(back.iters_done, 7);
        assert!(!path.with_extension("ckpt.tmp").exists(), "tmp file renamed away");
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Checkpoint::read_file(&path),
            Err(CheckpointError::Io(_))
        ));
    }
}
