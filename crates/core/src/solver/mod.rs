//! The shared, allocation-free solver core.
//!
//! Both completion drivers run the *same* Algorithm 1 iteration — the
//! serial [`crate::AdmmSolver`] and the distributed [`crate::DisTenC`]
//! differ only in how the sparse kernels are decomposed and in the
//! virtual-time/communication accounting the distributed driver charges
//! against its [`distenc_dataflow::Cluster`]. This module owns the one
//! copy of the Algorithm 1 lines 8–12 step math ([`mode_step`]) and the
//! outer Jacobi loop ([`run`]); the drivers supply a [`StepBackend`] that
//! plugs in their kernel decomposition plus (for the cluster) their
//! accounting hooks, placed at exactly the points the pre-refactor
//! drivers charged.
//!
//! **Bit-exactness contract.** Every arithmetic operation here happens in
//! the same order, with the same floating-point association, as the
//! pre-refactor drivers — the fixed-seed golden traces under
//! `tests/golden/` pin this. The in-place kernels (`*_into` variants in
//! `distenc-linalg` / `distenc-tensor`) are bit-identical to their
//! allocating ancestors by construction (each has its own bit-identity
//! test), so unifying the drivers around them changes no output bits.
//!
//! **Allocation contract.** After [`SolverState::new`] sizes the
//! [`Workspace`] and the backend sizes its kernel workspaces, a
//! steady-state iteration of the host solver performs no heap allocation
//! on the calling thread — in sequential mode *and* in threaded mode,
//! because the executor dispatches work to its resident pool through an
//! unboxed index broadcast (`Pool::run_indexed`) rather than boxed jobs.
//! Documented exemptions: the CSF tree walk (per-level recursion
//! accumulators, `O(depth·R)`) and the distributed driver's accounting
//! vectors (`TaskCost` / shuffle tallies / per-call reduction slabs —
//! bookkeeping, not step math). The `alloc-count` feature and
//! `tests/alloc_budget.rs` enforce this.
//!
//! **Pass contract.** With fusion enabled (the default,
//! [`AdmmConfig::fused`]) a steady-state iteration sweeps the nonzero
//! list exactly N times for an order-N tensor: N−1 plain MTTKRPs for
//! modes 1..N, plus one fused sweep ([`StepBackend::fused_step`]) that
//! refreshes the residual, reduces `‖E‖²_F`, **and** precomputes the next
//! iteration's mode-0 MTTKRP in a single pass. Unfused, the same
//! iteration takes N+1 sweeps. The `pass-count` feature counts the sweeps
//! and `tests/pass_count.rs` pins the N-vs-N+1 gap.

use crate::config::AdmmConfig;
use crate::trace::{ConvergenceTrace, TracePoint};
use crate::{CompletionResult, CoreError, Result};
use distenc_graph::{ShiftedInverseScratch, TruncatedLaplacian};
use distenc_linalg::{Cholesky, Mat};
use distenc_tensor::mttkrp::gram_product_into;
use distenc_tensor::{CooTensor, KruskalTensor, TensorLayout};

pub mod checkpoint;
pub(crate) mod cluster;
pub(crate) mod host;
pub(crate) mod sketched;

pub(crate) use cluster::{BlockMeta, ClusterBackend};
pub(crate) use host::HostBackend;
pub(crate) use sketched::SketchedBackend;

/// The residual tensor `E = Ω∗(T − [[A…]])` in whichever layout the
/// driver's decomposition needs. The values are refreshed in place every
/// iteration ([`StepBackend::refresh_residual`]); the support never
/// changes after construction.
pub(crate) enum ResidualStore {
    /// The host drivers' residual behind the [`TensorLayout`] dispatch
    /// point: the entry list plus whatever acceleration structure the
    /// selected layout (COO / CSF / tiled) carries. Backends reach it
    /// through [`ResidualStore::host`] and never match on the concrete
    /// storage — the layout owns kernel dispatch.
    Host(TensorLayout),
    /// Algorithm 2 block partition of the residual (distributed layout):
    /// each block keeps its entry slice and a parallel value vector.
    Blocked {
        /// The blocks, in the same fixed order the accounting metadata
        /// uses.
        blocks: Vec<ResidualBlock>,
    },
}

/// One tensor block's share of the residual: its entries and the values
/// `e = t − [[A…]](idx)` parallel to them.
pub(crate) struct ResidualBlock {
    /// The observed entries of this block.
    pub entries: CooTensor,
    /// Residual values, parallel to `entries`.
    pub vals: Vec<f64>,
}

impl ResidualStore {
    /// `‖E‖²_F`, summed in this layout's fixed order (flat entry order
    /// for [`ResidualStore::Host`], block-major for
    /// [`ResidualStore::Blocked`]) — the same associations the
    /// pre-refactor drivers used, so the RMSE bits are unchanged.
    pub fn frob_norm_sq(&self) -> f64 {
        match self {
            ResidualStore::Host(layout) => layout.frob_norm_sq(),
            ResidualStore::Blocked { blocks } => blocks
                .iter()
                .flat_map(|b| b.vals.iter())
                .map(|v| v * v)
                .sum(),
        }
    }

    /// The host layout, or a typed error when a backend was handed the
    /// wrong decomposition (the one storage check left; backends call
    /// this instead of matching on variants).
    pub fn host(&self) -> Result<&TensorLayout> {
        match self {
            ResidualStore::Host(layout) => Ok(layout),
            ResidualStore::Blocked { .. } => Err(CoreError::Invalid(
                "host backend requires the host residual layout".into(),
            )),
        }
    }

    /// Mutable [`ResidualStore::host`].
    pub fn host_mut(&mut self) -> Result<&mut TensorLayout> {
        match self {
            ResidualStore::Host(layout) => Ok(layout),
            ResidualStore::Blocked { .. } => Err(CoreError::Invalid(
                "host backend requires the host residual layout".into(),
            )),
        }
    }

    /// Consume the store into its host layout (the hand-off path).
    pub fn into_host(self) -> Result<TensorLayout> {
        match self {
            ResidualStore::Host(layout) => Ok(layout),
            ResidualStore::Blocked { .. } => Err(CoreError::Invalid(
                "host solve produced a blocked residual".into(),
            )),
        }
    }

    /// The Algorithm 2 blocks, or a typed error on the host layout.
    pub fn blocked(&self) -> Result<&[ResidualBlock]> {
        match self {
            ResidualStore::Blocked { blocks } => Ok(blocks),
            ResidualStore::Host(_) => Err(CoreError::Invalid(
                "cluster backend requires a blocked residual".into(),
            )),
        }
    }

    /// Mutable [`ResidualStore::blocked`].
    pub fn blocked_mut(&mut self) -> Result<&mut [ResidualBlock]> {
        match self {
            ResidualStore::Blocked { blocks } => Ok(blocks),
            ResidualStore::Host(_) => Err(CoreError::Invalid(
                "cluster backend requires a blocked residual".into(),
            )),
        }
    }
}

/// Per-mode scratch matrices for one [`mode_step`], all `Iₙ×R`.
struct ModeBuffers {
    /// `ηA − Y` for the B-update; dead afterwards, so it doubles as the
    /// `B − A_new` difference buffer of the Y-update.
    rhs: Mat,
    /// The sparse MTTKRP part `E₍ₙ₎U⁽ⁿ⁾`.
    sparse: Mat,
    /// `A⁽ⁿ⁾F⁽ⁿ⁾`, accumulated into the full numerator `H + ηB + Y`.
    numer: Mat,
    /// The solved `A⁽ⁿ⁾ₜ₊₁`; swapped into the model after all modes.
    next: Mat,
    /// Intermediates of the truncated-eigenbasis B-update.
    shift: ShiftedInverseScratch,
}

/// All scratch a steady-state iteration writes into, sized once before
/// iteration 0 and reused for the whole run.
pub(crate) struct Workspace {
    modes: Vec<ModeBuffers>,
    /// The `R×R` Gram product `F⁽ⁿ⁾`, shifted into the regularized
    /// denominator in place each mode step.
    f: Mat,
    /// Refactored in place every mode step ([`Cholesky::refactor`]).
    chol: Cholesky,
}

/// Everything Algorithm 1 iterates on: the factors, the ADMM auxiliaries
/// `B`/`Y`, the cached Grams, the penalty `η`, the residual, and the
/// Algorithm 2 boundaries the backend decomposed its kernels with.
pub(crate) struct SolverState {
    /// The CP model `[[A⁽¹⁾,…,A⁽ᴺ⁾]]`.
    pub model: KruskalTensor,
    /// Cached per-factor Grams `A⁽ⁿ⁾ᵀA⁽ⁿ⁾` (Eq. 12).
    pub grams: Vec<Mat>,
    /// ADMM auxiliary factors `B⁽ⁿ⁾`.
    pub b_aux: Vec<Mat>,
    /// Scaled dual variables `Y⁽ⁿ⁾`.
    pub y_mul: Vec<Mat>,
    /// Current penalty parameter `η`.
    pub eta: f64,
    /// The residual tensor, in the backend's layout.
    pub residual: ResidualStore,
    /// Per-mode Algorithm-2 cut points the backend's decomposition was
    /// derived from (host: greedy thread blocking; cluster: the mode
    /// partition boundaries). Kept on the state so the decomposition that
    /// produced a run's bits is inspectable.
    pub boundaries: Vec<Vec<usize>>,
    /// Preallocated iteration scratch.
    pub ws: Workspace,
}

impl SolverState {
    /// Size all solver-owned state for `observed` before iteration 0.
    ///
    /// `initial` seeds the factors (warm start); otherwise they are the
    /// seeded random init of Algorithm 1 line 1. Grams start as zero
    /// placeholders — [`run`]'s prologue fills them through the backend
    /// before anything reads them. The residual store arrives from the
    /// driver with its support laid out but its *values* stale; the
    /// prologue refreshes those too.
    pub fn new(
        observed: &CooTensor,
        truncated: &[TruncatedLaplacian],
        cfg: &AdmmConfig,
        initial: Option<KruskalTensor>,
        residual: ResidualStore,
        boundaries: Vec<Vec<usize>>,
    ) -> Result<Self> {
        let shape = observed.shape().to_vec();
        let rank = cfg.rank;
        let model =
            initial.unwrap_or_else(|| KruskalTensor::random(&shape, rank, cfg.seed));
        let b_aux: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let y_mul: Vec<Mat> = shape.iter().map(|&d| Mat::zeros(d, rank)).collect();
        let grams: Vec<Mat> = shape.iter().map(|_| Mat::zeros(rank, rank)).collect();
        let modes = shape
            .iter()
            .zip(truncated)
            .map(|(&d, tr)| ModeBuffers {
                rhs: Mat::zeros(d, rank),
                sparse: Mat::zeros(d, rank),
                numer: Mat::zeros(d, rank),
                next: Mat::zeros(d, rank),
                shift: ShiftedInverseScratch::new(tr, rank),
            })
            .collect();
        let ws = Workspace {
            modes,
            f: Mat::zeros(rank, rank),
            // Seed the factorization buffer with any SPD matrix of the
            // right size; every use goes through `refactor` first.
            chol: Cholesky::factor(&Mat::identity(rank))?,
        };
        Ok(SolverState {
            model,
            grams,
            b_aux,
            y_mul,
            eta: cfg.eta0,
            residual,
            boundaries,
            ws,
        })
    }
}

/// What a driver plugs into the shared iteration: its decomposition of
/// the three data-dependent kernels (sparse MTTKRP, Gram refresh,
/// residual refresh), its trace clock, and — for the distributed driver —
/// accounting hooks at the exact points the pre-refactor loop charged
/// the cluster. Hook defaults are no-ops (the host charges nothing).
pub(crate) trait StepBackend {
    /// The sparse MTTKRP `E₍ₙ₎U⁽ⁿ⁾` for `mode`, written into `out`
    /// (`Iₙ×R`), decomposed however this backend decomposes it. Must be
    /// bit-identical to the sequential entry-order sweep for the host
    /// backend; the cluster backend's block association is its own fixed
    /// order (matching the serial oracle to rounding, not bits).
    fn sparse_mttkrp(
        &mut self,
        residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()>;

    /// Recompute `factorᵀfactor` into `out` in this backend's fixed
    /// association order.
    fn refresh_gram(&mut self, factor: &Mat, mode: usize, out: &mut Mat) -> Result<()>;

    /// Refresh the residual values against the freshly swapped model
    /// (Algorithm 3 line 13 / Eq. 14).
    fn refresh_residual(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()>;

    /// The end-of-iteration residual refresh plus the `‖E‖²_F` reduction,
    /// optionally fused with the *next* iteration's mode-0 MTTKRP.
    ///
    /// The model this step reads is exactly the model the next iteration's
    /// mode steps read (the Jacobi swap has already happened), so a
    /// backend may compute `E₍₀₎U⁽⁰⁾` during the same sweep that refreshes
    /// `E`, stash it, and serve it from the stash when
    /// [`StepBackend::sparse_mttkrp`] is next called for mode 0 — turning
    /// N+1 passes over the nonzeros per iteration into N. `fuse_next` is
    /// false when no further iteration will run (cap reached or
    /// converged), in which case the stash would be dead work and backends
    /// should fall back to the plain refresh.
    ///
    /// Whatever the backend does must be bit-identical to the default
    /// body: the refreshed `E` values, the returned `‖E‖²_F` (same fold
    /// order as [`ResidualStore::frob_norm_sq`]), and the stashed MTTKRP
    /// must all match the unfused schedule bit-for-bit.
    fn fused_step(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
        _fuse_next: bool,
    ) -> Result<f64> {
        self.refresh_residual(observed, model, residual)?;
        Ok(residual.frob_norm_sq())
    }

    /// Timestamp for iteration `iter`'s trace point (wall clock on the
    /// host, the cluster's virtual clock distributed).
    fn clock(&self, iter: usize) -> f64;

    /// Charged before the B-update of `mode` is applied (Eq. 7 stage).
    fn on_b_update(&mut self, _mode: usize) -> Result<()> {
        Ok(())
    }
    /// Charged after the Gram product `F⁽ⁿ⁾` is formed on the driver.
    fn on_gram_product(&mut self) -> Result<()> {
        Ok(())
    }
    /// Charged after the denominator is assembled, before the `R×R`
    /// factorization and the per-row solve of `mode`.
    fn on_a_update(&mut self, _mode: usize) -> Result<()> {
        Ok(())
    }
    /// Charged before the Y-update rows of `mode` are written.
    fn on_y_update(&mut self, _mode: usize) -> Result<()> {
        Ok(())
    }
    /// Charged after every mode's Gram was refreshed (Eqs. 12–13 stage).
    fn on_grams_refreshed(&mut self) -> Result<()> {
        Ok(())
    }
    /// Charged after the convergence delta is reduced across modes.
    fn on_delta_reduced(&mut self) -> Result<()> {
        Ok(())
    }
}

/// One mode's Algorithm 1 lines 8–12, against preallocated buffers only.
///
/// The arithmetic sequence — operation order *and* floating-point
/// association — is exactly the pre-refactor drivers' (which were already
/// elementwise-identical to each other):
///
/// 1. line 8:  `rhs = ηA⁽ⁿ⁾ₜ − Y⁽ⁿ⁾ₜ`; `B⁽ⁿ⁾ₜ₊₁ = (ηI + αLₙ)⁻¹ rhs` via
///    the truncated eigenbasis (Eq. 7),
/// 2. line 9:  `F⁽ⁿ⁾ = ⊛_{k≠n} Gram(A⁽ᵏ⁾)` (Eq. 12),
/// 3. line 10: `numer = A⁽ⁿ⁾ₜF⁽ⁿ⁾ + E₍ₙ₎U⁽ⁿ⁾` (Eq. 16),
/// 4. line 11: `numer += ηB + Y`; `A⁽ⁿ⁾ₜ₊₁ = numer (F⁽ⁿ⁾+λI+ηI)⁻¹` by
///    Cholesky, then the optional `max(0,·)` projection,
/// 5. line 12: `Y⁽ⁿ⁾ₜ₊₁ = Y⁽ⁿ⁾ₜ + η(B⁽ⁿ⁾ₜ₊₁ − A⁽ⁿ⁾ₜ₊₁)`.
///
/// The new factor lands in the workspace's `next` buffer; [`run`] swaps
/// it into the model after *all* modes finish (the Jacobi ordering that
/// makes the mode updates distributable).
pub(crate) fn mode_step<B: StepBackend>(
    st: &mut SolverState,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    backend: &mut B,
    n: usize,
) -> Result<()> {
    let SolverState { model, grams, b_aux, y_mul, eta, residual, ws, .. } = st;
    let Workspace { modes, f, chol } = ws;
    let mb = &mut modes[n];
    let eta = *eta;

    // Line 8: B⁽ⁿ⁾ₜ₊₁ ← (ηI + αLₙ)⁻¹ (ηA⁽ⁿ⁾ₜ − Y⁽ⁿ⁾ₜ), via Eq. 7.
    model.factors()[n].scaled_into(eta, &mut mb.rhs)?;
    mb.rhs.axpy(-1.0, &y_mul[n])?;
    backend.on_b_update(n)?;
    truncated[n].apply_shifted_inverse_into(
        eta,
        cfg.alpha,
        &mb.rhs,
        &mut b_aux[n],
        &mut mb.shift,
    )?;

    // Line 9: Fⁿₜ = U⁽ⁿ⁾ᵀU⁽ⁿ⁾ from cached Grams (Eq. 12).
    gram_product_into(grams, n, f)?;
    backend.on_gram_product()?;

    // Line 10 + Eq. 16: H = A⁽ⁿ⁾ₜFⁿₜ + E₍ₙ₎U⁽ⁿ⁾.
    backend.sparse_mttkrp(residual, model, n, &mut mb.sparse)?;
    model.factors()[n].matmul_into(f, &mut mb.numer)?;
    mb.numer.axpy(1.0, &mb.sparse)?;

    // Line 11: A⁽ⁿ⁾ₜ₊₁ ← (H + ηB + Y)(Fⁿₜ + λI + ηI)⁻¹.
    mb.numer.axpy(eta, &b_aux[n])?;
    mb.numer.axpy(1.0, &y_mul[n])?;
    f.add_diag(cfg.lambda + eta);
    backend.on_a_update(n)?;
    chol.refactor(f)?;
    chol.solve_right_into(&mb.numer, &mut mb.next)?;
    if cfg.nonneg {
        mb.next.clamp_nonneg();
    }

    // Line 12: Y⁽ⁿ⁾ₜ₊₁ = Y⁽ⁿ⁾ₜ + η(B⁽ⁿ⁾ₜ₊₁ − A⁽ⁿ⁾ₜ₊₁); `rhs` is dead and
    // reused for the difference. Elementwise y += η(b − a), the same
    // association as the pre-refactor clone-then-axpy.
    backend.on_y_update(n)?;
    b_aux[n].sub_into(&mb.next, &mut mb.rhs)?;
    y_mul[n].axpy(eta, &mb.rhs)?;
    Ok(())
}

/// Where the loop continues from when recovering a checkpointed solve.
/// The [`SolverState`] handed to [`run_resumable`] must already carry the
/// checkpoint's factors, duals, penalty, and residual values.
pub(crate) struct ResumePoint {
    /// Iterations already completed; the loop continues at this index.
    pub start_iter: usize,
    /// Trace accumulated before the interruption; new points append.
    pub trace: ConvergenceTrace,
}

/// Receives solver snapshots at the configured checkpoint cadence. The
/// host driver writes [`checkpoint::Checkpoint`] files; the distributed
/// driver serializes to its simulated reliable store and charges the
/// cluster for the collect.
pub(crate) trait CheckpointSink {
    /// Persist the state after `iters_done` completed iterations.
    /// `st.eta` has already taken that iteration's schedule update, so a
    /// resume continues with exactly the penalty the next iteration would
    /// have read.
    fn save(
        &mut self,
        st: &SolverState,
        iters_done: usize,
        trace: &ConvergenceTrace,
    ) -> Result<()>;
}

/// The shared outer loop (Algorithm 1 lines 5–17 / Algorithm 3 lines
/// 6–17): prologue Gram + residual refresh, then per iteration a Jacobi
/// sweep of [`mode_step`]s, the factor swap with the convergence
/// statistic, the residual refresh, the trace point, and the `η`
/// schedule.
///
/// `residual_fresh` is the streaming warm-start contract: when the
/// caller guarantees the residual values are already exactly
/// `Ω∗(T − [[A₀…]])` for the initial model (maintained incrementally by
/// the delta apply path), the prologue residual refresh is skipped.
/// Skipping is bit-invisible: a refresh would recompute the very same
/// values (the delta path evaluates the model with the same fold the
/// refresh kernels use), and the only other prologue effect — banking
/// iteration 0's mode-0 MTTKRP — degrades to that mode computing its own
/// sweep, whose output is pinned bit-identical to the banked one.
///
/// Alongside the result, the final residual store is handed back to the
/// caller; after the loop its values are always fresh with respect to
/// the returned model (the last iteration's `fused_step` refreshed them
/// after the final factor swap), which is what makes consecutive warm
/// re-solves chainable.
pub(crate) fn run<B: StepBackend>(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    backend: &mut B,
    st: SolverState,
    residual_fresh: bool,
) -> Result<(CompletionResult, ResidualStore)> {
    run_resumable(observed, truncated, cfg, backend, st, residual_fresh, None, None)
}

/// [`run`] with the fault-tolerance hooks attached: `resume` continues a
/// checkpointed solve at its stored iteration cursor, and `sink` receives
/// snapshots at the cadence of [`AdmmConfig::checkpoint`].
///
/// **Bit-exact recovery invariant** (proven by `tests/fault_recovery.rs`
/// at `DISTENC_THREADS=1` and `=4`): a solve resumed from a checkpoint of
/// iteration `k` produces, from iteration `k` on, exactly the bits the
/// uninterrupted run produced. This holds because every input iteration
/// `k` reads is either stored in the checkpoint (factors, duals `Y`,
/// post-schedule `η`, residual values) or recomputed deterministically
/// before its first read (Grams in the prologue; `B` is rewritten from
/// `ηA − Y` each mode step). The one cross-iteration artifact *not*
/// restored — the fused sweep's banked mode-0 MTTKRP — is bit-invisible
/// by the [`StepBackend::fused_step`] contract: an absent stash degrades
/// to mode 0 computing its own sweep with pinned-identical output.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_resumable<B: StepBackend>(
    observed: &CooTensor,
    truncated: &[TruncatedLaplacian],
    cfg: &AdmmConfig,
    backend: &mut B,
    mut st: SolverState,
    residual_fresh: bool,
    resume: Option<ResumePoint>,
    mut sink: Option<&mut dyn CheckpointSink>,
) -> Result<(CompletionResult, ResidualStore)> {
    // Drivers validate at their API boundary; this guard keeps the shared
    // core safe against a zero-support tensor slipping through a future
    // caller (train RMSE would be 0/0 = NaN).
    if observed.nnz() == 0 {
        return Err(CoreError::Invalid("observed tensor has no entries".into()));
    }
    let n_modes = st.model.order();
    debug_assert_eq!(st.boundaries.len(), n_modes, "one boundary set per mode");

    let (start_iter, mut trace) = match resume {
        Some(r) => (r.start_iter, r.trace),
        None => (0, ConvergenceTrace::new()),
    };

    // Prologue: Grams of the initial factors (Eq. 12 cache), then the
    // initial residual E₀ = Ω∗(T − [[A₀…]]) (line 5). The fused form also
    // banks iteration 0's mode-0 MTTKRP — iteration 0 reads the same
    // initial factors this sweep reads. A resumed solve re-runs the Gram
    // refresh (recomputing from the restored factors — same bits as the
    // interrupted run's cache) and always arrives with a fresh residual,
    // so its prologue sweep is skipped.
    for n in 0..n_modes {
        backend.refresh_gram(&st.model.factors()[n], n, &mut st.grams[n])?;
    }
    backend.on_grams_refreshed()?;
    if !residual_fresh {
        let _ =
            backend.fused_step(observed, &st.model, &mut st.residual, cfg.max_iters > start_iter)?;
    }

    trace.points.reserve(cfg.max_iters.saturating_sub(start_iter));
    let mut converged = false;
    let mut iterations = start_iter;

    for t in start_iter..cfg.max_iters {
        iterations = t + 1;

        for n in 0..n_modes {
            mode_step(&mut st, truncated, cfg, backend, n)?;
        }

        // Jacobi swap + convergence statistic (line 15): the new factors
        // trade places with the model's via the workspace, so the swap
        // allocates nothing.
        let mut delta = 0.0_f64;
        for n in 0..n_modes {
            delta = delta.max(st.model.factors()[n].frob_dist(&st.ws.modes[n].next)?);
            std::mem::swap(&mut st.model.factors_mut()[n], &mut st.ws.modes[n].next);
            backend.refresh_gram(&st.model.factors()[n], n, &mut st.grams[n])?;
        }
        backend.on_grams_refreshed()?;
        backend.on_delta_reduced()?;

        // Line 13: refresh the cached residual for the next iteration —
        // fused with that iteration's mode-0 MTTKRP when one will run.
        let fuse_next = t + 1 < cfg.max_iters && delta >= cfg.tol;
        let frob = backend.fused_step(observed, &st.model, &mut st.residual, fuse_next)?;
        let train_rmse = (frob / observed.nnz() as f64).sqrt();
        trace.push(TracePoint {
            iter: t,
            seconds: backend.clock(t),
            train_rmse,
            factor_delta: delta,
        });

        // Line 14: penalty schedule.
        st.eta = (cfg.rho * st.eta).min(cfg.eta_max);

        // Snapshot *after* the schedule update so a resume reads exactly
        // the η the next iteration would have.
        if let (Some(policy), Some(s)) = (&cfg.checkpoint, sink.as_deref_mut()) {
            if (t + 1) % policy.every_n_iters == 0 {
                s.save(&st, t + 1, &trace)?;
            }
        }

        // Lines 15–17.
        if delta < cfg.tol {
            converged = true;
            break;
        }
    }

    let SolverState { model, residual, .. } = st;
    Ok((CompletionResult { model, trace, iterations, converged }, residual))
}
