//! The sampled (sketched) [`StepBackend`]: statistical MTTKRP estimates
//! from a norm-proportional entry sample, in the spirit of randomized
//! sparse CP decomposition (Bharadwaj et al., arXiv 2210.05105).
//!
//! **Estimator.** For an output mode `n`, the exact sparse MTTKRP is
//! `Σ_i e_i · ⊛_{k≠n} A⁽ᵏ⁾(i_k,:)` over all `nnz` residual entries. The
//! sketched step draws `S` entry positions i.i.d. from a fixed
//! importance distribution `p` ([`EntrySampler`]) and accumulates the
//! importance-weighted partial sum `(1/S) Σ_s (e_s / p_s) · ⊛rows` — an
//! unbiased estimator whose variance the sampler's uniform floor keeps
//! finite. The residual value `e_s` is *recomputed from the model at
//! draw time* (`e = t − [[A…]](idx)`, via the same partial Hadamard
//! product completed with the skipped row), so the backend never needs
//! the `O(nnz)` residual refresh during the sketch phase: the residual
//! store's values stay stale until the phase's final exact refresh.
//!
//! **Pass economics.** One sketched iteration of an order-N tensor
//! touches exactly `N·S` entries: `N−1` sampled MTTKRPs of `S` draws for
//! modes `1..N`, plus one `S`-draw fused sweep ([`StepBackend::fused_step`])
//! that estimates `‖E‖²_F` and banks the next iteration's mode-0 MTTKRP
//! estimate from the same draws — mirroring the exact backend's N-pass
//! fusion. The exact tier touches `N·nnz`; `tests/pass_count.rs` pins the
//! ratio through the entry-touch instrument
//! ([`distenc_dataflow::passes::entries_touched`]). Sampled gathers are
//! charged as entry touches but *not* as sweeps — they never traverse
//! the full nonzero list.
//!
//! **Determinism.** All sampled computation runs sequentially on the
//! driver thread; the RNG is seeded from the config seed and consumed in
//! a fixed order ([`EntrySampler::draw_into`]). The executor is only used
//! for the end-of-phase exact refresh, which is bit-exact under any
//! chunking — so the whole sketched schedule is bit-identical across
//! `DISTENC_THREADS` settings (`tests/sketched_equivalence.rs` and the
//! sketched golden trace pin this).
//!
//! **Hand-off invariant.** When [`StepBackend::fused_step`] is called
//! with `fuse_next = false` (final or converged iteration), this backend
//! performs a *full exact* residual refresh and returns the exact
//! `‖E‖²_F`, so the residual values leaving the sketch phase satisfy the
//! [`crate::ResidualHandoff`] invariant (`e = Ω∗(T − [[model…]])`) and
//! the exact polish phase warm-starts without a prologue rebuild.

use super::{ResidualStore, StepBackend};
use crate::Result;
use distenc_dataflow::Executor;
use distenc_linalg::sketch::{hadamard_rows_skip_into, SketchScratch};
use distenc_linalg::vec_ops::dot;
use distenc_linalg::Mat;
use distenc_tensor::residual::ResidualWorkspace;
use distenc_tensor::sample::EntrySampler;
use distenc_tensor::{CooTensor, KruskalTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream-separation constant XORed into the config seed so the sampler
/// never shares an RNG stream with the factor initialization (which uses
/// the raw seed).
const SAMPLER_STREAM: u64 = 0x5ce7_c4ed_9b1f_a301;

/// Sketched backend: sampled MTTKRP / norm estimates during the sketch
/// phase, exact residual refresh only at phase exit.
pub(crate) struct SketchedBackend<'t, C> {
    /// The observed tensor — sampled entries read `t_i` (and indices)
    /// directly from it; the residual value is recomputed per draw.
    observed: &'t CooTensor,
    /// Fixed norm-proportional importance distribution over `observed`.
    sampler: EntrySampler,
    /// Driver-thread RNG, consumed sequentially (one `f64` per draw).
    rng: StdRng,
    /// Draws per sampled kernel invocation.
    samples: usize,
    /// Reused draw buffer (entry positions into `observed`).
    draws: Vec<usize>,
    /// Reused `R`-vector for the partial Hadamard row product.
    scratch: SketchScratch,
    /// Executor for the end-of-phase exact refresh only.
    exec: Executor,
    res: ResidualWorkspace,
    /// Stashed sampled mode-0 MTTKRP estimate banked by the fused sweep.
    h0: Mat,
    h0_ready: bool,
    clock: C,
}

impl<'t, C: Fn(usize) -> f64> SketchedBackend<'t, C> {
    /// Build the sampler over `observed`, seed the draw stream from
    /// `seed`, and size all scratch for `samples` draws at rank `rank`.
    pub fn new(
        observed: &'t CooTensor,
        samples: usize,
        rank: usize,
        exec: Executor,
        seed: u64,
        clock: C,
    ) -> Result<Self> {
        let sampler = EntrySampler::norm_proportional(observed)?;
        let res = ResidualWorkspace::new(observed.nnz(), &exec);
        let h0 = Mat::zeros(observed.shape()[0], rank);
        Ok(SketchedBackend {
            observed,
            sampler,
            rng: StdRng::seed_from_u64(seed ^ SAMPLER_STREAM),
            samples,
            draws: Vec::with_capacity(samples),
            scratch: SketchScratch::new(rank),
            exec,
            res,
            h0,
            h0_ready: false,
            clock,
        })
    }

    /// Draw the next sample set into the reusable buffer and charge the
    /// entry-touch instrument (a gather, not a sweep).
    fn draw(&mut self) {
        self.sampler.draw_into(&mut self.rng, self.samples, &mut self.draws);
        crate::record_entry_gather(self.draws.len());
    }
}

impl<'t, C: Fn(usize) -> f64> StepBackend for SketchedBackend<'t, C> {
    fn sparse_mttkrp(
        &mut self,
        _residual: &ResidualStore,
        model: &KruskalTensor,
        mode: usize,
        out: &mut Mat,
    ) -> Result<()> {
        if mode == 0 && self.h0_ready {
            // The fused sweep already estimated this against the very
            // same (post-swap) factors; serving the stash keeps the
            // iteration at N·S touches.
            self.h0_ready = false;
            out.as_mut_slice().copy_from_slice(self.h0.as_slice());
            return Ok(());
        }
        self.draw();
        out.fill(0.0);
        let inv_s = 1.0 / self.samples as f64;
        for &pos in &self.draws {
            let idx = self.observed.index(pos);
            // e = t − [[A…]](idx); the model evaluation completes the
            // partial Hadamard product with the skipped mode's row.
            hadamard_rows_skip_into(model.factors(), mode, idx, &mut self.scratch.had)?;
            let pred = dot(&self.scratch.had, model.factors()[mode].row(idx[mode]));
            let e = self.observed.value(pos) - pred;
            let w = e * inv_s / self.sampler.prob(pos);
            let row = out.row_mut(idx[mode]);
            for (o, &h) in row.iter_mut().zip(self.scratch.had.iter()) {
                *o += w * h;
            }
        }
        Ok(())
    }

    fn refresh_gram(&mut self, factor: &Mat, _mode: usize, out: &mut Mat) -> Result<()> {
        // Grams are O(Iₙ·R²), independent of nnz — always exact.
        factor.gram_into(out)?;
        Ok(())
    }

    fn refresh_residual(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
    ) -> Result<()> {
        // The one exact kernel this backend runs — dispatched through the
        // layout like the host backend's, so a sketched solve on a CSF or
        // tiled layout keeps its acceleration structure in sync.
        residual
            .host_mut()?
            .refresh_values(observed, model, &mut self.res, &self.exec)?;
        Ok(())
    }

    fn fused_step(
        &mut self,
        observed: &CooTensor,
        model: &KruskalTensor,
        residual: &mut ResidualStore,
        fuse_next: bool,
    ) -> Result<f64> {
        if !fuse_next {
            // Final (or converged) iteration of the sketch phase: restore
            // the hand-off invariant with one exact refresh so the polish
            // phase — or a streaming carry — starts from fresh values.
            self.h0_ready = false;
            self.refresh_residual(observed, model, residual)?;
            return Ok(residual.frob_norm_sq());
        }
        // One S-draw sweep estimates ‖E‖²_F = Σ e² (importance-weighted)
        // and banks the mode-0 MTTKRP estimate from the same draws — the
        // sampled analogue of the exact backend's fused pass.
        self.draw();
        self.h0.fill(0.0);
        let inv_s = 1.0 / self.samples as f64;
        let mut frob = 0.0;
        for &pos in &self.draws {
            let idx = self.observed.index(pos);
            hadamard_rows_skip_into(model.factors(), 0, idx, &mut self.scratch.had)?;
            let pred = dot(&self.scratch.had, model.factors()[0].row(idx[0]));
            let e = self.observed.value(pos) - pred;
            let p = self.sampler.prob(pos);
            frob += e * e / p;
            let w = e * inv_s / p;
            let row = self.h0.row_mut(idx[0]);
            for (o, &h) in row.iter_mut().zip(self.scratch.had.iter()) {
                *o += w * h;
            }
        }
        self.h0_ready = true;
        Ok(frob * inv_s)
    }

    fn clock(&self, iter: usize) -> f64 {
        (self.clock)(iter)
    }
}
