//! Hyper-parameters of the ADMM completion solvers.

/// How many exact polish iterations a sketched solve runs by default
/// (the tail of the iteration budget handed to [`crate::AdmmSolver`]'s
/// exact backend).
pub const DEFAULT_POLISH_ITERS: usize = 8;

/// Which solver tier executes the per-iteration kernels.
///
/// `Exact` is the bit-pinned reference path (every golden trace and
/// equivalence proptest runs it). `Sketched` is the first *approximate*
/// tier: per-mode MTTKRPs are estimated from a deterministic seeded
/// sample of the nonzeros (`O(samples·N·R)` per iteration instead of
/// `O(nnz·N·R)`), and the final `polish_iters` iterations hand off to the
/// exact host backend so the returned model and RMSE are exact-path
/// artifacts. Its accuracy contract is statistical, not bitwise — the
/// accuracy gate (`tests/accuracy_gate.rs`, tolerance constant in
/// `distenc_eval::accuracy`) pins final-RMSE parity with the exact
/// solver.
///
/// Documented fallbacks (never errors, never panics):
/// * `samples ≥ nnz` — sampling cannot beat a full sweep, so the whole
///   run degenerates to the exact tier, bit-identical to `Exact`.
/// * `polish_iters ≥ max_iters` — no sketch phase remains; ditto.
/// * the distributed [`crate::DisTenC`] driver — Algorithm 3's virtual
///   cluster models the exact schedule only, so it always runs `Exact`
///   whatever the config says.
/// * combined with [`AdmmConfig::fused`] — the sketch phase always runs
///   its own fused sampled sweep (the flag is an exact-path schedule
///   switch); the polish phase honors the flag as usual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverTier {
    /// The exact reference path (the default).
    Exact,
    /// Sampled MTTKRP steps followed by an exact polish phase.
    Sketched {
        /// Entries drawn per sampled kernel step (must be ≥ 1).
        samples: usize,
        /// Trailing iterations run on the exact backend.
        polish_iters: usize,
    },
}

impl SolverTier {
    /// The tier requested by the `DISTENC_TIER` environment variable:
    /// `exact` (or unset) for [`SolverTier::Exact`];
    /// `sketched[:SAMPLES[:POLISH]]` for [`SolverTier::Sketched`] (with
    /// `SAMPLES` defaulting to 4096 draws and `POLISH` to
    /// [`DEFAULT_POLISH_ITERS`]). Unparseable values fall back to
    /// `Exact`, mirroring how `DISTENC_THREADS` falls back to the
    /// sequential backend.
    pub fn from_env() -> SolverTier {
        match std::env::var("DISTENC_TIER") {
            Ok(raw) => SolverTier::parse(&raw),
            Err(_) => SolverTier::Exact,
        }
    }

    /// Parse a `DISTENC_TIER`-style spec (see [`SolverTier::from_env`]).
    pub fn parse(raw: &str) -> SolverTier {
        let mut parts = raw.trim().split(':');
        match parts.next().map(str::trim) {
            Some("sketched") => {
                let samples = parts
                    .next()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .unwrap_or(4096);
                let polish_iters = parts
                    .next()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .unwrap_or(DEFAULT_POLISH_ITERS);
                SolverTier::Sketched { samples, polish_iters }
            }
            _ => SolverTier::Exact,
        }
    }

    /// Whether this tier is the sketched one.
    pub fn is_sketched(&self) -> bool {
        matches!(self, SolverTier::Sketched { .. })
    }
}

impl Default for SolverTier {
    /// The default comes from the environment (see
    /// [`SolverTier::from_env`]), so `DISTENC_TIER=sketched cargo run`
    /// flips the tier without touching any call site — the same pattern
    /// `DISTENC_THREADS` uses for the execution backend.
    fn default() -> Self {
        SolverTier::from_env()
    }
}

/// When (and where) the solver snapshots its state for fault recovery.
///
/// Checkpoints are an **exact-tier** artifact: they capture the solver
/// loop's complete per-iteration state (factors, ADMM duals, penalty,
/// residual, trace), and a solve resumed from one finishes with
/// bit-identical factors and RMSE to the uninterrupted run (the recovery
/// invariant, proven in `tests/fault_recovery.rs`). The sketched tier's
/// phases strip the policy and run checkpoint-free.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Snapshot after every `n`-th completed iteration (must be ≥ 1).
    pub every_n_iters: usize,
    /// Where the host solver writes snapshots. `None` means no on-disk
    /// persistence: the distributed driver keeps its latest snapshot on
    /// the driver (its simulated "reliable store") and ignores this
    /// field, while the host solver skips checkpointing entirely.
    pub path: Option<std::path::PathBuf>,
}

impl CheckpointPolicy {
    /// Policy snapshotting every `n` iterations with no on-disk path.
    pub fn every(n: usize) -> Self {
        CheckpointPolicy { every_n_iters: n, path: None }
    }

    /// Builder-style on-disk destination for host-solver snapshots.
    pub fn with_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }
}

/// Configuration shared by [`crate::AdmmSolver`] (Algorithm 1) and
/// [`crate::DisTenC`] (Algorithm 3). Field names follow the paper's
/// symbols.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmConfig {
    /// CP rank `R` (pre-defined input, §II-B).
    pub rank: usize,
    /// Ridge weight `λ` on `‖A⁽ⁿ⁾‖²_F`.
    pub lambda: f64,
    /// Trace-regularizer weight `αₙ` (one value applied to every mode that
    /// has auxiliary information).
    pub alpha: f64,
    /// Initial ADMM penalty `η₀`.
    pub eta0: f64,
    /// Penalty growth factor `ρ` (`ηₜ₊₁ = min(ρηₜ, η_max)`).
    pub rho: f64,
    /// Penalty ceiling `η_max`.
    pub eta_max: f64,
    /// Iteration cap `T`.
    pub max_iters: usize,
    /// Convergence tolerance on `max ₙ ‖A⁽ⁿ⁾ₜ₊₁ − A⁽ⁿ⁾ₜ‖_F` (Algorithm 3
    /// line 15).
    pub tol: f64,
    /// Truncation width `K` of the Laplacian eigendecompositions (§III-B).
    pub eigen_k: usize,
    /// RNG seed for factor initialization (and Lanczos starts).
    pub seed: u64,
    /// Project factors onto the non-negative orthant after each update
    /// (the `A⁽ⁿ⁾ ≥ 0` constraint of Eq. 4; off by default because the
    /// synthetic-error data of §IV-A is signed).
    pub nonneg: bool,
    /// Block-boundary strategy for the distributed solver (Algorithm 2's
    /// greedy balancing by default; the equal-width baseline exists for
    /// the load-balancing ablation).
    pub partition: distenc_partition::PartitionStrategy,
    /// Use the compressed-sparse-fiber MTTKRP (§III-C's SPLATT layout) in
    /// the serial solver instead of the COO kernel. Identical results;
    /// faster on fiber-dense tensors (the `kernels` bench quantifies it).
    /// Superseded by [`AdmmConfig::layout`]: this legacy switch only
    /// matters when `layout` is `None` and `DISTENC_LAYOUT` is unset.
    pub use_csf: bool,
    /// Which storage layout the host solver keeps the residual tensor in
    /// (see [`distenc_tensor::LayoutKind`]): flat COO, CSF fiber trees,
    /// or the cache-blocked tiled layout. `None` (the default) resolves
    /// at solve time with precedence **config > CLI > env**: the
    /// `--layout` CLI flag writes this field, the `DISTENC_LAYOUT`
    /// environment variable is consulted next (unknown names are typed
    /// errors, never silent fallbacks), and finally the legacy
    /// [`AdmmConfig::use_csf`] mapping applies (`true` → CSF, `false` →
    /// COO). See [`AdmmConfig::resolved_layout`].
    pub layout: Option<distenc_tensor::LayoutKind>,
    /// Host execution backend for the solver's per-iteration kernels
    /// (MTTKRP, residual). Bit-identical results under every setting —
    /// see `distenc-dataflow`'s `exec` module; defaults from the
    /// `DISTENC_THREADS` environment variable.
    pub exec: distenc_dataflow::ExecMode,
    /// Fuse the end-of-iteration residual refresh with the *next*
    /// iteration's mode-0 MTTKRP into a single sweep over the nonzeros
    /// (N passes per iteration instead of N+1 for an order-N tensor).
    /// Bit-identical to the unfused schedule — the fused kernels replay
    /// the exact same floating-point folds — so this is on by default;
    /// the switch exists for the ablation and the pass-count gate.
    pub fused: bool,
    /// Which solver tier runs the per-iteration kernels (see
    /// [`SolverTier`]): the bit-pinned exact path, or the sampled
    /// sketched tier with an exact final polish. Defaults from the
    /// `DISTENC_TIER` environment variable (unset ⇒ exact).
    pub solver_tier: SolverTier,
    /// Optional checkpoint cadence for fault recovery (see
    /// [`CheckpointPolicy`]). `None` (the default) never snapshots.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        AdmmConfig {
            rank: 10,
            lambda: 0.1,
            alpha: 1.0,
            eta0: 1.0,
            rho: 1.05,
            eta_max: 1.0e6,
            max_iters: 60,
            tol: 1.0e-3,
            eigen_k: 20,
            seed: 42,
            nonneg: false,
            partition: distenc_partition::PartitionStrategy::Greedy,
            use_csf: false,
            layout: None,
            exec: distenc_dataflow::ExecMode::default(),
            fused: true,
            solver_tier: SolverTier::default(),
            checkpoint: None,
        }
    }
}

impl AdmmConfig {
    /// Builder-style rank override.
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Builder-style host-execution-backend override.
    pub fn with_exec(mut self, exec: distenc_dataflow::ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Builder-style iteration cap override.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Builder-style auxiliary-weight override.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style tolerance override.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Builder-style eigen-truncation override.
    pub fn with_eigen_k(mut self, k: usize) -> Self {
        self.eigen_k = k;
        self
    }

    /// Builder-style fused-sweep override (see [`AdmmConfig::fused`]).
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Builder-style solver-tier override (see [`SolverTier`]).
    pub fn with_tier(mut self, tier: SolverTier) -> Self {
        self.solver_tier = tier;
        self
    }

    /// Builder-style sketched-tier shorthand: `samples` draws per sampled
    /// step and the default exact polish tail
    /// ([`DEFAULT_POLISH_ITERS`]).
    pub fn with_sketched(mut self, samples: usize) -> Self {
        self.solver_tier =
            SolverTier::Sketched { samples, polish_iters: DEFAULT_POLISH_ITERS };
        self
    }

    /// Builder-style checkpoint-policy override (see
    /// [`CheckpointPolicy`]).
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Builder-style residual-layout override (see [`AdmmConfig::layout`]).
    pub fn with_layout(mut self, layout: distenc_tensor::LayoutKind) -> Self {
        self.layout = Some(layout);
        self
    }

    /// The residual layout this config selects, with the documented
    /// precedence: an explicit [`AdmmConfig::layout`] wins, else the
    /// `DISTENC_LAYOUT` environment variable (an unknown name is a typed
    /// error, consistent with `--layout` parsing and unlike
    /// `DISTENC_TIER`'s silent fallback — a typo must not silently
    /// change which kernels run), else the legacy [`AdmmConfig::use_csf`]
    /// mapping.
    pub fn resolved_layout(
        &self,
    ) -> std::result::Result<distenc_tensor::LayoutKind, String> {
        use distenc_tensor::LayoutKind;
        if let Some(kind) = self.layout {
            return Ok(kind);
        }
        match LayoutKind::from_env() {
            Ok(Some(kind)) => Ok(kind),
            Ok(None) => Ok(if self.use_csf { LayoutKind::Csf } else { LayoutKind::Coo }),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Sanity-check parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.rank == 0 {
            return Err("rank must be ≥ 1".into());
        }
        if self.lambda < 0.0 || self.alpha < 0.0 {
            return Err("λ and α must be non-negative".into());
        }
        if self.eta0 <= 0.0 || self.eta_max < self.eta0 {
            return Err("need 0 < η₀ ≤ η_max".into());
        }
        if self.rho < 1.0 {
            return Err("ρ must be ≥ 1 (penalty must not shrink)".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be ≥ 1".into());
        }
        if !(self.tol.is_finite() && self.tol > 0.0) {
            return Err("tol must be positive".into());
        }
        if let SolverTier::Sketched { samples, .. } = self.solver_tier {
            if samples == 0 {
                return Err("sketched tier needs samples ≥ 1".into());
            }
        }
        if let Some(policy) = &self.checkpoint {
            if policy.every_n_iters == 0 {
                return Err("checkpoint cadence must be ≥ 1 iteration".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(AdmmConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let c = AdmmConfig::default()
            .with_rank(5)
            .with_max_iters(9)
            .with_alpha(0.5)
            .with_seed(7)
            .with_tol(1e-6)
            .with_eigen_k(3)
            .with_fused(false);
        assert!(!c.fused);
        assert!(AdmmConfig::default().fused, "fusion is the default schedule");
        assert_eq!(c.rank, 5);
        assert_eq!(c.max_iters, 9);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.tol, 1e-6);
        assert_eq!(c.eigen_k, 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(AdmmConfig { rank: 0, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig { lambda: -1.0, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig { eta0: 0.0, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig { rho: 0.5, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig { eta_max: 0.1, eta0: 1.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(AdmmConfig { max_iters: 0, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig { tol: f64::NAN, ..Default::default() }.validate().is_err());
        assert!(AdmmConfig::default().with_sketched(0).validate().is_err());
    }

    #[test]
    fn tier_spec_parses() {
        assert_eq!(SolverTier::parse("exact"), SolverTier::Exact);
        assert_eq!(SolverTier::parse("nonsense"), SolverTier::Exact);
        assert_eq!(
            SolverTier::parse("sketched"),
            SolverTier::Sketched { samples: 4096, polish_iters: DEFAULT_POLISH_ITERS }
        );
        assert_eq!(
            SolverTier::parse(" sketched:512 "),
            SolverTier::Sketched { samples: 512, polish_iters: DEFAULT_POLISH_ITERS }
        );
        assert_eq!(
            SolverTier::parse("sketched:512:3"),
            SolverTier::Sketched { samples: 512, polish_iters: 3 }
        );
    }

    #[test]
    fn explicit_layout_beats_use_csf() {
        // Env-independent precedence check: an explicit config layout
        // wins over the legacy flag regardless of DISTENC_LAYOUT (the
        // env and use_csf fallback cases live in
        // tests/layout_equivalence.rs, which owns the variable).
        use distenc_tensor::LayoutKind;
        let c = AdmmConfig { use_csf: true, ..Default::default() }
            .with_layout(LayoutKind::Tiled);
        assert_eq!(c.resolved_layout().unwrap(), LayoutKind::Tiled);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sketched_builders_chain() {
        let c = AdmmConfig::default()
            .with_tier(SolverTier::Sketched { samples: 100, polish_iters: 2 });
        assert_eq!(c.solver_tier, SolverTier::Sketched { samples: 100, polish_iters: 2 });
        assert!(c.solver_tier.is_sketched());
        let c = AdmmConfig::default().with_sketched(777);
        assert_eq!(
            c.solver_tier,
            SolverTier::Sketched { samples: 777, polish_iters: DEFAULT_POLISH_ITERS }
        );
        assert!(c.validate().is_ok());
    }
}
