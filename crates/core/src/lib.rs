//! **DisTenC** — distributed trace-regularized tensor completion
//! (Ge et al., ICDE 2018).
//!
//! The problem (Eq. 4): given a partially observed `N`-order tensor `T`
//! with observation mask `Ω` and per-mode similarity matrices, find a
//! rank-`R` CP model minimizing
//!
//! ```text
//!   ½‖X − [[A⁽¹⁾,…,A⁽ᴺ⁾]]‖²_F + (λ/2)Σₙ‖A⁽ⁿ⁾‖²_F + Σₙ (αₙ/2)·tr(B⁽ⁿ⁾ᵀLₙB⁽ⁿ⁾)
//!   s.t.  Ω∗X = T,   A⁽ⁿ⁾ = B⁽ⁿ⁾
//! ```
//!
//! solved by ADMM (Algorithm 1). This crate provides:
//!
//! * [`admm`] — the serial reference solver (Algorithm 1, with the
//!   efficient updates of §III already applied; it is the correctness
//!   oracle for the distributed version),
//! * [`distenc`] — Algorithm 3: the distributed solver executing on a
//!   [`distenc_dataflow::Cluster`], with greedy blocking (Algorithm 2),
//!   cached Gram matrices, eigendecomposed Laplacians, and
//!   residual-tensor updates,
//! * [`config`] — hyper-parameters shared by both solvers,
//! * [`trace`] — convergence traces (training RMSE vs time, the data
//!   behind Figs. 6b/7b),
//! * [`model`] — the analytical cost/memory model (Lemmas 1–3) used by the
//!   large-scale scalability experiments (Fig. 3) where materializing the
//!   tensor is impossible by design.

#![warn(missing_docs)]

pub mod admm;
pub mod config;
pub mod distenc;
pub mod model;
pub mod objective;
pub(crate) mod solver;
pub mod trace;

pub use admm::{AdmmSolver, ResidualHandoff};
pub use config::{AdmmConfig, CheckpointPolicy, SolverTier, DEFAULT_POLISH_ITERS};
pub use distenc_tensor::{LayoutAccel, LayoutKind};
pub use distenc::DisTenC;
pub use model::{MethodModel, RunOutcome, WorkloadSpec};
pub use objective::{primal_objective, Objective};
pub use solver::checkpoint::{Checkpoint, CheckpointError};
pub use trace::{ConvergenceTrace, TracePoint};

use distenc_tensor::KruskalTensor;

/// One tick on the pass-count instrument per full entry-list sweep over
/// `entries` nonzeros the *cluster backend* performs locally (the host
/// backend's sweeps are recorded by the `distenc-tensor` kernels
/// themselves). Compiles to nothing without the `pass-count` feature; one
/// tick per kernel invocation, never per block or thread, so counts are
/// host-independent.
#[inline]
pub(crate) fn record_entry_sweep(entries: usize) {
    #[cfg(feature = "pass-count")]
    distenc_dataflow::passes::record_sweep(entries);
    #[cfg(not(feature = "pass-count"))]
    let _ = entries;
}

/// Record a sampled partial gather over `entries` nonzeros on the
/// entries-touched counter (no sweep tick — a sampled gather is not a
/// full traversal). Used by the sketched solver tier; compiles to nothing
/// without the `pass-count` feature.
#[inline]
pub(crate) fn record_entry_gather(entries: usize) {
    #[cfg(feature = "pass-count")]
    distenc_dataflow::passes::record_gather(entries);
    #[cfg(not(feature = "pass-count"))]
    let _ = entries;
}

/// Errors from the completion solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid problem setup (shape/rank/similarity mismatches).
    Invalid(String),
    /// Propagated linear-algebra failure.
    Linalg(distenc_linalg::LinalgError),
    /// Propagated tensor-algebra failure.
    Tensor(distenc_tensor::TensorError),
    /// Propagated engine failure (including the simulated O.O.M./O.O.T.
    /// and injected machine loss / task failure).
    Dataflow(distenc_dataflow::DataflowError),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(solver::checkpoint::CheckpointError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Invalid(msg) => write!(f, "invalid completion setup: {msg}"),
            CoreError::Linalg(e) => write!(f, "{e}"),
            CoreError::Tensor(e) => write!(f, "{e}"),
            CoreError::Dataflow(e) => write!(f, "{e}"),
            CoreError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<distenc_linalg::LinalgError> for CoreError {
    fn from(e: distenc_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<distenc_tensor::TensorError> for CoreError {
    fn from(e: distenc_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<distenc_dataflow::DataflowError> for CoreError {
    fn from(e: distenc_dataflow::DataflowError) -> Self {
        CoreError::Dataflow(e)
    }
}

impl From<solver::checkpoint::CheckpointError> for CoreError {
    fn from(e: solver::checkpoint::CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Outcome of a completion run.
#[derive(Debug, Clone)]
pub struct CompletionResult {
    /// The learned CP model; unobserved cells are predicted by
    /// [`KruskalTensor::eval`].
    pub model: KruskalTensor,
    /// Per-iteration convergence data.
    pub trace: ConvergenceTrace,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the factor-delta criterion fired before `max_iters`.
    pub converged: bool,
}
