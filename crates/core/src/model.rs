//! Analytical cost & memory models (Lemmas 1–3).
//!
//! Fig. 3 evaluates tensors up to `10⁹×10⁹×10⁹` — sizes at which even the
//! *factor matrices* exceed any real machine, let alone this simulation.
//! The original experiments are only possible because per-machine state
//! scales with the **active** rows (`min(Iₙ, nnz)`), and the failures the
//! figure reports (O.O.M., out-of-time) are themselves the data points.
//! This module computes those outcomes analytically, with the same cost
//! constants the engine charges, so the small-scale *measured* runs and
//! the large-scale *modelled* runs form one consistent series (the
//! model-vs-engine fidelity is asserted by tests).

use distenc_dataflow::ClusterConfig;

/// Workload description for the scalability models.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Mode lengths `I₁…I_N` (u64: Fig. 3 goes to 10⁹).
    pub dims: Vec<u64>,
    /// Number of observed non-zeros.
    pub nnz: u64,
    /// CP rank `R`.
    pub rank: u64,
    /// Laplacian truncation width `K`.
    pub eigen_k: u64,
    /// Iterations to model (the paper's scalability plots report fixed-
    /// iteration running time).
    pub iters: u64,
}

impl WorkloadSpec {
    /// A cubic `I×I×I` workload, the shape of every Fig. 3 sweep.
    pub fn cube(dim: u64, nnz: u64, rank: u64) -> Self {
        WorkloadSpec { dims: vec![dim; 3], nnz, rank, eigen_k: 20, iters: 20 }
    }

    /// Tensor order.
    pub fn order(&self) -> u64 {
        self.dims.len() as u64
    }

    /// Active rows of mode `n`: at most one distinct index per non-zero,
    /// so `min(Iₙ, nnz)`. The quantity that lets DisTenC/SCouT survive
    /// `I = 10⁹` while full-matrix methods die (DESIGN.md §5).
    pub fn active(&self, n: usize) -> u64 {
        self.dims[n].min(self.nnz)
    }

    /// Sum of active rows over all modes.
    pub fn active_total(&self) -> u64 {
        (0..self.dims.len()).map(|n| self.active(n)).sum()
    }

    /// Bytes of one COO entry (`N` indices + value).
    pub fn entry_bytes(&self) -> u64 {
        (self.order() + 1) * 8
    }
}

/// Modelled outcome of running a method on a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunOutcome {
    /// The run fits and finishes; estimated wall-clock (virtual) seconds.
    Completed {
        /// Estimated seconds.
        seconds: f64,
    },
    /// Per-machine memory demand exceeds capacity ("O.O.M." in Fig. 3).
    OutOfMemory {
        /// Bytes needed on the worst machine.
        needed: u64,
        /// Machine capacity.
        capacity: u64,
    },
    /// Estimated time exceeds the experiment budget ("O.O.T.", §IV-B's
    /// 8-hour cutoff).
    OutOfTime {
        /// Estimated seconds.
        estimated: f64,
        /// Budget seconds.
        budget: f64,
    },
}

impl RunOutcome {
    /// True when the run completes.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Seconds if completed, `+∞` otherwise (for plotting).
    pub fn seconds(&self) -> f64 {
        match self {
            RunOutcome::Completed { seconds } => *seconds,
            _ => f64::INFINITY,
        }
    }

    /// The label the paper's figures use.
    pub fn label(&self) -> String {
        match self {
            RunOutcome::Completed { seconds } => format!("{seconds:.1}s"),
            RunOutcome::OutOfMemory { .. } => "O.O.M.".to_string(),
            RunOutcome::OutOfTime { .. } => "O.O.T.".to_string(),
        }
    }
}

/// A scalability model of one method: how much memory the worst machine
/// needs, and how long the run takes, on a given cluster.
pub trait MethodModel {
    /// Method name as it appears in the figures.
    fn name(&self) -> &'static str;

    /// Peak bytes on the most loaded machine.
    fn mem_per_machine(&self, w: &WorkloadSpec, c: &ClusterConfig) -> u64;

    /// Estimated seconds for `w.iters` iterations (including setup).
    fn seconds(&self, w: &WorkloadSpec, c: &ClusterConfig) -> f64;

    /// Combine both into the figure's outcome.
    fn estimate(&self, w: &WorkloadSpec, c: &ClusterConfig) -> RunOutcome {
        let needed = self.mem_per_machine(w, c);
        if needed > c.mem_per_machine {
            return RunOutcome::OutOfMemory { needed, capacity: c.mem_per_machine };
        }
        let seconds = self.seconds(w, c);
        if let Some(budget) = c.time_budget {
            if seconds > budget {
                return RunOutcome::OutOfTime { estimated: seconds, budget };
            }
        }
        RunOutcome::Completed { seconds }
    }
}

/// The DisTenC model, mirroring the engine charges of
/// [`crate::DisTenC`] term by term (Lemmas 1–3).
#[derive(Debug, Clone, Copy, Default)]
pub struct DisTenCModel;

impl MethodModel for DisTenCModel {
    fn name(&self) -> &'static str {
        "DisTenC"
    }

    fn mem_per_machine(&self, w: &WorkloadSpec, c: &ClusterConfig) -> u64 {
        let m = c.machines as u64;
        let r = w.rank;
        let k = w.eigen_k;
        // Tensor + residual blocks, spread over machines (Lemma 2's
        // O(nnz) term).
        let tensor = w.nnz * (w.entry_bytes() + 8) / m;
        // A, B, Y rows (3 matrices) + eigenbasis rows, active rows only,
        // row-partitioned.
        let factors: u64 = (0..w.dims.len())
            .map(|n| w.active(n) * (3 * r + k) * 8 / m)
            .sum();
        // Broadcast R×R self-products for every mode on every machine,
        // plus eigenvalue arrays (Lemma 2's O(M N R²) + O(N K)).
        let broadcasts = w.order() * (r * r + k) * 8;
        // Stage working set: the largest transient is MTTKRP partial
        // output + fetched remote factor rows.
        let working: u64 = (0..w.dims.len()).map(|n| w.active(n) * r * 8 / m).sum::<u64>()
            + w.nnz * (w.entry_bytes() + 2 * 8) / m;
        tensor + factors + broadcasts + working
    }

    fn seconds(&self, w: &WorkloadSpec, c: &ClusterConfig) -> f64 {
        let m = c.machines as f64;
        let cores = c.cores_per_machine as f64;
        let r = w.rank as f64;
        let k = w.eigen_k as f64;
        let n_modes = w.dims.len() as f64;
        let nnz = w.nnz as f64;
        let act: Vec<f64> = (0..w.dims.len()).map(|n| w.active(n) as f64).collect();
        let act_sum: f64 = act.iter().sum();
        let cost = &c.cost;

        // ---- setup: partition shuffle + eigendecompositions ------------
        let entry = w.entry_bytes() as f64;
        let setup_net = nnz * entry * (m - 1.0) / m;
        let setup = nnz / (m * cores) * cost.seconds_per_flop
            + setup_net / m * cost.seconds_per_net_byte
            + act_sum * k * 8.0 * cost.seconds_per_flop; // Lanczos O(K·I)

        // ---- per-iteration compute flops (Lemma 1) ----------------------
        let mut flops = 0.0;
        for a in &act {
            // Gram (I R²) + B-update (2R + 2KR per row) + A-update
            // (2R² + 3R per row) + Y (R per row) + delta (R per row).
            flops += a * (r * r + 2.0 * r + 2.0 * k * r + 2.0 * r * r + 3.0 * r + 2.0 * r);
        }
        // MTTKRP per mode + residual refresh: (N+1) sparse passes.
        flops += (n_modes + 1.0) * nnz * n_modes * r;
        flops += n_modes * r * r * r; // R×R solves (replicated; negligible)

        // ---- per-iteration shuffled bytes (Lemma 3) ----------------------
        let mut shuffle = 0.0;
        for (n, a) in act.iter().enumerate() {
            // Factor fetches for MTTKRP (modes ≠ n) …
            let others: f64 = act
                .iter()
                .enumerate()
                .filter(|&(kk, _)| kk != n)
                .map(|(_, v)| v)
                .sum();
            shuffle += (m - 1.0) / m * others * r * 8.0;
            // … partial-H combine, K×R reduce, R² reduce.
            shuffle += (m - 1.0) / m * a * r * 8.0;
            shuffle += (m - 1.0) * (k * r + r * r) * 8.0;
        }
        // Residual refresh fetches all modes' rows.
        shuffle += (m - 1.0) / m * act_sum * r * 8.0;
        let broadcast_per_iter = n_modes * (k * r + r * r) * 8.0;

        // ---- stages per iteration (latency) ------------------------------
        let stages = 7.0 * n_modes + 2.0;

        let per_iter = flops / (m * cores) * cost.seconds_per_flop
            + shuffle / m * cost.seconds_per_net_byte
            + broadcast_per_iter * cost.seconds_per_net_byte
            + stages * cost.stage_latency
            + if c.mode == distenc_dataflow::Platform::MapReduce {
                // Every stage spills inputs+outputs: dominated by the
                // sparse passes.
                (n_modes + 1.0) * nnz * entry / m * cost.seconds_per_disk_byte
            } else {
                0.0
            };

        setup + w.iters as f64 * per_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distenc_dataflow::ClusterConfig;

    fn paper() -> ClusterConfig {
        ClusterConfig::paper_spark()
    }

    #[test]
    fn active_rows_cap_at_nnz() {
        let w = WorkloadSpec::cube(1_000_000_000, 10_000_000, 20);
        assert_eq!(w.active(0), 10_000_000);
        let w2 = WorkloadSpec::cube(1_000, 10_000_000, 20);
        assert_eq!(w2.active(0), 1_000);
    }

    #[test]
    fn distenc_fits_billion_dims_at_fixed_nnz() {
        // The headline claim of Fig. 3a: DisTenC completes at I = 10⁹.
        let w = WorkloadSpec::cube(1_000_000_000, 10_000_000, 20);
        let out = DisTenCModel.estimate(&w, &paper());
        assert!(out.is_ok(), "DisTenC must fit at 10⁹: {out:?}");
    }

    #[test]
    fn memory_grows_with_nnz_not_dims_beyond_active() {
        let c = paper();
        // Both dims exceed nnz, so active rows are nnz-capped in both:
        // dimensionality stops mattering past the cap.
        let big_dim = DisTenCModel.mem_per_machine(&WorkloadSpec::cube(1 << 30, 1 << 24, 20), &c);
        let huge_dim =
            DisTenCModel.mem_per_machine(&WorkloadSpec::cube(1 << 40, 1 << 24, 20), &c);
        assert_eq!(huge_dim, big_dim);
        let more_nnz =
            DisTenCModel.mem_per_machine(&WorkloadSpec::cube(1 << 40, 1 << 27, 20), &c);
        assert!(more_nnz > huge_dim);
    }

    #[test]
    fn seconds_scale_down_with_machines() {
        let w = WorkloadSpec::cube(100_000, 10_000_000, 10);
        let t1 = DisTenCModel.seconds(&w, &paper().with_machines(1));
        let t8 = DisTenCModel.seconds(&w, &paper().with_machines(8));
        assert!(t8 < t1, "8 machines {t8} must beat 1 machine {t1}");
        // And not super-linearly (communication overhead exists).
        assert!(t1 / t8 < 8.0);
        assert!(t1 / t8 > 2.0);
    }

    #[test]
    fn rank_scaling_is_flat_ish() {
        // Fig. 3c: DisTenC's curve grows sub-cubically in rank (the Gram
        // trick caps it at R²·I + R·nnz; ALS's normal equations are R³·I).
        // A 50× rank increase must cost far less than 50³ and even less
        // than 50² — the cross-method comparison lives in distenc-eval.
        let c = paper();
        let t10 = DisTenCModel.seconds(&WorkloadSpec::cube(1_000_000, 10_000_000, 10), &c);
        let t500 = DisTenCModel.seconds(&WorkloadSpec::cube(1_000_000, 10_000_000, 500), &c);
        assert!(t500 / t10 < 300.0, "ratio {}", t500 / t10);
        assert!(t500 > t10);
    }

    #[test]
    fn mapreduce_mode_slower() {
        let w = WorkloadSpec::cube(100_000, 10_000_000, 10);
        let spark = DisTenCModel.seconds(&w, &paper());
        let mr = DisTenCModel.seconds(&w, &ClusterConfig::paper_mapreduce());
        assert!(mr > spark * 1.5, "MapReduce {mr} vs Spark {spark}");
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(RunOutcome::Completed { seconds: 2.0 }.label(), "2.0s");
        assert_eq!(RunOutcome::OutOfMemory { needed: 1, capacity: 0 }.label(), "O.O.M.");
        assert_eq!(
            RunOutcome::OutOfTime { estimated: 9.0, budget: 1.0 }.label(),
            "O.O.T."
        );
    }

    #[test]
    fn model_tracks_engine_within_factor_three() {
        // Fidelity: the analytical model and the actual engine-accounted
        // run must agree on the order of magnitude for a small workload.
        use crate::{AdmmConfig, DisTenC};
        use distenc_dataflow::Cluster;
        use distenc_tensor::{CooTensor, KruskalTensor};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let shape = [60usize, 60, 60];
        let nnz = 6000usize;
        let rank = 4usize;
        let truth = KruskalTensor::random(&shape, rank, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        let observed = truth.eval_at(&mask).unwrap();

        let iters = 5usize;
        let cc = ClusterConfig::test(4).with_time_budget(None);
        let cluster = Cluster::new(cc.clone());
        let cfg = AdmmConfig { rank, max_iters: iters, tol: 1e-15, ..Default::default() };
        let _ = DisTenC::new(&cluster, cfg)
            .unwrap()
            .solve(&observed, &[None, None, None])
            .unwrap();
        let engine_seconds = cluster.now();

        let w = WorkloadSpec {
            dims: vec![60; 3],
            nnz: observed.nnz() as u64,
            rank: rank as u64,
            eigen_k: 0,
            iters: iters as u64,
        };
        let model_seconds = DisTenCModel.seconds(&w, &cc);
        let ratio = model_seconds / engine_seconds;
        assert!(
            (0.33..3.0).contains(&ratio),
            "model {model_seconds}s vs engine {engine_seconds}s (ratio {ratio})"
        );
    }
}
