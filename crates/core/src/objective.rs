//! The optimization objective (Eq. 4) as an evaluable quantity.
//!
//! Solvers drive the factor-delta criterion, but tests, diagnostics, and
//! hyper-parameter studies want the actual objective value:
//!
//! `J(A) = ½‖Ω∗(T − [[A…]])‖²_F + (λ/2)Σₙ‖A⁽ⁿ⁾‖²_F
//!         + Σₙ(αₙ/2)·tr(A⁽ⁿ⁾ᵀLₙA⁽ⁿ⁾)`
//!
//! (the primal objective with the consensus constraint `A = B`
//! substituted — what ADMM converges to).

use crate::Result;
use distenc_graph::Laplacian;
use distenc_tensor::residual::residual;
use distenc_tensor::{CooTensor, KruskalTensor};

/// Decomposed objective value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objective {
    /// `½‖Ω∗(T − [[A…]])‖²_F` — the data-fit term.
    pub fit: f64,
    /// `(λ/2)Σₙ‖A⁽ⁿ⁾‖²_F` — the ridge term.
    pub ridge: f64,
    /// `Σₙ(αₙ/2)·tr(A⁽ⁿ⁾ᵀLₙA⁽ⁿ⁾)` — the trace-regularization term.
    pub trace: f64,
}

impl Objective {
    /// Total objective value.
    pub fn total(&self) -> f64 {
        self.fit + self.ridge + self.trace
    }
}

/// Evaluate the primal objective of Eq. 4 for a model.
pub fn primal_objective(
    observed: &CooTensor,
    model: &KruskalTensor,
    laplacians: &[Option<&Laplacian>],
    lambda: f64,
    alpha: f64,
) -> Result<Objective> {
    let e = residual(observed, model)?;
    let fit = 0.5 * e.frob_norm_sq();
    let ridge = 0.5 * lambda * model.factors().iter().map(|f| f.frob_norm_sq()).sum::<f64>();
    let mut trace = 0.0;
    for (n, lap) in laplacians.iter().enumerate() {
        if let Some(l) = lap {
            trace += 0.5 * alpha * l.trace_quadratic(&model.factors()[n]);
        }
    }
    Ok(Objective { fit, ridge, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmmConfig, AdmmSolver};
    use distenc_graph::builders::tridiagonal_chain;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b1);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        truth.eval_at(&mask).unwrap()
    }

    #[test]
    fn exact_model_has_zero_fit() {
        let truth = KruskalTensor::random(&[6, 6, 6], 2, 1);
        let mut mask = CooTensor::new(vec![6, 6, 6]);
        mask.push(&[1, 2, 3], 1.0).unwrap();
        mask.push(&[0, 0, 0], 1.0).unwrap();
        let observed = truth.eval_at(&mask).unwrap();
        let obj =
            primal_objective(&observed, &truth, &[None, None, None], 0.0, 0.0).unwrap();
        assert!(obj.fit < 1e-15);
        assert_eq!(obj.ridge, 0.0);
        assert_eq!(obj.trace, 0.0);
    }

    #[test]
    fn ridge_and_trace_terms_match_manual() {
        let model = KruskalTensor::random(&[5, 5], 2, 3);
        let observed = planted(&[5, 5], 2, 10, 4);
        let lap = Laplacian::from_similarity(tridiagonal_chain(5));
        let obj =
            primal_objective(&observed, &model, &[Some(&lap), None], 2.0, 3.0).unwrap();
        let manual_ridge =
            model.factors().iter().map(|f| f.frob_norm_sq()).sum::<f64>();
        assert!((obj.ridge - manual_ridge).abs() < 1e-12);
        let manual_trace = 1.5 * lap.trace_quadratic(&model.factors()[0]);
        assert!((obj.trace - manual_trace).abs() < 1e-12);
        assert!((obj.total() - (obj.fit + obj.ridge + obj.trace)).abs() < 1e-15);
    }

    #[test]
    fn solver_decreases_the_objective() {
        let observed = planted(&[12, 12, 12], 2, 500, 7);
        let laps: Vec<Laplacian> = (0..3)
            .map(|_| Laplacian::from_similarity(tridiagonal_chain(12)))
            .collect();
        let refs: Vec<Option<&Laplacian>> = laps.iter().map(Some).collect();
        let cfg = AdmmConfig {
            rank: 2,
            max_iters: 30,
            tol: 1e-12,
            alpha: 1.0,
            lambda: 0.01,
            ..Default::default()
        };
        let init = KruskalTensor::random(&[12, 12, 12], 2, cfg.seed);
        let before =
            primal_objective(&observed, &init, &refs, cfg.lambda, cfg.alpha).unwrap();
        let res = AdmmSolver::new(cfg.clone()).unwrap().solve(&observed, &refs).unwrap();
        let after =
            primal_objective(&observed, &res.model, &refs, cfg.lambda, cfg.alpha).unwrap();
        assert!(
            after.total() < before.total() * 0.5,
            "objective must drop: {} → {}",
            before.total(),
            after.total()
        );
    }
}
