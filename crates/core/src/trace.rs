//! Convergence traces — the data series behind Figs. 6b and 7b.

/// One sampled point of a solver run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Iteration index (0 = after the first iteration).
    pub iter: usize,
    /// Time at which the iteration finished. For distributed solvers this
    /// is the cluster's *virtual* clock; for serial solvers, wall-clock
    /// seconds.
    pub seconds: f64,
    /// Training RMSE over observed entries at this point.
    pub train_rmse: f64,
    /// `maxₙ ‖A⁽ⁿ⁾ₜ₊₁ − A⁽ⁿ⁾ₜ‖_F`, the convergence statistic.
    pub factor_delta: f64,
}

/// A full convergence trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceTrace {
    /// Sampled points in iteration order.
    pub points: Vec<TracePoint>,
}

impl ConvergenceTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point.
    pub fn push(&mut self, p: TracePoint) {
        self.points.push(p);
    }

    /// Final training RMSE, if any iterations ran.
    pub fn final_rmse(&self) -> Option<f64> {
        self.points.last().map(|p| p.train_rmse)
    }

    /// First time at which the training RMSE dropped to `target` or below
    /// — the "convergence rate" comparison of §IV-E (who reaches a given
    /// loss first).
    pub fn time_to_rmse(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.train_rmse <= target)
            .map(|p| p.seconds)
    }

    /// Total time of the run (time of the last point).
    pub fn total_seconds(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.seconds)
    }

    /// `(seconds, train_rmse)` series for plotting.
    pub fn series(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.seconds, p.train_rmse)).collect()
    }

    /// True if RMSE is non-increasing within a tolerance band (used by
    /// tests to assert sane optimization behaviour; ADMM is not strictly
    /// monotone, hence the slack).
    pub fn roughly_monotone(&self, slack: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].train_rmse <= w[0].train_rmse + slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(iter: usize, seconds: f64, rmse: f64) -> TracePoint {
        TracePoint { iter, seconds, train_rmse: rmse, factor_delta: 0.0 }
    }

    #[test]
    fn final_rmse_and_total_time() {
        let mut t = ConvergenceTrace::new();
        assert_eq!(t.final_rmse(), None);
        t.push(pt(0, 1.0, 0.9));
        t.push(pt(1, 2.5, 0.4));
        assert_eq!(t.final_rmse(), Some(0.4));
        assert_eq!(t.total_seconds(), 2.5);
    }

    #[test]
    fn time_to_rmse_finds_first_crossing() {
        let mut t = ConvergenceTrace::new();
        t.push(pt(0, 1.0, 0.9));
        t.push(pt(1, 2.0, 0.5));
        t.push(pt(2, 3.0, 0.3));
        assert_eq!(t.time_to_rmse(0.5), Some(2.0));
        assert_eq!(t.time_to_rmse(0.1), None);
    }

    #[test]
    fn roughly_monotone_with_slack() {
        let mut t = ConvergenceTrace::new();
        t.push(pt(0, 1.0, 0.5));
        t.push(pt(1, 2.0, 0.51)); // tiny bump
        t.push(pt(2, 3.0, 0.2));
        assert!(t.roughly_monotone(0.02));
        assert!(!t.roughly_monotone(0.0));
    }

    #[test]
    fn series_pairs() {
        let mut t = ConvergenceTrace::new();
        t.push(pt(0, 1.0, 0.9));
        assert_eq!(t.series(), vec![(1.0, 0.9)]);
    }
}
