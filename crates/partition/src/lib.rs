//! Load-balanced tensor blocking (DisTenC Algorithm 2, §III-C).
//!
//! Randomly slicing a sparse tensor into `P×Q×K` blocks produces load
//! imbalance because real tensors are skewed. Algorithm 2 instead chooses
//! per-mode boundaries greedily: walk the slices of a mode accumulating
//! non-zero counts; once a partition reaches the target size
//! `δ = nnz/P`, cut either after the current slice or before it —
//! whichever lands closer to `δ`.
//!
//! * [`greedy_boundaries`] — the boundary search for one mode,
//! * [`ModePartition`] — boundary lookup (`slice → partition`),
//! * [`TensorBlocks`] — the full `P₁×…×P_N` blocking of a [`CooTensor`],
//!   with per-block entry lists ready to become dataflow partitions,
//! * [`BalanceStats`] — imbalance diagnostics used by tests and the
//!   machine-scalability experiment.

#![warn(missing_docs)]

use distenc_tensor::CooTensor;

/// Greedy per-mode boundary search (Algorithm 2).
///
/// Takes the per-slice non-zero histogram `θ` of one mode and the desired
/// partition count `parts`; returns exactly `parts` exclusive end indices
/// (`w` in the paper), the last of which is `θ.len()`.
///
/// Runs in `O(I)` per mode — `O(N·nnz)` total including histogram
/// construction, as Lemma 1 states.
///
/// # Panics
/// Panics if `parts == 0`.
pub fn greedy_boundaries(theta: &[usize], parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one partition");
    let total: usize = theta.iter().sum();
    let delta = (total as f64 / parts as f64).max(1.0);
    let mut boundaries = Vec::with_capacity(parts);
    let mut sum = 0usize;
    let mut prev_cut = 0usize;
    for (i, &count) in theta.iter().enumerate() {
        if boundaries.len() + 1 == parts {
            break; // the final partition takes everything that remains
        }
        sum += count;
        if (sum as f64) >= delta {
            // Cut after slice i (overshoot) or before it (undershoot)?
            let over = sum as f64 - delta;
            let under = delta - (sum - count) as f64;
            // Never produce an empty partition: if cutting before `i`
            // would leave nothing (cut == prev_cut), cut after.
            if over <= under || i == prev_cut {
                boundaries.push(i + 1);
                sum = 0;
                prev_cut = i + 1;
            } else {
                boundaries.push(i);
                sum = count;
                prev_cut = i;
            }
        }
    }
    // Close out: all remaining partitions end at I (possibly empty tails
    // when slices ran out before `parts` cuts).
    while boundaries.len() < parts {
        boundaries.push(theta.len());
    }
    boundaries
}

/// Boundary table for one mode: partition `p` covers slice indices
/// `[start(p), end(p))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModePartition {
    /// Exclusive end index of each partition, non-decreasing; the final
    /// entry equals the mode length.
    pub boundaries: Vec<usize>,
}

impl ModePartition {
    /// Build from a slice histogram.
    pub fn from_histogram(theta: &[usize], parts: usize) -> Self {
        ModePartition { boundaries: greedy_boundaries(theta, parts) }
    }

    /// Equal-width boundaries ignoring the data distribution — the naive
    /// blocking the paper's §III-C warns "could result in load imbalance".
    /// Exists as the ablation baseline for Algorithm 2.
    pub fn equal_width(len: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        let boundaries = (1..=parts)
            .map(|p| (len * p).div_ceil(parts).min(len))
            .collect();
        ModePartition { boundaries }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.boundaries.len()
    }

    /// Partition containing slice `index` (binary search over boundaries).
    pub fn part_of(&self, index: usize) -> usize {
        // First boundary strictly greater than `index`.
        match self.boundaries.binary_search(&index) {
            // boundaries[p] == index means index is the *end* of p, so it
            // belongs to the next non-empty partition.
            Ok(mut p) => {
                while p + 1 < self.boundaries.len() && self.boundaries[p] == index {
                    p += 1;
                }
                p
            }
            Err(p) => p.min(self.boundaries.len() - 1),
        }
    }

    /// Half-open slice range of partition `p`.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        let start = if p == 0 { 0 } else { self.boundaries[p - 1] };
        start..self.boundaries[p]
    }
}

/// Imbalance diagnostics for a partitioning of `total` records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceStats {
    /// Largest partition (records).
    pub max: usize,
    /// Smallest partition (records).
    pub min: usize,
    /// Mean partition size.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the straggler factor of the
    /// slowest machine.
    pub imbalance: f64,
}

impl BalanceStats {
    /// Compute stats from per-partition record counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        let mean = if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        };
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        BalanceStats { max, min, mean, imbalance }
    }
}

/// A full blocking of a sparse tensor: per-mode greedy boundaries plus the
/// entries of every non-empty block, each block addressed by its
/// per-mode partition tuple (linearized row-major).
#[derive(Debug, Clone)]
pub struct TensorBlocks {
    /// Per-mode boundary tables.
    pub modes: Vec<ModePartition>,
    /// `(linear block id, entries)` for non-empty blocks, ascending by id.
    pub blocks: Vec<(usize, CooTensor)>,
    parts_per_mode: Vec<usize>,
}

/// How per-mode block boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Algorithm 2's greedy non-zero balancing (the paper's method).
    #[default]
    Greedy,
    /// Equal index widths (the naive baseline; ablation only).
    EqualWidth,
}

impl TensorBlocks {
    /// Block a tensor with `parts_per_mode[n]` partitions in mode `n`,
    /// using greedy (Algorithm 2) boundaries.
    ///
    /// # Panics
    /// Panics if `parts_per_mode` length differs from the tensor order or
    /// contains a zero.
    pub fn build(tensor: &CooTensor, parts_per_mode: &[usize]) -> Self {
        Self::build_with(tensor, parts_per_mode, PartitionStrategy::Greedy)
    }

    /// Block a tensor with an explicit boundary strategy.
    ///
    /// # Panics
    /// Panics if `parts_per_mode` length differs from the tensor order or
    /// contains a zero.
    pub fn build_with(
        tensor: &CooTensor,
        parts_per_mode: &[usize],
        strategy: PartitionStrategy,
    ) -> Self {
        assert_eq!(parts_per_mode.len(), tensor.order(), "one part count per mode");
        let modes: Vec<ModePartition> = (0..tensor.order())
            .map(|n| match strategy {
                PartitionStrategy::Greedy => {
                    ModePartition::from_histogram(&tensor.slice_nnz(n), parts_per_mode[n])
                }
                PartitionStrategy::EqualWidth => {
                    ModePartition::equal_width(tensor.shape()[n], parts_per_mode[n])
                }
            })
            .collect();
        // Bucket entries by block id. Use a BTreeMap for deterministic
        // ascending block order.
        let mut buckets: std::collections::BTreeMap<usize, CooTensor> =
            std::collections::BTreeMap::new();
        for (idx, v) in tensor.iter() {
            let mut id = 0usize;
            for (n, &i) in idx.iter().enumerate() {
                id = id * parts_per_mode[n] + modes[n].part_of(i);
            }
            buckets
                .entry(id)
                .or_insert_with(|| CooTensor::new(tensor.shape().to_vec()))
                .push(idx, v)
                .expect("index already validated by source tensor");
        }
        TensorBlocks {
            modes,
            blocks: buckets.into_iter().collect(),
            parts_per_mode: parts_per_mode.to_vec(),
        }
    }

    /// Partition counts per mode.
    pub fn parts_per_mode(&self) -> &[usize] {
        &self.parts_per_mode
    }

    /// Linear block id of an entry index.
    pub fn block_of(&self, index: &[usize]) -> usize {
        let mut id = 0usize;
        for (n, &i) in index.iter().enumerate() {
            id = id * self.parts_per_mode[n] + self.modes[n].part_of(i);
        }
        id
    }

    /// Decompose a linear block id into its per-mode partition tuple.
    pub fn block_coords(&self, mut id: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.parts_per_mode.len()];
        for (slot, &p) in coords.iter_mut().zip(&self.parts_per_mode).rev() {
            *slot = id % p;
            id /= p;
        }
        coords
    }

    /// Total non-zeros across blocks (must equal the source tensor's).
    pub fn total_nnz(&self) -> usize {
        self.blocks.iter().map(|(_, b)| b.nnz()).sum()
    }

    /// Per-partition non-zero counts along one mode (summing over the
    /// other modes) — the quantity Algorithm 2 balances.
    pub fn mode_load(&self, mode: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.parts_per_mode[mode]];
        for (id, block) in &self.blocks {
            let coords = self.block_coords(*id);
            counts[coords[mode]] += block.nnz();
        }
        counts
    }

    /// Balance statistics along one mode.
    pub fn balance(&self, mode: usize) -> BalanceStats {
        BalanceStats::from_counts(&self.mode_load(mode))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn boundaries_uniform_histogram() {
        // 12 slices of 10 nnz into 3 parts → cuts at 4, 8, 12.
        let theta = vec![10usize; 12];
        assert_eq!(greedy_boundaries(&theta, 3), vec![4, 8, 12]);
    }

    #[test]
    fn boundaries_skewed_histogram_balances() {
        // One huge slice followed by small ones.
        let theta = vec![100, 1, 1, 1, 1, 1, 1, 1];
        let b = greedy_boundaries(&theta, 2);
        // First partition should be just the huge slice.
        assert_eq!(b, vec![1, 8]);
    }

    #[test]
    fn boundaries_prefer_closer_cut() {
        // δ = 10. After slice 0 (sum=8) under target; slice 1 (sum=15)
        // over by 5 vs under by 2 → cut *before* slice 1.
        let theta = vec![8, 7, 3, 2];
        let b = greedy_boundaries(&theta, 2);
        assert_eq!(b, vec![1, 4]);
    }

    #[test]
    fn boundaries_never_empty_leading_partition() {
        // First slice alone exceeds δ: must still advance.
        let theta = vec![50, 1, 1];
        let b = greedy_boundaries(&theta, 3);
        assert_eq!(b[0], 1);
        assert_eq!(*b.last().unwrap(), 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn boundaries_more_parts_than_slices() {
        let theta = vec![5, 5];
        let b = greedy_boundaries(&theta, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(*b.last().unwrap(), 2);
    }

    #[test]
    fn part_of_respects_ranges() {
        let mp = ModePartition { boundaries: vec![3, 7, 10] };
        assert_eq!(mp.part_of(0), 0);
        assert_eq!(mp.part_of(2), 0);
        assert_eq!(mp.part_of(3), 1);
        assert_eq!(mp.part_of(6), 1);
        assert_eq!(mp.part_of(7), 2);
        assert_eq!(mp.part_of(9), 2);
        assert_eq!(mp.range(1), 3..7);
    }

    #[test]
    fn part_of_skips_empty_partitions() {
        let mp = ModePartition { boundaries: vec![3, 3, 10] };
        assert_eq!(mp.part_of(3), 2);
        assert_eq!(mp.range(1), 3..3);
    }

    fn random_tensor(shape: &[usize], nnz: usize, seed: u64) -> CooTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            t.push(&idx, 1.0).unwrap();
        }
        t
    }

    #[test]
    fn blocks_cover_all_entries() {
        let t = random_tensor(&[20, 30, 10], 500, 1);
        let blocks = TensorBlocks::build(&t, &[3, 4, 2]);
        assert_eq!(blocks.total_nnz(), t.nnz());
        // Every entry maps into the block that contains it.
        for (id, block) in &blocks.blocks {
            for (idx, _) in block.iter() {
                assert_eq!(blocks.block_of(idx), *id);
            }
        }
    }

    #[test]
    fn block_coords_roundtrip() {
        let t = random_tensor(&[10, 10, 10], 100, 2);
        let blocks = TensorBlocks::build(&t, &[2, 3, 4]);
        for id in 0..24 {
            let coords = blocks.block_coords(id);
            let mut back = 0;
            for (n, &c) in coords.iter().enumerate() {
                back = back * blocks.parts_per_mode()[n] + c;
            }
            assert_eq!(back, id);
        }
    }

    #[test]
    fn greedy_beats_equal_width_on_skewed_data() {
        // Zipf-ish skew along mode 0.
        let mut rng = StdRng::seed_from_u64(3);
        let dim = 100;
        let mut t = CooTensor::new(vec![dim, 50]);
        for _ in 0..5000 {
            // Index ∝ 1/(i+1): heavy head.
            let u: f64 = rng.random();
            let i = ((dim as f64).powf(u) - 1.0) as usize;
            let j = rng.random_range(0..50);
            t.push(&[i.min(dim - 1), j], 1.0).unwrap();
        }
        let parts = 5;
        let greedy = TensorBlocks::build(&t, &[parts, 1]);
        // Equal-width baseline.
        let width = dim / parts;
        let mut naive = vec![0usize; parts];
        for (idx, _) in t.iter() {
            naive[(idx[0] / width).min(parts - 1)] += 1;
        }
        let naive_stats = BalanceStats::from_counts(&naive);
        let greedy_stats = greedy.balance(0);
        assert!(
            greedy_stats.imbalance < naive_stats.imbalance,
            "greedy {:.3} must beat naive {:.3}",
            greedy_stats.imbalance,
            naive_stats.imbalance
        );
        assert!(greedy_stats.imbalance < 1.5);
    }

    #[test]
    fn balance_stats_basics() {
        let s = BalanceStats::from_counts(&[10, 20, 30]);
        assert_eq!(s.max, 30);
        assert_eq!(s.min, 10);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!((s.imbalance - 1.5).abs() < 1e-12);
    }

    /// A Zipf(s) histogram over `len` slices scaled so the head carries
    /// `head` records — the skew of §IV-A's "skewed" synthetic tensors.
    fn zipf_histogram(len: usize, s: f64, head: usize) -> Vec<usize> {
        (1..=len)
            .map(|i| ((head as f64 / (i as f64).powf(s)).round() as usize).max(1))
            .collect()
    }

    /// Lemma 1: a greedy cut never overshoots the ideal load `δ = total/P`
    /// by more than one slice, so every partition's load is at most
    /// `δ + max θᵢ`. Checked on heavy Zipf skew, where equal-width
    /// partitioning fails badly.
    #[test]
    fn greedy_respects_lemma_1_bound_on_zipf_skew() {
        for (s, parts) in [(1.0, 4), (1.5, 8), (2.0, 3), (0.8, 16)] {
            let theta = zipf_histogram(200, s, 10_000);
            let total: usize = theta.iter().sum();
            let delta = total as f64 / parts as f64;
            let theta_max = *theta.iter().max().unwrap() as f64;
            let part = ModePartition::from_histogram(&theta, parts);
            assert_eq!(part.parts(), parts);
            let loads: Vec<usize> = (0..parts)
                .map(|p| part.range(p).map(|i| theta[i]).sum())
                .collect();
            assert_eq!(loads.iter().sum::<usize>(), total, "loads cover everything");
            let stats = BalanceStats::from_counts(&loads);
            assert!(
                (stats.max as f64) <= delta + theta_max + 1e-9,
                "Lemma 1: max load {} > δ {delta} + θmax {theta_max} (s={s}, P={parts})",
                stats.max
            );
            assert!(stats.mean > 0.0);
            assert!(stats.imbalance >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn greedy_degenerate_inputs_do_not_panic() {
        // Empty histogram: every partition is an empty tail at 0.
        let b = greedy_boundaries(&[], 4);
        assert_eq!(b, vec![0, 0, 0, 0]);
        // More partitions than slices: trailing partitions are empty but
        // the boundary list still has exactly `parts` entries ending at I.
        let b = greedy_boundaries(&[5, 5, 5], 7);
        assert_eq!(b.len(), 7);
        assert_eq!(*b.last().unwrap(), 3);
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "non-decreasing: {b:?}");
        // All-zero histogram (a mode with no observed entries).
        let b = greedy_boundaries(&[0, 0, 0, 0], 2);
        assert_eq!(b.len(), 2);
        assert_eq!(*b.last().unwrap(), 4);
        // One slice holding everything.
        let b = greedy_boundaries(&[1_000_000], 5);
        assert_eq!(b.len(), 5);
        assert_eq!(*b.last().unwrap(), 1);
        // ModePartition wrappers on the same degenerate shapes.
        assert_eq!(ModePartition::from_histogram(&[], 3).parts(), 3);
        assert_eq!(ModePartition::equal_width(2, 9).parts(), 9);
        // BalanceStats on empty-tail loads must not divide by zero.
        let s = BalanceStats::from_counts(&[0, 0, 0]);
        assert_eq!(s.max, 0);
    }
}
