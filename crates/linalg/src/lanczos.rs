#![allow(clippy::manual_memcpy)] // explicit loops keep the basis-embedding offsets visible
//! Truncated eigendecomposition via Lanczos with full reorthogonalization.
//!
//! DisTenC never needs the full spectrum of a graph Laplacian: §III-B
//! truncates to `K` components, `L ≈ V Λ Vᵀ` with `V ∈ ℝ^{I×K}`. The paper
//! uses the MRRR parallel eigensolver; we substitute Lanczos, which only
//! needs matrix-vector products against the (sparse) operator and has the
//! same `O(K·I)`-per-iteration cost profile the paper's complexity analysis
//! assumes (see DESIGN.md §2).

use crate::tridiag::tqli;
use crate::vec_ops::{axpy, dot, normalize};
use crate::{LinalgError, Mat, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A linear operator exposing only `y = A x` — the interface sparse
/// Laplacians implement.
pub trait LinOp {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;
    /// Compute `out = A * x`. Both slices have length [`LinOp::dim`].
    fn apply(&self, x: &[f64], out: &mut [f64]);
}

/// Dense symmetric matrices are trivially linear operators (handy in tests).
impl LinOp for Mat {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        for (i, row) in self.rows_iter().enumerate() {
            out[i] = dot(row, x);
        }
    }
}

/// Compute the `k` smallest eigenpairs of a symmetric operator.
///
/// Runs Lanczos with full reorthogonalization for `m = min(n, max(2k+10,
/// 4k))` steps, solves the resulting tridiagonal problem exactly, and
/// returns the `k` pairs with smallest Ritz values. For graph Laplacians
/// the small end of the spectrum is the smooth structure the trace
/// regularizer wants, and extreme Ritz pairs converge first, so modest `m`
/// suffices.
///
/// Eigenvalues are returned ascending; `vectors` has one eigenvector per
/// column.
pub fn lanczos_smallest<O: LinOp>(op: &O, k: usize, seed: u64) -> Result<(Vec<f64>, Mat)> {
    let n = op.dim();
    if k == 0 {
        return Err(LinalgError::InvalidArgument("k must be ≥ 1".into()));
    }
    if k > n {
        return Err(LinalgError::InvalidArgument(format!(
            "requested {k} eigenpairs of a {n}-dimensional operator"
        )));
    }
    // Generous Krylov budget: graph Laplacians cluster eigenvalues at the
    // small end, where Ritz *vectors* converge slowly; the per-step cost
    // is O(nnz + m·n) and m stays far below n for the large operators
    // this path serves.
    let m = n.min((4 * k + 60).max(8 * k));

    let mut rng = StdRng::seed_from_u64(seed);
    // Lanczos basis vectors, kept dense for full reorthogonalization.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut q: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    normalize(&mut q);

    let mut alpha = Vec::with_capacity(m);
    let mut beta: Vec<f64> = Vec::with_capacity(m);
    let mut w = vec![0.0; n];

    for _ in 0..m {
        basis.push(q.clone());
        op.apply(&q, &mut w);
        let a = dot(&q, &w);
        alpha.push(a);
        // w ← w − a·q − β·q_prev, then full reorthogonalization against the
        // whole basis (twice is enough in practice — "twice is enough",
        // Parlett).
        for _ in 0..2 {
            for b in &basis {
                let proj = dot(b, &w);
                axpy(-proj, b, &mut w);
            }
        }
        let b = normalize(&mut w);
        if b <= 1e-12 {
            // Invariant subspace found. Restart with a fresh random vector
            // orthogonal to the basis (needed for operators with eigenvalue
            // multiplicity, e.g. the identity); a zero β decouples the new
            // block in the tridiagonal matrix, which tqli handles natively.
            if basis.len() == n {
                break;
            }
            let mut fresh: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
            for _ in 0..2 {
                for base in &basis {
                    let proj = dot(base, &fresh);
                    axpy(-proj, base, &mut fresh);
                }
            }
            if normalize(&mut fresh) <= 1e-12 {
                break;
            }
            beta.push(0.0);
            q = fresh;
            continue;
        }
        beta.push(b);
        std::mem::swap(&mut q, &mut w);
    }

    let steps = alpha.len();
    if steps < k {
        return Err(LinalgError::NoConvergence { method: "lanczos", iters: steps });
    }

    // Solve the tridiagonal problem, rotating the Lanczos basis so columns
    // of `z` become Ritz vectors in the original space.
    let mut z = Mat::zeros(n, steps);
    for (j, b) in basis.iter().enumerate() {
        for i in 0..n {
            z.set(i, j, b[i]);
        }
    }
    let mut d = alpha.clone();
    let mut e = vec![0.0; steps];
    for i in 1..steps {
        e[i] = beta[i - 1];
    }
    tqli(&mut d, &mut e, &mut z)?;

    let mut order: Vec<usize> = (0..steps).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let values: Vec<f64> = order.iter().take(k).map(|&i| d[i]).collect();
    let mut vectors = Mat::zeros(n, k);
    for (dst, &src) in order.iter().take(k).enumerate() {
        for i in 0..n {
            vectors.set(i, dst, z.get(i, src));
        }
    }
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi_eigen;

    #[test]
    fn matches_jacobi_on_dense_spd() {
        let mut a = Mat::random(20, 12, 3).gram();
        a.add_diag(0.05);
        let (vals, vecs) = lanczos_smallest(&a, 4, 7).unwrap();
        let oracle = jacobi_eigen(&a).unwrap();
        for (got, want) in vals.iter().zip(&oracle.values) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
        // Residuals ‖A v − λ v‖ are small.
        for j in 0..4 {
            let v = vecs.col(j);
            let av = a.matvec(&v).unwrap();
            let mut res = 0.0;
            for i in 0..a.rows() {
                res += (av[i] - vals[j] * v[i]).powi(2);
            }
            assert!(res.sqrt() < 1e-6, "residual {} for pair {j}", res.sqrt());
        }
    }

    #[test]
    fn path_laplacian_smallest_eigenvalue_is_zero() {
        // Dense path-graph Laplacian, n = 30.
        let n = 30;
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            l.set(i, i, deg);
            if i + 1 < n {
                l.set(i, i + 1, -1.0);
                l.set(i + 1, i, -1.0);
            }
        }
        let (vals, vecs) = lanczos_smallest(&l, 3, 1).unwrap();
        assert!(vals[0].abs() < 1e-8, "λ₀ = {}", vals[0]);
        // The null vector of a connected Laplacian is constant.
        let v0 = vecs.col(0);
        let mean = v0.iter().sum::<f64>() / n as f64;
        for v in &v0 {
            assert!((v - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let a = Mat::random(15, 10, 5).gram();
        let (_, vecs) = lanczos_smallest(&a, 5, 2).unwrap();
        let g = vecs.transpose().matmul(&vecs).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((g.get(i, j) - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn k_zero_and_k_too_large_rejected() {
        let a = Mat::identity(4);
        assert!(lanczos_smallest(&a, 0, 0).is_err());
        assert!(lanczos_smallest(&a, 5, 0).is_err());
    }

    #[test]
    fn identity_operator_returns_ones() {
        let a = Mat::identity(12);
        let (vals, _) = lanczos_smallest(&a, 3, 11).unwrap();
        for v in vals {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }
}
