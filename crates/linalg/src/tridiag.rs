#![allow(clippy::manual_memcpy)] // explicit loops keep the rotation index arithmetic visible
//! Symmetric tridiagonal eigensolver (implicit-shift QL).
//!
//! This is the classic `tqli` algorithm: given diagonal `d` and
//! off-diagonal `e`, it computes all eigenvalues and (optionally) rotates an
//! accumulator matrix `z` so its columns become eigenvectors in the original
//! basis. Lanczos reduces the Laplacian to this form; `tqli` finishes it.

use crate::{LinalgError, Mat, Result};

/// Eigen-decompose a symmetric tridiagonal matrix.
///
/// * `d` — diagonal entries, length `n`; overwritten with eigenvalues
///   (unsorted).
/// * `e` — sub-diagonal entries, length `n` with `e[0]` unused (matching
///   the classic Numerical-Recipes convention: `e[i]` couples rows `i-1`
///   and `i`); destroyed.
/// * `z` — an `n × n` accumulator; pass the identity to obtain tridiagonal
///   eigenvectors, or a Lanczos basis `Q` to obtain eigenvectors of the
///   original operator. Columns are rotated in place.
pub fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Mat) -> Result<()> {
    let n = d.len();
    if e.len() != n || z.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "tqli",
            lhs: (n, 1),
            rhs: (e.len(), z.cols()),
        });
    }
    if n == 0 {
        return Ok(());
    }
    // Shift the off-diagonal so e[i] couples i and i+1, with e[n-1] = 0.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence { method: "tqli", iters: 50 });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            // A sequence of plane rotations chasing the bulge.
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into z's columns i and i+1.
                for k in 0..z.rows() {
                    f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Convenience wrapper: eigenvalues (ascending) and eigenvectors of a
/// symmetric tridiagonal matrix given diagonal `diag` and off-diagonal
/// `off` (`off[i]` couples rows `i` and `i+1`; length `n-1`).
pub fn tridiag_eigen(diag: &[f64], off: &[f64]) -> Result<(Vec<f64>, Mat)> {
    let n = diag.len();
    if n == 0 {
        return Ok((Vec::new(), Mat::zeros(0, 0)));
    }
    if off.len() + 1 != n {
        return Err(LinalgError::InvalidArgument(format!(
            "off-diagonal length {} must be n-1 = {}",
            off.len(),
            n - 1
        )));
    }
    let mut d = diag.to_vec();
    // Convert to the tqli convention: e[i] couples i-1 and i.
    let mut e = vec![0.0; n];
    for i in 1..n {
        e[i] = off[i - 1];
    }
    let mut z = Mat::identity(n);
    tqli(&mut d, &mut e, &mut z)?;
    // Sort ascending, permuting columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for i in 0..n {
            vectors.set(i, dst, z.get(i, src));
        }
    }
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi_eigen;

    fn dense_from_tridiag(diag: &[f64], off: &[f64]) -> Mat {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.set(i, i, diag[i]);
        }
        for i in 0..n - 1 {
            m.set(i, i + 1, off[i]);
            m.set(i + 1, i, off[i]);
        }
        m
    }

    #[test]
    fn matches_jacobi_on_random_tridiagonal() {
        let diag = [2.0, 3.0, 1.5, 4.0, 2.5];
        let off = [0.5, -0.7, 0.3, 1.1];
        let (vals, vecs) = tridiag_eigen(&diag, &off).unwrap();
        let dense = dense_from_tridiag(&diag, &off);
        let oracle = jacobi_eigen(&dense).unwrap();
        for (a, b) in vals.iter().zip(&oracle.values) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        // Each eigenvector satisfies A v = λ v.
        for j in 0..diag.len() {
            let v = vecs.col(j);
            let av = dense.matvec(&v).unwrap();
            for i in 0..diag.len() {
                assert!((av[i] - vals[j] * v[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn diagonal_input_returns_sorted_diagonal() {
        let (vals, _) = tridiag_eigen(&[5.0, 1.0, 3.0], &[0.0, 0.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-14);
        assert!((vals[1] - 3.0).abs() < 1e-14);
        assert!((vals[2] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn chain_laplacian_has_zero_eigenvalue() {
        // Path-graph Laplacian: known smallest eigenvalue exactly 0.
        let n = 8;
        let diag: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let off = vec![-1.0; n - 1];
        let (vals, _) = tridiag_eigen(&diag, &off).unwrap();
        assert!(vals[0].abs() < 1e-10);
        assert!(vals[1] > 1e-6);
    }

    #[test]
    fn empty_and_singleton() {
        let (vals, _) = tridiag_eigen(&[], &[]).unwrap();
        assert!(vals.is_empty());
        let (vals, vecs) = tridiag_eigen(&[7.0], &[]).unwrap();
        assert_eq!(vals, vec![7.0]);
        assert_eq!(vecs.get(0, 0), 1.0);
    }

    #[test]
    fn wrong_offdiag_length_rejected() {
        assert!(tridiag_eigen(&[1.0, 2.0], &[0.1, 0.2]).is_err());
    }
}
