//! Row-major dense matrices.
//!
//! [`Mat`] is the workhorse type for factor matrices (`I×R`), Gram matrices
//! (`R×R`), eigenvector bases (`I×K`), and Lagrange multipliers. It favors
//! clarity over micro-optimization, but the inner loops are written so LLVM
//! can vectorize them (slice iteration, no bounds checks in hot paths).

use crate::{LinalgError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Mat { rows, cols, data }
    }

    /// Build a matrix from row slices.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Uniform random entries in `[0, 1)`, seeded for reproducibility.
    ///
    /// Factor matrices in Algorithm 1/3 are initialized non-negative, which
    /// this satisfies.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.random::<f64>()).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        // i-k-j loop order: the inner loop walks contiguous rows of `rhs`
        // and `out`, which vectorizes well.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (the `A⁽ⁿ⁾ᵀA⁽ⁿ⁾` self-products of §III-C).
    ///
    /// Exploits symmetry: only the upper triangle is computed then mirrored.
    pub fn gram(&self) -> Mat {
        let r = self.cols;
        let mut g = Mat::zeros(r, r);
        for row in self.rows_iter() {
            for j in 0..r {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                let g_row = &mut g.data[j * r..(j + 1) * r];
                for (k, &w) in row.iter().enumerate().skip(j) {
                    g_row[k] += v * w;
                }
            }
        }
        // Mirror the strictly-upper triangle into the lower one.
        for j in 0..r {
            for k in (j + 1)..r {
                g.data[k * r + j] = g.data[j * r + k];
            }
        }
        g
    }

    /// Partial Gram: the contribution of rows `rows.start..rows.end` to
    /// `selfᵀ * self`, upper triangle only (the lower triangle is left
    /// zero). Summing the partials of a disjoint cover of `0..rows()` in
    /// a fixed order and then calling [`Mat::mirror_upper`] yields a full
    /// Gram matrix whose bits depend only on that cover and order — never
    /// on which thread computed which partial. Out-of-range rows are
    /// clamped off.
    pub fn gram_range(&self, rows: std::ops::Range<usize>) -> Mat {
        let r = self.cols;
        let mut g = Mat::zeros(r, r);
        let lo = rows.start.min(self.rows);
        let hi = rows.end.min(self.rows);
        for i in lo..hi {
            let row = &self.data[i * r..(i + 1) * r];
            for j in 0..r {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                let g_row = &mut g.data[j * r..(j + 1) * r];
                for (k, &w) in row.iter().enumerate().skip(j) {
                    g_row[k] += v * w;
                }
            }
        }
        g
    }

    /// Mirror the strictly-upper triangle into the lower one in place
    /// (finishes a sum of [`Mat::gram_range`] partials).
    pub fn mirror_upper(&mut self) {
        debug_assert_eq!(self.rows, self.cols, "mirror_upper needs a square matrix");
        let r = self.cols;
        for j in 0..r {
            for k in (j + 1)..r {
                self.data[k * r + j] = self.data[j * r + k];
            }
        }
    }

    /// Element-wise (Hadamard) product, Definition 2.1.4.
    pub fn hadamard(&self, rhs: &Mat) -> Result<Mat> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Mat { rows: self.rows, cols: self.cols, data })
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Mat) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "axpy",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// `self + rhs` as a new matrix.
    pub fn add(&self, rhs: &Mat) -> Result<Mat> {
        let mut out = self.clone();
        out.axpy(1.0, rhs)?;
        Ok(out)
    }

    /// `self - rhs` as a new matrix.
    pub fn sub(&self, rhs: &Mat) -> Result<Mat> {
        let mut out = self.clone();
        out.axpy(-1.0, rhs)?;
        Ok(out)
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self * alpha` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> Mat {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// In-place `self += alpha * I` (adds to the diagonal; matrix must be
    /// square). This is the `+ λI + ηI` shift in the factor update.
    pub fn add_diag(&mut self, alpha: f64) {
        debug_assert_eq!(self.rows, self.cols, "add_diag needs a square matrix");
        let n = self.rows;
        for i in 0..n {
            self.data[i * n + i] += alpha;
        }
    }

    /// Frobenius norm `‖self‖_F`.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frob_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// Frobenius norm of `self - rhs`, the convergence test of Algorithm 3
    /// (`max ‖A⁽ⁿ⁾ₜ₊₁ − A⁽ⁿ⁾ₜ‖²_F < tol`).
    pub fn frob_dist(&self, rhs: &Mat) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "frob_dist",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    /// Matrix inner product `<self, rhs> = Σᵢⱼ selfᵢⱼ rhsᵢⱼ` (used by the
    /// augmented Lagrangian, Eq. 5).
    pub fn inner(&self, rhs: &Mat) -> Result<f64> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "inner",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum())
    }

    /// Clamp all entries to be non-negative (projection used when enforcing
    /// the `A⁽ⁿ⁾ ≥ 0` constraint).
    pub fn clamp_nonneg(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &xi) in self.rows_iter().zip(x) {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// True iff every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Approximate heap size in bytes (used by the memory accounting).
    pub fn mem_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Stack the rows selected by `indices` into a new matrix (gathering
    /// factor-matrix rows that a tensor block touches, §III-C).
    pub fn gather_rows(&self, indices: &[usize]) -> Mat {
        let mut out = Mat::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    // ----- in-place variants ------------------------------------------------
    //
    // The solver core preallocates every buffer once and runs its steady
    // state through these `_into` methods. Each is the exact loop of its
    // allocating counterpart with the output buffer supplied by the
    // caller, so results are bit-identical — asserted with `assert_eq!`
    // (not tolerances) in the tests below.

    /// Set every entry to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Overwrite `self` with the entries of `src` (shapes must match).
    pub fn copy_from(&mut self, src: &Mat) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "copy_from",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// `out = self * alpha`, bit-identical to [`Mat::scaled`].
    pub fn scaled_into(&self, alpha: f64, out: &mut Mat) -> Result<()> {
        if self.shape() != out.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "scaled_into",
                lhs: self.shape(),
                rhs: out.shape(),
            });
        }
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = a * alpha;
        }
        Ok(())
    }

    /// `out = self - rhs`, bit-identical to [`Mat::sub`] (which is a clone
    /// followed by `axpy(-1.0, rhs)`, i.e. `a + (-1.0) * b` per entry).
    // Keep the literal `a + (-1.0) * b` so the bit-identity with `axpy` is
    // visible in the source, not an IEEE-754 argument in a comment.
    #[allow(clippy::neg_multiply)]
    pub fn sub_into(&self, rhs: &Mat, out: &mut Mat) -> Result<()> {
        if self.shape() != rhs.shape() || self.shape() != out.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a + (-1.0) * b;
        }
        Ok(())
    }

    /// `out = self * rhs`, bit-identical to [`Mat::matmul`]. The output is
    /// zeroed first: the product accumulates into it with the same i-k-j
    /// loop (including the `a_ik == 0.0` skip).
    pub fn matmul_into(&self, rhs: &Mat, out: &mut Mat) -> Result<()> {
        if self.cols != rhs.rows || out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_into",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        out.data.fill(0.0);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(())
    }

    /// `out = selfᵀ * self`, bit-identical to [`Mat::gram`].
    pub fn gram_into(&self, out: &mut Mat) -> Result<()> {
        self.gram_range_into(0..self.rows, out)?;
        out.mirror_upper();
        Ok(())
    }

    /// Partial Gram into a caller-owned buffer, bit-identical to
    /// [`Mat::gram_range`] (upper triangle only; the buffer is zeroed
    /// first, including its lower triangle).
    pub fn gram_range_into(&self, rows: std::ops::Range<usize>, out: &mut Mat) -> Result<()> {
        let r = self.cols;
        if out.shape() != (r, r) {
            return Err(LinalgError::ShapeMismatch {
                op: "gram_range_into",
                lhs: (r, r),
                rhs: out.shape(),
            });
        }
        out.data.fill(0.0);
        let lo = rows.start.min(self.rows);
        let hi = rows.end.min(self.rows);
        for i in lo..hi {
            let row = &self.data[i * r..(i + 1) * r];
            for j in 0..r {
                let v = row[j];
                if v == 0.0 {
                    continue;
                }
                let g_row = &mut out.data[j * r..(j + 1) * r];
                for (k, &w) in row.iter().enumerate().skip(j) {
                    g_row[k] += v * w;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::random(4, 3, 7);
        let i = Mat::identity(4);
        let prod = i.matmul(&a).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Mat::random(6, 4, 42);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for (x, y) in g.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Mat::random(5, 3, 1);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let a = Mat::random(3, 5, 9);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[2.0, 0.5], &[1.0, -1.0]]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h, Mat::from_rows(&[&[2.0, 1.0], &[3.0, -4.0]]));
    }

    #[test]
    fn add_diag_shifts_diagonal_only() {
        let mut a = Mat::zeros(3, 3);
        a.add_diag(2.5);
        assert_eq!(a, Mat::identity(3).scaled(2.5));
    }

    #[test]
    fn frob_norm_known_value() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn matvec_and_matvec_t_agree_with_matmul() {
        let a = Mat::random(4, 3, 11);
        let x = vec![1.0, -2.0, 0.5];
        let y = a.matvec(&x).unwrap();
        let x_mat = Mat::from_vec(3, 1, x.clone());
        let y_mat = a.matmul(&x_mat).unwrap();
        for i in 0..4 {
            assert!((y[i] - y_mat.get(i, 0)).abs() < 1e-12);
        }
        let z = a.matvec_t(&y).unwrap();
        let z_mat = a.transpose().matmul(&y_mat).unwrap();
        for j in 0..3 {
            assert!((z[j] - z_mat.get(j, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn clamp_nonneg_zeroes_negatives() {
        let mut a = Mat::from_rows(&[&[-1.0, 2.0], &[0.0, -0.5]]);
        a.clamp_nonneg();
        assert_eq!(a, Mat::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
    }

    #[test]
    fn gather_rows_selects_expected_rows() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g, Mat::from_rows(&[&[3.0, 3.0], &[1.0, 1.0]]));
    }

    #[test]
    fn inner_product_known_value() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.inner(&b).unwrap(), 11.0);
    }

    #[test]
    fn gram_range_full_cover_is_bitwise_gram() {
        // A single range covering every row walks the exact same loop as
        // `gram()`, so the result is bit-identical, not merely close.
        let a = Mat::random(17, 5, 42);
        let mut g = a.gram_range(0..17);
        g.mirror_upper();
        assert_eq!(g, a.gram());
    }

    #[test]
    fn gram_range_partials_sum_to_gram() {
        let a = Mat::random(23, 4, 7);
        let mut sum = a.gram_range(0..9);
        for r in [9..16, 16..23, 23..40] {
            sum.axpy(1.0, &a.gram_range(r)).unwrap();
        }
        sum.mirror_upper();
        let full = a.gram();
        assert!(sum.frob_dist(&full).unwrap() < 1e-12 * full.frob_norm().max(1.0));
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_ones() {
        // `assert_eq!` on `Mat` compares every f64 exactly: the `_into`
        // kernels must reproduce the allocating results bit for bit.
        let a = Mat::random(7, 5, 3);
        let b = Mat::random(7, 5, 4);
        let sq = Mat::random(5, 5, 6);

        let mut out = Mat::zeros(7, 5);
        a.scaled_into(1.7, &mut out).unwrap();
        assert_eq!(out, a.scaled(1.7));

        a.sub_into(&b, &mut out).unwrap();
        assert_eq!(out, a.sub(&b).unwrap());

        a.matmul_into(&sq, &mut out).unwrap();
        assert_eq!(out, a.matmul(&sq).unwrap());
        // Repeat into a dirty buffer: the zeroing must erase stale state.
        a.matmul_into(&sq, &mut out).unwrap();
        assert_eq!(out, a.matmul(&sq).unwrap());

        let mut g = Mat::random(5, 5, 9); // dirty on purpose
        a.gram_into(&mut g).unwrap();
        assert_eq!(g, a.gram());

        a.gram_range_into(2..6, &mut g).unwrap();
        assert_eq!(g, a.gram_range(2..6));

        let mut c = Mat::zeros(7, 5);
        c.copy_from(&a).unwrap();
        assert_eq!(c, a);
        c.fill(3.25);
        assert_eq!(c, Mat::from_vec(7, 5, vec![3.25; 35]));
    }

    #[test]
    fn into_variants_reject_shape_mismatches() {
        let a = Mat::random(4, 3, 1);
        let mut wrong = Mat::zeros(3, 3);
        assert!(a.scaled_into(2.0, &mut wrong).is_err());
        assert!(a.sub_into(&a, &mut wrong).is_err());
        assert!(a.matmul_into(&Mat::zeros(3, 2), &mut wrong).is_err());
        assert!(a.gram_into(&mut Mat::zeros(4, 4)).is_err());
        assert!(a.gram_range_into(0..4, &mut Mat::zeros(2, 2)).is_err());
        assert!(wrong.copy_from(&a).is_err());
    }

    #[test]
    fn random_is_seeded_and_in_unit_interval() {
        let a = Mat::random(10, 10, 5);
        let b = Mat::random(10, 10, 5);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
