//! Dense linear algebra kernels used throughout the DisTenC reproduction.
//!
//! This crate deliberately implements only what the paper's algorithms need,
//! from scratch and without unsafe code:
//!
//! * [`Mat`] — a small row-major dense matrix with the handful of BLAS-like
//!   operations the completion algorithms perform on `R×R` and `I×R`
//!   operands (products, Gram matrices, Hadamard products, norms).
//! * [`chol`] — Cholesky factorization and SPD solves for the
//!   `(UᵀU + λI + ηI)⁻¹`-style systems in Algorithm 1 / Algorithm 3.
//! * [`eigen`] — a cyclic Jacobi eigensolver for small dense symmetric
//!   matrices.
//! * [`sketch`] — scratch and row kernels for the sampled least-squares
//!   estimators of the sketched solver tier.
//! * [`tridiag`] — implicit-shift QL for symmetric tridiagonal matrices,
//!   the inner solver of Lanczos.
//! * [`lanczos`] — truncated Lanczos with full reorthogonalization over an
//!   abstract [`LinOp`], standing in for the MRRR eigensolver the paper uses
//!   to truncate graph Laplacians (`L ≈ VΛVᵀ`, §III-B).

#![warn(missing_docs)]

#![allow(clippy::needless_range_loop)] // indexed loops mirror the math in numeric kernels

pub mod chol;
pub mod eigen;
pub mod lanczos;
pub mod mat;
pub mod sketch;
pub mod tridiag;
pub mod vec_ops;

pub use chol::Cholesky;
pub use eigen::{jacobi_eigen, EigenPairs};
pub use lanczos::{lanczos_smallest, LinOp};
pub use mat::Mat;
pub use sketch::SketchScratch;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// The matrix was expected to be symmetric positive definite but a
    /// non-positive pivot was encountered during factorization.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Which method failed.
        method: &'static str,
        /// Number of iterations performed.
        iters: usize,
    },
    /// An argument was out of the accepted domain (e.g. `k > n` eigenpairs).
    InvalidArgument(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix not positive definite: pivot {pivot} = {value}")
            }
            LinalgError::NoConvergence { method, iters } => {
                write!(f, "{method} did not converge after {iters} iterations")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
