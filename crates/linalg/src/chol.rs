//! Cholesky factorization and SPD solves.
//!
//! Every factor-matrix update in Algorithm 1 / Algorithm 3 right-multiplies
//! by `(UᵀU + λI + ηI)⁻¹`, an `R×R` symmetric positive-definite matrix.
//! Rather than forming the inverse we factor once per update and solve.

use crate::{LinalgError, Mat, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility (all call sites build the
    /// matrix from Gram products plus positive diagonal shifts, which are
    /// exactly symmetric).
    pub fn factor(a: &Mat) -> Result<Cholesky> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Re-factor a new matrix of the same dimension into this
    /// factorization's existing buffer, bit-identical to
    /// [`Cholesky::factor`] with no allocation.
    ///
    /// The algorithm only ever writes the lower triangle (each entry
    /// exactly once, reading only entries written earlier in the same
    /// pass) and the upper triangle is zero from construction, so reusing
    /// the buffer cannot leak state between factorizations. On a
    /// `NotPositiveDefinite` error the factor is left partially
    /// overwritten and must not be used for solves.
    pub fn refactor(&mut self, a: &Mat) -> Result<()> {
        let n = self.dim();
        if a.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky refactor",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= self.l.get(i, k) * self.l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    self.l.set(i, j, sum.sqrt());
                } else {
                    self.l.set(i, j, sum / self.l.get(j, j));
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solve `A x = b` in place.
    pub fn solve_vec_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * b[k];
            }
            b[i] = sum / self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * b[k];
            }
            b[i] = sum / self.l.get(i, i);
        }
        Ok(())
    }

    /// Solve `A X = B` column-by-column, returning `X` with `B`'s shape.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Mat::zeros(b.rows(), b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b.get(i, j);
            }
            self.solve_vec_in_place(&mut col)?;
            for i in 0..n {
                out.set(i, j, col[i]);
            }
        }
        Ok(out)
    }

    /// Solve `X A = B` for `X` (i.e. `X = B A⁻¹`), the orientation used by
    /// the factor update `A⁽ⁿ⁾ ← (…)(UᵀU + λI + ηI)⁻¹`.
    ///
    /// Since `A` is symmetric, `X A = B  ⇔  A Xᵀ = Bᵀ`; we solve each *row*
    /// of `B` directly and avoid materializing transposes.
    pub fn solve_right(&self, b: &Mat) -> Result<Mat> {
        let n = self.dim();
        if b.cols() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_right",
                lhs: b.shape(),
                rhs: (n, n),
            });
        }
        let mut out = b.clone();
        for i in 0..out.rows() {
            self.solve_vec_in_place(out.row_mut(i))?;
        }
        Ok(out)
    }

    /// Solve `X A = B` into a caller-owned buffer, bit-identical to
    /// [`Cholesky::solve_right`] (copy `B`, then solve each row in place).
    pub fn solve_right_into(&self, b: &Mat, out: &mut Mat) -> Result<()> {
        let n = self.dim();
        if b.cols() != n || out.shape() != b.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_right_into",
                lhs: b.shape(),
                rhs: out.shape(),
            });
        }
        out.copy_from(b)?;
        for i in 0..out.rows() {
            self.solve_vec_in_place(out.row_mut(i))?;
        }
        Ok(())
    }

    /// Explicit inverse `A⁻¹` (used only where the algorithm genuinely
    /// caches an inverse; prefer the `solve_*` methods).
    pub fn inverse(&self) -> Result<Mat> {
        self.solve_mat(&Mat::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Mat {
        // Gram of a random matrix plus a diagonal shift is SPD.
        let mut g = Mat::random(n + 2, n, seed).gram();
        g.add_diag(0.5);
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd(5, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10, "{x} vs {y}");
        }
    }

    #[test]
    fn solve_vec_matches_direct_computation() {
        let a = Mat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let mut b = vec![8.0, 7.0];
        ch.solve_vec_in_place(&mut b).unwrap();
        // A * x should equal the original b.
        let ax = a.matvec(&b).unwrap();
        assert!((ax[0] - 8.0).abs() < 1e-12);
        assert!((ax[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn solve_mat_left_inverse() {
        let a = spd(4, 9);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::random(4, 3, 17);
        let x = ch.solve_mat(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        for (u, v) in ax.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_right_matches_b_times_inverse() {
        let a = spd(4, 21);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Mat::random(6, 4, 33);
        let x = ch.solve_right(&b).unwrap();
        let xa = x.matmul(&a).unwrap();
        for (u, v) in xa.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(5, 99);
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Mat::identity(5);
        for (u, v) in prod.as_slice().iter().zip(eye.as_slice()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_and_solve_right_into_are_bit_identical() {
        let a1 = spd(5, 3);
        let a2 = spd(5, 44);
        let b = Mat::random(9, 5, 8);

        // Start from an unrelated factorization and refactor twice: the
        // buffer reuse must leave no trace of the previous matrix.
        let mut ch = Cholesky::factor(&a1).unwrap();
        ch.refactor(&a2).unwrap();
        assert_eq!(ch.l(), Cholesky::factor(&a2).unwrap().l());
        ch.refactor(&a1).unwrap();
        assert_eq!(ch.l(), Cholesky::factor(&a1).unwrap().l());

        let mut out = Mat::random(9, 5, 100); // dirty on purpose
        ch.solve_right_into(&b, &mut out).unwrap();
        assert_eq!(out, ch.solve_right(&b).unwrap());
    }

    #[test]
    fn refactor_rejects_dimension_change() {
        let mut ch = Cholesky::factor(&spd(4, 1)).unwrap();
        assert!(ch.refactor(&spd(5, 2)).is_err());
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Mat::zeros(3, 2);
        assert!(Cholesky::factor(&a).is_err());
    }
}
