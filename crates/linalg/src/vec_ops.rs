//! Small vector kernels shared by the iterative solvers.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// In-place `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalize `x` to unit Euclidean norm, returning the original norm.
/// Leaves `x` untouched (and returns 0) when its norm underflows.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > f64::MIN_POSITIVE {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm2_known_value() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
