//! Scratch and row kernels for sampled (sketched) least-squares steps.
//!
//! The sketched solver tier estimates the sparse MTTKRP from a sampled
//! subset of entries: for each sampled entry it forms the Hadamard
//! product of one row from every factor but the output mode, evaluates
//! the model at the entry through that same partial product, and
//! accumulates the importance-weighted row into the output. This module
//! owns the per-draw scratch ([`SketchScratch`]) and the two row kernels
//! ([`hadamard_rows_skip_into`], [`vec_ops::dot`]) so a steady-state
//! sampled step allocates nothing.
//!
//! [`vec_ops::dot`]: crate::vec_ops::dot

use crate::mat::Mat;
use crate::{LinalgError, Result};

/// Preallocated scratch for one sampled least-squares estimator: the
/// `R`-vector holding the partial Hadamard row product. Sized once at
/// backend construction and reused for every draw.
#[derive(Debug, Clone)]
pub struct SketchScratch {
    /// The partial Hadamard product `⊛_{k≠skip} A⁽ᵏ⁾(i_k, :)`.
    pub had: Vec<f64>,
}

impl SketchScratch {
    /// Scratch for rank-`r` factors.
    pub fn new(r: usize) -> Self {
        SketchScratch { had: vec![0.0; r] }
    }
}

/// Write the Hadamard product of one row from every factor except
/// `skip` into `out`: `out[r] = Π_{k≠skip} factors[k](idx[k], r)`.
///
/// Factors are visited in ascending `k` — the same association order the
/// exact MTTKRP kernels use — so a sampled estimate accumulates its row
/// products in the identical per-entry sequence.
pub fn hadamard_rows_skip_into(
    factors: &[Mat],
    skip: usize,
    idx: &[usize],
    out: &mut [f64],
) -> Result<()> {
    if idx.len() != factors.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "hadamard_rows_skip_into",
            lhs: (idx.len(), 1),
            rhs: (factors.len(), 1),
        });
    }
    let r = out.len();
    out.fill(1.0);
    for (k, f) in factors.iter().enumerate() {
        if k == skip {
            continue;
        }
        if f.cols() != r {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard_rows_skip_into",
                lhs: f.shape(),
                rhs: (r, 1),
            });
        }
        let row = f.row(idx[k]);
        for (o, &a) in out.iter_mut().zip(row) {
            *o *= a;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::dot;

    fn mat(rows: usize, cols: usize, base: f64) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, base + (i * cols + j) as f64 * 0.25);
            }
        }
        m
    }

    #[test]
    fn skips_exactly_the_requested_factor() {
        let f = [mat(3, 2, 1.0), mat(4, 2, 2.0), mat(5, 2, 3.0)];
        let idx = [1, 2, 3];
        let mut out = vec![0.0; 2];
        hadamard_rows_skip_into(&f, 1, &idx, &mut out).unwrap();
        for r in 0..2 {
            let want = f[0].row(1)[r] * f[2].row(3)[r];
            assert_eq!(out[r], want);
        }
        // Completing the product with the skipped row reproduces the full
        // model evaluation — the identity the sketched backend exploits.
        let full = dot(&out, f[1].row(2));
        let mut all = vec![0.0; 2];
        hadamard_rows_skip_into(&f, usize::MAX, &idx, &mut all).unwrap();
        assert!((full - (all[0] + all[1])).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatches_are_errors() {
        let f = [mat(3, 2, 1.0), mat(4, 2, 2.0)];
        let mut out = vec![0.0; 2];
        assert!(hadamard_rows_skip_into(&f, 0, &[1], &mut out).is_err());
        let mut wrong = vec![0.0; 3];
        assert!(hadamard_rows_skip_into(&f, 0, &[1, 1], &mut wrong).is_err());
    }

    #[test]
    fn scratch_sizes_to_rank() {
        assert_eq!(SketchScratch::new(7).had.len(), 7);
    }
}
