//! Cyclic Jacobi eigensolver for dense symmetric matrices.
//!
//! Used for exact eigendecompositions of small/medium Laplacians (TFAI, and
//! test oracles for the Lanczos path). Jacobi is slow (`O(n³)` per sweep)
//! but unconditionally robust and accurate, which is what a reference
//! implementation wants.

use crate::{LinalgError, Mat, Result};

/// An eigendecomposition `A = V diag(λ) Vᵀ` with orthonormal columns in `V`.
#[derive(Debug, Clone)]
pub struct EigenPairs {
    /// Eigenvalues, sorted ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as *columns* of an `n × k` matrix, ordered to match
    /// `values`.
    pub vectors: Mat,
}

impl EigenPairs {
    /// Keep only the `k` smallest eigenpairs (the truncation DisTenC applies
    /// to graph Laplacians; small eigenvalues of `L` carry the smooth graph
    /// structure).
    pub fn truncate_smallest(mut self, k: usize) -> EigenPairs {
        let n = self.vectors.rows();
        let k = k.min(self.values.len());
        self.values.truncate(k);
        let mut v = Mat::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                v.set(i, j, self.vectors.get(i, j));
            }
        }
        self.vectors = v;
        self
    }
}

/// Eigendecomposition of a dense symmetric matrix via cyclic Jacobi
/// rotations. Returns eigenvalues ascending with matching eigenvector
/// columns.
///
/// `a` must be square and (numerically) symmetric; only symmetry up to
/// rounding is assumed since the matrix is averaged on input.
pub fn jacobi_eigen(a: &Mat) -> Result<EigenPairs> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "jacobi_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    // Work on a symmetrized copy to be safe against tiny asymmetries.
    let mut m = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m.set(i, j, 0.5 * (a.get(i, j) + a.get(j, i)));
        }
    }
    let mut v = Mat::identity(n);

    let max_sweeps = 64;
    for sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-13 * (1.0 + m.frob_norm()) {
            let mut values: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
            // Sort ascending, permuting eigenvector columns alongside.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&x, &y| values[x].partial_cmp(&values[y]).unwrap());
            values.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let mut vectors = Mat::zeros(n, n);
            for (dst, &src) in order.iter().enumerate() {
                for i in 0..n {
                    vectors.set(i, dst, v.get(i, src));
                }
            }
            return Ok(EigenPairs { values, vectors });
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) on both sides: M ← GᵀMG.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: V ← VG.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence { method: "jacobi_eigen", iters: max_sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = {
            let mut g = Mat::random(8, 6, 4).gram();
            g.add_diag(0.1);
            g
        };
        let e = jacobi_eigen(&a).unwrap();
        // Vᵀ V = I.
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        let eye = Mat::identity(6);
        for (u, v) in vtv.as_slice().iter().zip(eye.as_slice()) {
            assert!((u - v).abs() < 1e-9);
        }
        // V diag(λ) Vᵀ = A.
        let mut vl = e.vectors.clone();
        for i in 0..vl.rows() {
            for j in 0..vl.cols() {
                let scaled = vl.get(i, j) * e.values[j];
                vl.set(i, j, scaled);
            }
        }
        let rec = vl.matmul(&e.vectors.transpose()).unwrap();
        for (u, v) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = Mat::random(7, 5, 13).gram();
        let e = jacobi_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn truncate_smallest_keeps_prefix() {
        let a = Mat::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = jacobi_eigen(&a).unwrap().truncate_smallest(2);
        assert_eq!(e.values.len(), 2);
        assert_eq!(e.vectors.shape(), (3, 2));
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(jacobi_eigen(&Mat::zeros(2, 3)).is_err());
    }
}
