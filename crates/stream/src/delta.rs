//! Validated change sets over an observed tensor.

use distenc_core::CoreError;

/// Errors from delta validation and application. Every misuse surfaces as
/// a typed error — no path in this crate panics on user input.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A coordinate lies outside the (grown) tensor shape.
    OutOfRange {
        /// The offending coordinate.
        index: Vec<usize>,
        /// The shape it was checked against (base shape plus growth).
        shape: Vec<usize>,
    },
    /// The same cell appears more than once within one batch (across
    /// inserts and updates combined).
    DuplicateInBatch {
        /// The repeated coordinate.
        index: Vec<usize>,
    },
    /// An update targets a cell the tensor has never observed.
    UnobservedUpdate {
        /// The coordinate with no matching entry.
        index: Vec<usize>,
    },
    /// An insert targets a cell that is already observed (use an update).
    AlreadyObserved {
        /// The coordinate that already exists.
        index: Vec<usize>,
    },
    /// Dimension growth on a mode that carries auxiliary similarity
    /// information: the Laplacian's row space cannot be grown
    /// incrementally, so the batch is refused rather than silently
    /// dropping the regularizer.
    GrowthWithAux {
        /// The mode whose Laplacian blocks the growth.
        mode: usize,
    },
    /// Structural problems: wrong arity, shape mismatch against the
    /// solver's tensor, a batch built for a different base shape.
    BadBatch(String),
    /// Propagated solver-core failure.
    Core(CoreError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OutOfRange { index, shape } => {
                write!(f, "coordinate {index:?} is outside the grown shape {shape:?}")
            }
            StreamError::DuplicateInBatch { index } => {
                write!(f, "coordinate {index:?} appears more than once in the batch")
            }
            StreamError::UnobservedUpdate { index } => {
                write!(f, "update targets unobserved cell {index:?}")
            }
            StreamError::AlreadyObserved { index } => {
                write!(f, "insert targets already-observed cell {index:?}")
            }
            StreamError::GrowthWithAux { mode } => {
                write!(
                    f,
                    "mode {mode} carries a similarity Laplacian; its dimension cannot grow incrementally"
                )
            }
            StreamError::BadBatch(msg) => write!(f, "malformed delta batch: {msg}"),
            StreamError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<distenc_tensor::TensorError> for StreamError {
    fn from(e: distenc_tensor::TensorError) -> Self {
        StreamError::Core(CoreError::Tensor(e))
    }
}

/// One validated change set against a tensor of a known shape.
///
/// A batch can carry, in any combination:
/// * **growth** — per-mode dimension increases (new slice indices appear
///   at the top of each grown mode);
/// * **inserts** — new nonzeros, which may live in the grown region;
/// * **updates** — revised values for cells that are already observed.
///
/// Construction ([`DeltaBatch::try_new`]) checks everything checkable
/// without the tensor itself: coordinate arity, bounds against the grown
/// shape, and cross-batch duplicates. Observedness (updates must hit
/// existing entries, inserts must not) is checked at apply time by
/// [`crate::StreamingSolver::apply`], which rejects the whole batch
/// before mutating anything.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBatch {
    base_shape: Vec<usize>,
    growth: Vec<usize>,
    inserts: Vec<(Vec<usize>, f64)>,
    updates: Vec<(Vec<usize>, f64)>,
}

impl DeltaBatch {
    /// Validate and build a batch against `base_shape` (the shape of the
    /// tensor the batch will be applied to). `growth[n]` is how many new
    /// indices mode `n` gains; coordinates are checked against
    /// `base_shape + growth`. Inserts and updates are stored sorted in
    /// lexicographic coordinate order.
    pub fn try_new(
        base_shape: &[usize],
        growth: &[usize],
        inserts: Vec<(Vec<usize>, f64)>,
        updates: Vec<(Vec<usize>, f64)>,
    ) -> crate::Result<Self> {
        let order = base_shape.len();
        if order == 0 {
            return Err(StreamError::BadBatch("base shape has no modes".into()));
        }
        if growth.len() != order {
            return Err(StreamError::BadBatch(format!(
                "growth has {} modes, base shape has {order}",
                growth.len()
            )));
        }
        let new_shape: Vec<usize> =
            base_shape.iter().zip(growth).map(|(&d, &g)| d + g).collect();
        for (idx, _) in inserts.iter().chain(&updates) {
            if idx.len() != order {
                return Err(StreamError::BadBatch(format!(
                    "coordinate {idx:?} has {} modes, tensor has {order}",
                    idx.len()
                )));
            }
            if idx.iter().zip(&new_shape).any(|(&i, &d)| i >= d) {
                return Err(StreamError::OutOfRange {
                    index: idx.clone(),
                    shape: new_shape,
                });
            }
        }
        // Updates must address cells that existed before this batch, so
        // they can never legally touch the grown region.
        for (idx, _) in &updates {
            if idx.iter().zip(base_shape).any(|(&i, &d)| i >= d) {
                return Err(StreamError::UnobservedUpdate { index: idx.clone() });
            }
        }
        let mut keys: Vec<&[usize]> =
            inserts.iter().chain(&updates).map(|(idx, _)| idx.as_slice()).collect();
        keys.sort_unstable();
        if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
            return Err(StreamError::DuplicateInBatch { index: w[0].to_vec() });
        }
        let mut inserts = inserts;
        let mut updates = updates;
        inserts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        updates.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(DeltaBatch { base_shape: base_shape.to_vec(), growth: growth.to_vec(), inserts, updates })
    }

    /// The shape this batch was validated against.
    pub fn base_shape(&self) -> &[usize] {
        &self.base_shape
    }

    /// Per-mode dimension growth.
    pub fn growth(&self) -> &[usize] {
        &self.growth
    }

    /// The shape after applying this batch.
    pub fn new_shape(&self) -> Vec<usize> {
        self.base_shape.iter().zip(&self.growth).map(|(&d, &g)| d + g).collect()
    }

    /// New nonzeros, sorted by coordinate.
    pub fn inserts(&self) -> &[(Vec<usize>, f64)] {
        &self.inserts
    }

    /// Value revisions to existing entries, sorted by coordinate.
    pub fn updates(&self) -> &[(Vec<usize>, f64)] {
        &self.updates
    }

    /// True when the batch changes nothing at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.updates.is_empty() && self.growth.iter().all(|&g| g == 0)
    }

    /// True when the batch changes the support or the shape (anything but
    /// pure value updates). Structural batches invalidate index-dependent
    /// caches (CSF fiber trees); value-only batches do not.
    pub fn is_structural(&self) -> bool {
        !self.inserts.is_empty() || self.growth.iter().any(|&g| g > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_batch() {
        let b = DeltaBatch::try_new(
            &[4, 3],
            &[1, 0],
            vec![(vec![4, 2], 1.0), (vec![0, 1], 2.0)],
            vec![(vec![3, 0], -1.0)],
        )
        .unwrap();
        assert_eq!(b.new_shape(), vec![5, 3]);
        // Inserts come back sorted.
        assert_eq!(b.inserts()[0].0, vec![0, 1]);
        assert!(b.is_structural());
        assert!(!b.is_empty());
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let err = DeltaBatch::try_new(&[4, 3], &[0, 0], vec![(vec![4, 0], 1.0)], vec![])
            .unwrap_err();
        assert_eq!(
            err,
            StreamError::OutOfRange { index: vec![4, 0], shape: vec![4, 3] }
        );
        // The same coordinate is fine once growth covers it.
        assert!(DeltaBatch::try_new(&[4, 3], &[1, 0], vec![(vec![4, 0], 1.0)], vec![]).is_ok());
    }

    #[test]
    fn rejects_duplicates_within_a_batch() {
        let err = DeltaBatch::try_new(
            &[4, 3],
            &[0, 0],
            vec![(vec![1, 1], 1.0), (vec![1, 1], 2.0)],
            vec![],
        )
        .unwrap_err();
        assert_eq!(err, StreamError::DuplicateInBatch { index: vec![1, 1] });
        // Also across the insert/update split.
        let err = DeltaBatch::try_new(
            &[4, 3],
            &[0, 0],
            vec![(vec![2, 1], 1.0)],
            vec![(vec![2, 1], 2.0)],
        )
        .unwrap_err();
        assert_eq!(err, StreamError::DuplicateInBatch { index: vec![2, 1] });
    }

    #[test]
    fn rejects_updates_into_the_grown_region() {
        let err = DeltaBatch::try_new(&[4, 3], &[1, 0], vec![], vec![(vec![4, 0], 1.0)])
            .unwrap_err();
        assert_eq!(err, StreamError::UnobservedUpdate { index: vec![4, 0] });
    }

    #[test]
    fn rejects_malformed_arity() {
        assert!(matches!(
            DeltaBatch::try_new(&[4, 3], &[0], vec![], vec![]),
            Err(StreamError::BadBatch(_))
        ));
        assert!(matches!(
            DeltaBatch::try_new(&[4, 3], &[0, 0], vec![(vec![1], 1.0)], vec![]),
            Err(StreamError::BadBatch(_))
        ));
    }
}
