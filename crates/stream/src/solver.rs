//! The streaming solver: delta application + warm re-solves.

use crate::delta::{DeltaBatch, StreamError};
use distenc_core::{AdmmConfig, AdmmSolver, CompletionResult, DisTenC, ResidualHandoff};
use distenc_graph::Laplacian;
use distenc_linalg::Mat;
use distenc_tensor::{CooTensor, KruskalTensor};

/// Seed for the rows appended to a factor when mode `mode` grows past
/// `old_rows` indices. Deterministic in `(base, mode, old_rows)` so a
/// replayed delta sequence reproduces the exact same model regardless of
/// how the sequence is batched — the same Fibonacci-hash mixing the
/// kernels use elsewhere for decorrelating per-mode streams.
fn growth_seed(base: u64, mode: usize, old_rows: usize) -> u64 {
    base.wrapping_add(
        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(((mode as u64) << 32) ^ (old_rows as u64) ^ 1),
    )
}

/// Streaming tensor completion: owns the evolving observation set, the
/// current model, and the residual hand-off between solves.
///
/// Lifecycle:
///
/// ```text
/// new(T₀) ── solve() ──▶ model₀            (cold)
///    apply(Δ₁)… apply(Δₖ)                  (incremental fold-in)
///    solve() ──▶ model₁                    (warm: factors + residual)
///    apply(Δ…), solve() ──▶ model₂ …
/// ```
///
/// * `apply` folds a [`DeltaBatch`] into the observed tensor **and** the
///   carried residual in one pass over the delta (plus a linear merge for
///   inserts): each touched cell's residual becomes `t − [[model…]](i)`,
///   computed with the same fold the solver's refresh kernels use, so the
///   carried residual stays bit-identical to a from-scratch rebuild.
/// * `solve` warm-starts ADMM from the previous factors and the carried
///   residual under the configured convergence budget
///   ([`StreamingSolver::set_budget`]). New slice indices get seeded
///   random rows (deterministic in the config seed, the mode, and the
///   pre-growth dimension — see the module source) so replays reproduce.
/// * Validation is atomic: a rejected batch leaves the solver untouched.
///
/// The host backend is used by `solve`; [`StreamingSolver::solve_distributed`]
/// runs the same warm-factor restart on a [`DisTenC`] cluster (the blocked
/// residual is rebuilt there — blocks live on remote machines, so there is
/// no hand-off to carry).
#[derive(Debug)]
pub struct StreamingSolver {
    cfg: AdmmConfig,
    solver: AdmmSolver,
    laplacians: Vec<Option<Laplacian>>,
    observed: CooTensor,
    model: Option<KruskalTensor>,
    carry: Option<ResidualHandoff>,
    generation: u64,
}

impl StreamingSolver {
    /// Create a streaming solver over an initial observation set.
    /// `laplacians[n]` is mode `n`'s optional similarity Laplacian; modes
    /// with one cannot grow (see [`StreamError::GrowthWithAux`]).
    pub fn new(
        mut observed: CooTensor,
        laplacians: Vec<Option<Laplacian>>,
        cfg: AdmmConfig,
    ) -> crate::Result<Self> {
        if laplacians.len() != observed.order() {
            return Err(StreamError::BadBatch(format!(
                "{} Laplacians for an order-{} tensor",
                laplacians.len(),
                observed.order()
            )));
        }
        let solver = AdmmSolver::new(cfg.clone())?;
        observed.sort_dedup();
        Ok(StreamingSolver {
            cfg,
            solver,
            laplacians,
            observed,
            model: None,
            carry: None,
            generation: 0,
        })
    }

    /// The current observation set.
    pub fn observed(&self) -> &CooTensor {
        &self.observed
    }

    /// The most recently solved model, if any.
    pub fn model(&self) -> Option<&KruskalTensor> {
        self.model.as_ref()
    }

    /// How many solves have completed (the model generation counter the
    /// serve tier tags responses with).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdmmConfig {
        &self.cfg
    }

    /// Change the convergence budget for subsequent re-solves. Streaming
    /// deployments typically run the initial solve to tight tolerance and
    /// then cap re-solve work per batch.
    pub fn set_budget(&mut self, max_iters: usize, tol: f64) -> crate::Result<()> {
        self.cfg.max_iters = max_iters;
        self.cfg.tol = tol;
        self.solver = AdmmSolver::new(self.cfg.clone())?;
        Ok(())
    }

    /// Fold one validated batch into the observed tensor, the model (new
    /// slice rows), and the carried residual. All-or-nothing: every check
    /// runs before the first mutation, so a rejected batch leaves the
    /// solver exactly as it was.
    pub fn apply(&mut self, batch: &DeltaBatch) -> crate::Result<()> {
        if batch.base_shape() != self.observed.shape() {
            return Err(StreamError::BadBatch(format!(
                "batch built for shape {:?}, tensor is {:?}",
                batch.base_shape(),
                self.observed.shape()
            )));
        }
        for (mode, &g) in batch.growth().iter().enumerate() {
            if g > 0 && self.laplacians[mode].is_some() {
                return Err(StreamError::GrowthWithAux { mode });
            }
        }
        // Resolve every update against the current support, and prove
        // every insert absent, before touching anything.
        let mut update_pos = Vec::with_capacity(batch.updates().len());
        for (idx, _) in batch.updates() {
            match self.observed.position_of(idx) {
                Some(pos) => update_pos.push(pos),
                None => return Err(StreamError::UnobservedUpdate { index: idx.clone() }),
            }
        }
        for (idx, _) in batch.inserts() {
            if self.observed.position_of(idx).is_some() {
                return Err(StreamError::AlreadyObserved { index: idx.clone() });
            }
        }

        // ---- Mutate: grow, update, insert — in that order. -------------
        let new_shape = batch.new_shape();
        if batch.growth().iter().any(|&g| g > 0) {
            self.observed.grow_shape(&new_shape)?;
            if let Some(c) = &mut self.carry {
                c.e.grow_shape(&new_shape)?;
            }
            if let Some(model) = &mut self.model {
                for (mode, &g) in batch.growth().iter().enumerate() {
                    if g == 0 {
                        continue;
                    }
                    let old = &model.factors()[mode];
                    let (old_rows, rank) = (old.rows(), old.cols());
                    let fresh = Mat::random(g, rank, growth_seed(self.cfg.seed, mode, old_rows));
                    let mut data = old.as_slice().to_vec();
                    data.extend_from_slice(fresh.as_slice());
                    model.set_factor(mode, Mat::from_vec(old_rows + g, rank, data))?;
                }
            }
        }
        for ((idx, v), &pos) in batch.updates().iter().zip(&update_pos) {
            self.observed.values_mut()[pos] = *v;
            if let Some(c) = &mut self.carry {
                // The model is present whenever a carry is (solve() set
                // both); keep the residual invariant e = t − [[model]].
                let model = self.model.as_ref().expect("carry without model");
                c.e.values_mut()[pos] = *v - model.eval(idx);
            }
        }
        if !batch.inserts().is_empty() {
            let mut patch = CooTensor::new(new_shape.clone());
            for (idx, v) in batch.inserts() {
                patch.push(idx, *v)?;
            }
            self.observed.merge_sorted(&patch)?;
            if let Some(c) = &mut self.carry {
                let model = self.model.as_ref().expect("carry without model");
                let mut resid = CooTensor::new(new_shape);
                for (idx, v) in batch.inserts() {
                    resid.push(idx, *v - model.eval(idx))?;
                }
                c.e.merge_sorted(&resid)?;
            }
        }
        if batch.is_structural() {
            // The support (or shape) changed: the carried layout
            // acceleration structures (CSF fiber trees, tiled entry
            // orders) no longer describe it. Drop them; the next solve
            // rebuilds.
            if let Some(c) = &mut self.carry {
                c.accel.clear();
            }
        }
        Ok(())
    }

    /// Re-solve on the host backend. Cold on the first call; afterwards a
    /// warm restart from the previous factors and the carried residual,
    /// bit-identical to [`AdmmSolver::solve_from`] on the current tensor.
    pub fn solve(&mut self) -> crate::Result<CompletionResult> {
        let laps: Vec<Option<&Laplacian>> = self.laplacians.iter().map(|l| l.as_ref()).collect();
        let (result, handoff) =
            self.solver
                .solve_streamed(&self.observed, &laps, self.model.as_ref(), self.carry.take())?;
        self.model = Some(result.model.clone());
        self.carry = Some(handoff);
        self.generation += 1;
        Ok(result)
    }

    /// Re-solve on a [`DisTenC`] cluster: warm factors, blocked residual
    /// rebuilt on the machines (no hand-off exists across a cluster). The
    /// local carry is cleared — the next host `solve` restarts from the
    /// distributed model with a residual rebuild.
    pub fn solve_distributed(&mut self, distenc: &DisTenC) -> crate::Result<CompletionResult> {
        let laps: Vec<Option<&Laplacian>> = self.laplacians.iter().map(|l| l.as_ref()).collect();
        let result = match &self.model {
            Some(m) => distenc.solve_from(&self.observed, &laps, m)?,
            None => distenc.solve(&self.observed, &laps)?,
        };
        self.model = Some(result.model.clone());
        self.carry = None;
        self.generation += 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(shape: &[usize], rank: usize, nnz: usize, seed: u64) -> CooTensor {
        let truth = KruskalTensor::random(shape, rank, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut mask = CooTensor::new(shape.to_vec());
        for _ in 0..nnz {
            let idx: Vec<usize> = shape.iter().map(|&d| rng.random_range(0..d)).collect();
            mask.push(&idx, 1.0).unwrap();
        }
        mask.sort_dedup();
        truth.eval_at(&mask).unwrap()
    }

    fn cfg(rank: usize) -> AdmmConfig {
        AdmmConfig { rank, max_iters: 6, tol: 1e-12, ..Default::default() }
    }

    #[test]
    fn apply_rejects_update_of_unobserved_cell() {
        let observed = planted(&[6, 5, 4], 2, 40, 1);
        let mut s = StreamingSolver::new(observed.clone(), vec![None, None, None], cfg(2)).unwrap();
        // Find a cell that is NOT observed.
        let mut idx = vec![0, 0, 0];
        while observed.position_of(&idx).is_some() {
            idx[2] += 1;
        }
        let b = DeltaBatch::try_new(&[6, 5, 4], &[0, 0, 0], vec![], vec![(idx.clone(), 1.0)])
            .unwrap();
        assert_eq!(s.apply(&b).unwrap_err(), StreamError::UnobservedUpdate { index: idx });
    }

    #[test]
    fn apply_rejects_insert_of_observed_cell() {
        let observed = planted(&[6, 5, 4], 2, 40, 2);
        let existing = observed.index(0).to_vec();
        let mut s = StreamingSolver::new(observed, vec![None, None, None], cfg(2)).unwrap();
        let b = DeltaBatch::try_new(&[6, 5, 4], &[0, 0, 0], vec![(existing.clone(), 1.0)], vec![])
            .unwrap();
        assert_eq!(s.apply(&b).unwrap_err(), StreamError::AlreadyObserved { index: existing });
        // Atomicity: the rejected batch left the tensor untouched.
        assert_eq!(s.observed().shape(), &[6, 5, 4]);
    }

    #[test]
    fn apply_rejects_growth_on_a_mode_with_aux_info() {
        use distenc_graph::builders::tridiagonal_chain;
        let observed = planted(&[6, 5, 4], 2, 40, 3);
        let lap = Laplacian::from_similarity(tridiagonal_chain(5));
        let mut s =
            StreamingSolver::new(observed, vec![None, Some(lap), None], cfg(2)).unwrap();
        let b = DeltaBatch::try_new(&[6, 5, 4], &[0, 1, 0], vec![], vec![]).unwrap();
        assert_eq!(s.apply(&b).unwrap_err(), StreamError::GrowthWithAux { mode: 1 });
    }

    #[test]
    fn apply_rejects_shape_mismatch() {
        let observed = planted(&[6, 5, 4], 2, 40, 4);
        let mut s = StreamingSolver::new(observed, vec![None, None, None], cfg(2)).unwrap();
        let b = DeltaBatch::try_new(&[7, 5, 4], &[0, 0, 0], vec![], vec![]).unwrap();
        assert!(matches!(s.apply(&b).unwrap_err(), StreamError::BadBatch(_)));
    }

    #[test]
    fn warm_resolve_is_bit_identical_to_solve_from() {
        let observed = planted(&[8, 7, 6], 2, 120, 5);
        let mut s = StreamingSolver::new(observed, vec![None, None, None], cfg(2)).unwrap();
        let first = s.solve().unwrap();

        // A mixed batch: one growth mode, inserts (one in the grown
        // slice), one value update.
        let upd = s.observed().index(3).to_vec();
        let mut ins = vec![(vec![8, 0, 0], 0.7)];
        let mut probe = vec![0, 0, 0];
        while s.observed().position_of(&probe).is_some() {
            probe[1] += 1;
        }
        ins.push((probe, 0.3));
        let b = DeltaBatch::try_new(&[8, 7, 6], &[1, 0, 0], ins, vec![(upd, -0.2)]).unwrap();
        s.apply(&b).unwrap();

        // Oracle: solve_from on the final tensor with the grown model.
        let oracle = AdmmSolver::new(cfg(2).clone())
            .unwrap()
            .solve_from(s.observed(), &[None, None, None], s.model().unwrap())
            .unwrap();
        let warm = s.solve().unwrap();
        assert_eq!(warm.iterations, oracle.iterations);
        for (a, b) in warm.model.factors().iter().zip(oracle.model.factors()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "warm solve must be bit-exact");
            }
        }
        assert_eq!(s.generation(), 2);
        let _ = first;
    }

    #[test]
    fn growth_rows_are_deterministic() {
        let observed = planted(&[6, 5, 4], 2, 60, 6);
        let run = || {
            let mut s =
                StreamingSolver::new(observed.clone(), vec![None, None, None], cfg(2)).unwrap();
            s.solve().unwrap();
            let b =
                DeltaBatch::try_new(&[6, 5, 4], &[2, 0, 0], vec![(vec![7, 1, 1], 1.0)], vec![])
                    .unwrap();
            s.apply(&b).unwrap();
            s.model().unwrap().factors()[0].as_slice().to_vec()
        };
        assert_eq!(run(), run());
    }
}
