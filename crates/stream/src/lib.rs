//! **distenc-stream** — streaming completion on top of the DisTenC solver.
//!
//! Production tensors are never finished: new interactions arrive, known
//! values get revised, and whole slices (new users, new items) appear.
//! The batch solvers in `distenc-core` answer this only with a cold
//! re-solve. This crate adds the incremental lifecycle:
//!
//! * [`DeltaBatch`] — a validated description of one change set: new
//!   nonzeros, value updates to existing entries, and per-mode dimension
//!   growth. Construction rejects out-of-range and duplicate coordinates
//!   with typed [`StreamError`]s; nothing panics.
//! * [`StreamingSolver`] — owns the evolving observed tensor, the current
//!   model, and the solver's residual hand-off. Applying a batch folds it
//!   into all three *incrementally* (`O(|Δ|·N·R)` model evaluations, one
//!   linear merge) instead of rebuilding anything, then a warm re-solve
//!   restarts ADMM from the previous factors under a convergence budget.
//!
//! The warm path is exact, not heuristic: after `apply`, the carried
//! residual equals `Ω∗(T − [[model…]])` bit-for-bit on the new support, so
//! a warm [`StreamingSolver::solve`] is bit-identical to
//! [`distenc_core::AdmmSolver::solve_from`] on the final tensor — only
//! faster, because the residual (and, for value-only deltas, the CSF fiber
//! trees) skip their `O(nnz)` rebuild.

#![warn(missing_docs)]

mod delta;
mod solver;

pub use delta::{DeltaBatch, StreamError};
pub use solver::StreamingSolver;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
