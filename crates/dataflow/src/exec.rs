//! Host execution backend: run independent work units on real threads.
//!
//! The simulated cluster models *virtual* time; this module decides how
//! the actual Rust closures behind each stage execute on the host. The
//! contract every caller relies on:
//!
//! **Determinism / bit-exactness.** [`Executor::run`] applies `f` to each
//! item independently and returns results **in item order**, regardless
//! of which thread computed what or when. As long as `f(i, item)` is a
//! pure function of its arguments (every kernel in this workspace is),
//! `ExecMode::Threads(n)` produces bit-identical output to
//! `ExecMode::Sequential` for every `n` — threads only change *wall*
//! time, never a single bit of the result. Reductions that combine the
//! per-item results must merge them in fixed item order for the same
//! guarantee to extend end-to-end; see DESIGN.md §9.

use scoped_pool::Pool;

/// How the host executes the real computation behind stages: on the
/// calling thread, or spread over a reusable thread pool.
///
/// Orthogonal to [`crate::Platform`]: `Platform` changes what the
/// *simulation* charges (Spark vs MapReduce semantics), `ExecMode`
/// changes how fast the host finishes the identical arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Everything on the calling thread, in item order.
    Sequential,
    /// Work units spread over a pool of this many threads. `Threads(0)`
    /// and `Threads(1)` behave like `Sequential`.
    Threads(usize),
}

impl ExecMode {
    /// Read the mode from the `DISTENC_THREADS` environment variable:
    /// unset, unparsable, `0`, or `1` mean [`ExecMode::Sequential`];
    /// `n ≥ 2` means [`ExecMode::Threads`]`(n)`. This is how CI runs the
    /// whole test suite under both backends without touching any test.
    pub fn from_env() -> ExecMode {
        match std::env::var("DISTENC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 2 => ExecMode::Threads(n),
            _ => ExecMode::Sequential,
        }
    }

    /// Worker count this mode implies (`Sequential` → 1).
    pub fn threads(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Threads(n) => n.max(1),
        }
    }
}

/// The default mode comes from the environment (see
/// [`ExecMode::from_env`]), so `DISTENC_THREADS=4 cargo test` exercises
/// the threaded backend across the entire suite.
impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::from_env()
    }
}

/// A reusable executor bound to an [`ExecMode`]. Cheap to create in
/// `Sequential` mode; `Threads(n)` spawns its pool once, up front.
///
/// Dispatch is allocation-free: multi-item batches go through
/// `Pool::run_indexed`, which shares one borrowed closure and has workers
/// claim item indices from a pool-resident counter — no per-item job
/// boxes. Single-item batches, `Threads(≤1)`, and single-core hosts (see
/// [`Executor::parallelism`]) run inline on the caller's stack.
#[derive(Debug)]
pub struct Executor {
    mode: ExecMode,
    pool: Option<Pool>,
    /// Host cores available at construction time
    /// (`std::thread::available_parallelism`, 1 on error).
    host: usize,
}

impl Executor {
    /// Build an executor (spawning the pool for `Threads(n ≥ 2)`).
    pub fn new(mode: ExecMode) -> Executor {
        let pool = match mode.threads() {
            0 | 1 => None,
            n => Some(Pool::new(n)),
        };
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        Executor { mode, pool, host }
    }

    /// The mode this executor runs under.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Number of host threads used (1 when sequential).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, Pool::threads)
    }

    /// Concurrency the host can actually deliver: the configured worker
    /// count clamped to `available_parallelism`. Size chunk counts from
    /// this, not [`Executor::threads`] — splitting work into more chunks
    /// than the host has cores buys no concurrency and pays dispatch
    /// overhead per chunk (the oversplit pessimization BENCH_parallel.json
    /// measured: `--threads 8` on a 1-core host ran ~12% slower than
    /// sequential). Any chunk count is bit-exact; this only affects speed.
    pub fn parallelism(&self) -> usize {
        self.threads().min(self.host)
    }

    /// Whether batches should be dispatched to the pool at all: with one
    /// usable core the pool adds handoff latency and zero concurrency, so
    /// everything runs inline (bit-identical either way).
    #[inline]
    fn inline_only(&self) -> bool {
        self.pool.is_none() || self.host == 1
    }

    /// Apply `f` to every item, returning the results **in item order**.
    /// Items are independent work units; `f` must not rely on execution
    /// order across items (it cannot: it only gets `&T`).
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.inline_only() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        self.run_mut(&mut out, |i, slot| *slot = Some(f(i, &items[i])));
        out.into_iter()
            .map(|r| r.expect("broadcast task completed"))
            .collect()
    }

    /// Apply `f` to every item in place. Same ordering guarantee as
    /// [`Executor::run`]: each item is touched exactly once, by exactly
    /// one thread, with no cross-item interaction.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if self.inline_only() || items.len() <= 1 {
            for (i, t) in items.iter_mut().enumerate() {
                f(i, t);
            }
            return;
        }
        let pool = self.pool.as_ref().expect("inline_only is false");
        // Hand each claimed index a disjoint `&mut` into the slice. The
        // wrapper restores `Sync` for the raw base pointer; soundness
        // rests on `run_indexed` claiming each index exactly once.
        struct Base<T>(*mut T);
        unsafe impl<T: Send> Sync for Base<T> {}
        let base = Base(items.as_mut_ptr());
        let f = &f;
        pool.run_indexed(items.len(), &move |i| {
            let base = &base;
            // SAFETY: `i < items.len()` and each index is claimed by
            // exactly one worker, so this `&mut` aliases nothing.
            let item = unsafe { &mut *base.0.add(i) };
            f(i, item);
        });
    }
}

/// Split `len` items into at most `parts` contiguous half-open ranges of
/// near-equal size (the trailing ranges are one shorter when `len` does
/// not divide evenly). Useful for chunking element-wise kernels where any
/// blocking is bit-exact.
pub fn even_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_parses() {
        // Can't mutate the environment safely in parallel tests; exercise
        // the numeric mapping instead.
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert_eq!(ExecMode::Threads(0).threads(), 1);
        assert_eq!(ExecMode::Threads(1).threads(), 1);
        assert_eq!(ExecMode::Threads(6).threads(), 6);
    }

    #[test]
    fn sequential_and_threaded_agree_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq = Executor::new(ExecMode::Sequential);
        let par = Executor::new(ExecMode::Threads(4));
        let f = |i: usize, x: &u64| (i as u64) * 1_000_003 + x * x;
        assert_eq!(seq.run(&items, f), par.run(&items, f));
    }

    #[test]
    fn run_mut_touches_each_item_once() {
        let mut a: Vec<usize> = vec![0; 100];
        let mut b = a.clone();
        Executor::new(ExecMode::Sequential).run_mut(&mut a, |i, x| *x = i + 1);
        Executor::new(ExecMode::Threads(3)).run_mut(&mut b, |i, x| *x = i + 1);
        assert_eq!(a, b);
        assert_eq!(a[99], 100);
    }

    #[test]
    fn threads_one_does_not_spawn_a_pool() {
        assert_eq!(Executor::new(ExecMode::Threads(1)).threads(), 1);
        assert_eq!(Executor::new(ExecMode::Threads(0)).threads(), 1);
        assert_eq!(Executor::new(ExecMode::Threads(2)).threads(), 2);
    }

    #[test]
    fn parallelism_clamps_to_host_cores() {
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(Executor::new(ExecMode::Sequential).parallelism(), 1);
        assert_eq!(Executor::new(ExecMode::Threads(2)).parallelism(), 2.min(host));
        let wide = Executor::new(ExecMode::Threads(1024));
        assert_eq!(wide.parallelism(), host, "oversubscription is clamped");
        assert_eq!(wide.threads(), 1024, "threads() still reports the request");
    }

    #[test]
    fn even_ranges_cover_exactly() {
        for (len, parts) in [(10, 3), (0, 4), (5, 8), (100, 1), (7, 7)] {
            let ranges = even_ranges(len, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, len, "len {len} parts {parts}");
            if len > 0 {
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "near-equal sizes: {sizes:?}");
            }
        }
    }
}
