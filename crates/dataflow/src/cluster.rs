//! The simulated cluster: virtual clock, memory ledger, traffic counters.

use crate::config::{ClusterConfig, Platform};
use crate::exec::Executor;
use crate::fault::Fault;
use crate::{DataflowError, Result};
use parking_lot::Mutex;

/// One task of a stage, described by the resources it consumes. The engine
/// derives virtual time and memory pressure purely from these numbers; the
/// actual Rust closure producing the data runs separately (and its real
/// wall-clock time is irrelevant to the model).
#[derive(Debug, Clone, Copy)]
pub struct TaskCost {
    /// Machine the task runs on.
    pub machine: usize,
    /// Floating-point (or equivalent) operations performed.
    pub flops: f64,
    /// Bytes of input the task reads.
    pub input_bytes: u64,
    /// Bytes of output the task produces.
    pub output_bytes: u64,
}

/// Snapshot of the cluster's accounting counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Virtual seconds elapsed since construction.
    pub virtual_seconds: f64,
    /// Number of stages executed.
    pub stages: u64,
    /// Bytes that crossed machine boundaries in shuffles.
    pub shuffled_bytes: u64,
    /// Bytes replicated to machines by broadcasts.
    pub broadcast_bytes: u64,
    /// Bytes spilled to / read from disk (MapReduce mode only).
    pub disk_bytes: u64,
    /// Largest per-machine resident footprint observed, in bytes.
    pub peak_resident: u64,
    /// Virtual seconds attributable to injected faults and their
    /// recovery: repeated task attempts, straggler-window slowdown beyond
    /// the clean schedule, stage attempts lost to machine crashes, and
    /// driver-side restore work noted via [`Cluster::note_recovery`].
    /// Always ≤ `virtual_seconds`; zero for an empty fault plan.
    pub recovery_seconds: f64,
    /// Machines lost to injected [`Fault::MachineCrash`] events.
    pub machines_lost: u64,
    /// Task re-executions caused by [`Fault::TransientTask`] events
    /// (failed attempts that were retried, whether or not the stage
    /// ultimately succeeded).
    pub task_retries: u64,
    /// Fault events from the plan that have fired so far.
    pub faults_injected: u64,
}

/// A fault event from the plan that has not finished firing yet.
#[derive(Debug)]
struct PendingFault {
    fault: Fault,
    /// For straggler windows: whether the window has begun (the event is
    /// counted as injected once, at its first slow stage).
    started: bool,
}

#[derive(Debug)]
struct State {
    clock: f64,
    resident: Vec<u64>,
    peak_resident: Vec<u64>,
    shuffled_bytes: u64,
    broadcast_bytes: u64,
    disk_bytes: u64,
    stages: u64,
    faults: Vec<PendingFault>,
    recovery_seconds: f64,
    machines_lost: u64,
    task_retries: u64,
    faults_injected: u64,
}

/// The simulated cluster. All mutation happens behind a mutex so `&Cluster`
/// can be shared freely by distributed collections.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    state: Mutex<State>,
    exec: Executor,
}

impl Cluster {
    /// Create a cluster from its configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero machines or zero cores.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0, "cluster needs at least one machine");
        assert!(cfg.cores_per_machine > 0, "machines need at least one core");
        let m = cfg.machines;
        let exec = Executor::new(cfg.exec);
        let faults = cfg
            .faults
            .events
            .iter()
            .map(|&fault| PendingFault { fault, started: false })
            .collect();
        Cluster {
            cfg,
            exec,
            state: Mutex::new(State {
                clock: 0.0,
                resident: vec![0; m],
                peak_resident: vec![0; m],
                shuffled_bytes: 0,
                broadcast_bytes: 0,
                disk_bytes: 0,
                stages: 0,
                faults,
                recovery_seconds: 0.0,
                machines_lost: 0,
                task_retries: 0,
                faults_injected: 0,
            }),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The host execution backend the cluster's real computation runs on
    /// (built once from [`ClusterConfig::exec`]). Algorithms run their
    /// per-partition closures through this; the choice never changes a
    /// result bit, only host wall time.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Deterministic machine assignment for a partition index.
    pub fn machine_for_partition(&self, part: usize) -> usize {
        part % self.cfg.machines
    }

    /// Current accounting snapshot.
    pub fn metrics(&self) -> Metrics {
        let s = self.state.lock();
        Metrics {
            virtual_seconds: s.clock,
            stages: s.stages,
            shuffled_bytes: s.shuffled_bytes,
            broadcast_bytes: s.broadcast_bytes,
            disk_bytes: s.disk_bytes,
            peak_resident: s.peak_resident.iter().copied().max().unwrap_or(0),
            recovery_seconds: s.recovery_seconds,
            machines_lost: s.machines_lost,
            task_retries: s.task_retries,
            faults_injected: s.faults_injected,
        }
    }

    /// Virtual seconds elapsed.
    pub fn now(&self) -> f64 {
        self.state.lock().clock
    }

    /// Reserve `bytes` of resident memory on `machine` (persisting a
    /// dataset partition, caching factor blocks, …). In MapReduce mode
    /// nothing stays resident — the bytes are spilled to disk instead,
    /// charged at disk rate.
    pub fn reserve(&self, machine: usize, bytes: u64) -> Result<()> {
        if machine >= self.cfg.machines {
            return Err(DataflowError::BadMachine { machine, machines: self.cfg.machines });
        }
        let mut s = self.state.lock();
        match self.cfg.mode {
            Platform::Spark => {
                let new = s.resident[machine] + bytes;
                if new > self.cfg.mem_per_machine {
                    return Err(DataflowError::OutOfMemory {
                        machine,
                        needed: new,
                        capacity: self.cfg.mem_per_machine,
                    });
                }
                s.resident[machine] = new;
                s.peak_resident[machine] = s.peak_resident[machine].max(new);
                Ok(())
            }
            Platform::MapReduce => {
                s.disk_bytes += bytes;
                s.clock += bytes as f64 * self.cfg.cost.seconds_per_disk_byte;
                Ok(())
            }
        }
    }

    /// Release resident memory reserved earlier (no-op in MapReduce mode,
    /// mirroring [`Cluster::reserve`]). The subtraction saturates, so
    /// releasing bytes a crash already wiped is harmless.
    pub fn release(&self, machine: usize, bytes: u64) -> Result<()> {
        if machine >= self.cfg.machines {
            return Err(DataflowError::BadMachine { machine, machines: self.cfg.machines });
        }
        if self.cfg.mode == Platform::Spark {
            let mut s = self.state.lock();
            s.resident[machine] = s.resident[machine].saturating_sub(bytes);
        }
        Ok(())
    }

    /// Attribute `seconds` of already-charged virtual time to fault
    /// recovery (driver-side restore work: checkpoint deserialization and
    /// broadcast, lineage re-reads). Adds to
    /// [`Metrics::recovery_seconds`] only — the clock itself is advanced
    /// by the operations performing the recovery.
    pub fn note_recovery(&self, seconds: f64) {
        self.state.lock().recovery_seconds += seconds.max(0.0);
    }

    /// Execute (account) one stage. Per machine: compute time is total
    /// task flops divided across its cores; the working set (inputs +
    /// outputs of its tasks) must fit beside resident data; MapReduce mode
    /// additionally pays disk I/O for all task inputs and outputs. Stage
    /// duration is the per-stage latency plus the slowest machine.
    ///
    /// Fault events from the configured [`crate::FaultPlan`] whose stage
    /// has arrived fire here: transient task failures re-run the victim
    /// machine's work (stretching the stage, or aborting it with
    /// [`DataflowError::TaskFailed`] past the retry budget), straggler
    /// windows multiply the victim's compute time, and a machine crash
    /// charges the doomed attempt, wipes the victim's resident memory and
    /// returns [`DataflowError::MachineLost`]. At most one terminal event
    /// (crash preferred over task-abort) fires per stage, so a retried
    /// stage always makes progress through a multi-event plan.
    pub fn run_stage(&self, tasks: &[TaskCost]) -> Result<()> {
        let m = self.cfg.machines;
        let mut flops = vec![0.0_f64; m];
        let mut working = vec![0u64; m];
        for t in tasks {
            if t.machine >= m {
                return Err(DataflowError::BadMachine { machine: t.machine, machines: m });
            }
            flops[t.machine] += t.flops;
            working[t.machine] += t.input_bytes + t.output_bytes;
        }

        let mut s = self.state.lock();
        // Memory check first: a stage that cannot fit never runs.
        for (mach, &work) in working.iter().enumerate() {
            let needed = s.resident[mach] + work;
            if needed > self.cfg.mem_per_machine {
                return Err(DataflowError::OutOfMemory {
                    machine: mach,
                    needed,
                    capacity: self.cfg.mem_per_machine,
                });
            }
            s.peak_resident[mach] = s.peak_resident[mach].max(needed);
        }

        // Pull the fault events due at this stage. Machine indices in the
        // plan are clamped to the cluster (a plan is configuration, not
        // task input). Crash and task-abort events are consumed here;
        // straggler windows persist until they expire.
        let stage = s.stages;
        let mut crash: Option<usize> = None;
        let mut transient: Option<(usize, u32)> = None;
        let mut slow: Vec<(usize, f64)> = Vec::new();
        if !s.faults.is_empty() {
            if let Some(i) = s.faults.iter().position(
                |p| matches!(p.fault, Fault::MachineCrash { at_stage, .. } if at_stage <= stage),
            ) {
                if let Fault::MachineCrash { machine, .. } = s.faults.remove(i).fault {
                    crash = Some(machine.min(m - 1));
                }
            }
            if crash.is_none() {
                if let Some(i) = s.faults.iter().position(
                    |p| matches!(p.fault, Fault::TransientTask { at_stage, .. } if at_stage <= stage),
                ) {
                    if let Fault::TransientTask { machine, failures, .. } =
                        s.faults.remove(i).fault
                    {
                        transient = Some((machine.min(m - 1), failures));
                    }
                }
            }
            let mut i = 0;
            while i < s.faults.len() {
                if let Fault::Straggler { at_stage, machine, factor, stages } = s.faults[i].fault {
                    if at_stage.saturating_add(stages) <= stage {
                        s.faults.remove(i);
                        continue;
                    }
                    if at_stage <= stage {
                        if !s.faults[i].started {
                            s.faults[i].started = true;
                            s.faults_injected += 1;
                        }
                        slow.push((machine.min(m - 1), factor));
                    }
                }
                i += 1;
            }
        }

        let cores = self.cfg.cores_per_machine as f64;
        // `slowest` includes injected-fault effects; `slowest_clean` is
        // what the stage would have cost without them — the difference is
        // honest recovery/slowdown cost. With an empty plan the two are
        // computed identically, keeping fault-free runs bit-exact.
        let mut slowest = 0.0_f64;
        let mut slowest_clean = 0.0_f64;
        for mach in 0..m {
            let mut t = flops[mach] * self.cfg.cost.seconds_per_flop / cores;
            if let Some((straggler, slowdown)) = self.cfg.straggler {
                if mach == straggler {
                    t *= slowdown;
                }
            }
            if self.cfg.mode == Platform::MapReduce {
                t += working[mach] as f64 * self.cfg.cost.seconds_per_disk_byte;
            }
            let mut tf = t;
            for &(sm, sf) in &slow {
                if sm == mach {
                    tf *= sf;
                }
            }
            if let Some((tm, failures)) = transient {
                if tm == mach {
                    // Failed attempts re-run serially on the same machine.
                    let runs = failures.min(self.cfg.faults.max_task_retries) + 1;
                    tf *= runs as f64;
                }
            }
            slowest_clean = slowest_clean.max(t);
            slowest = slowest.max(tf);
        }
        let latency = match self.cfg.mode {
            Platform::Spark => self.cfg.cost.stage_latency,
            Platform::MapReduce => {
                s.disk_bytes += working.iter().sum::<u64>();
                self.cfg.cost.mr_job_latency
            }
        };
        s.clock += latency + slowest;
        s.recovery_seconds += slowest - slowest_clean;
        s.stages += 1;
        if let Some((tm, failures)) = transient {
            s.faults_injected += 1;
            let allowed = self.cfg.faults.max_task_retries;
            s.task_retries += u64::from(failures.min(allowed));
            if failures > allowed {
                return Err(DataflowError::TaskFailed {
                    machine: tm,
                    stage,
                    attempts: allowed + 1,
                });
            }
        }
        if let Some(cm) = crash {
            s.faults_injected += 1;
            s.machines_lost += 1;
            // The whole attempt — latency plus the stage's clean work —
            // was wasted: the driver has to redo it after recovering.
            s.recovery_seconds += latency + slowest_clean;
            s.resident[cm] = 0;
            return Err(DataflowError::MachineLost { machine: cm, stage });
        }
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a shuffle: `sent[m]` / `received[m]` are the bytes machine
    /// `m` sends and receives. Transfers proceed in parallel, so the time
    /// is the slowest machine's `(sent + received)` at network rate.
    ///
    /// A due [`Fault::MachineCrash`] also surfaces here: the shuffle
    /// aborts with [`DataflowError::MachineLost`] before any bytes or
    /// time are charged, and the victim's resident data is wiped.
    pub fn shuffle(&self, sent: &[u64], received: &[u64]) -> Result<()> {
        let m = self.cfg.machines;
        if sent.len() != m || received.len() != m {
            return Err(DataflowError::Invalid(format!(
                "shuffle needs one entry per machine: sent {}, received {}, machines {m}",
                sent.len(),
                received.len()
            )));
        }
        let total: u64 = sent.iter().sum();
        if total != received.iter().sum::<u64>() {
            return Err(DataflowError::Invalid(format!(
                "shuffle must conserve bytes: sent {total}, received {}",
                received.iter().sum::<u64>()
            )));
        }
        let slowest = sent
            .iter()
            .zip(received)
            .map(|(&a, &b)| a + b)
            .max()
            .unwrap_or(0);
        let mut s = self.state.lock();
        let stage = s.stages;
        if let Some(i) = s.faults.iter().position(
            |p| matches!(p.fault, Fault::MachineCrash { at_stage, .. } if at_stage <= stage),
        ) {
            if let Fault::MachineCrash { machine, .. } = s.faults.remove(i).fault {
                let machine = machine.min(m - 1);
                s.faults_injected += 1;
                s.machines_lost += 1;
                s.resident[machine] = 0;
                return Err(DataflowError::MachineLost { machine, stage });
            }
        }
        s.shuffled_bytes += total;
        s.clock += slowest as f64 * self.cfg.cost.seconds_per_net_byte;
        if self.cfg.mode == Platform::MapReduce {
            // Map outputs are materialized to disk before reducers fetch.
            s.disk_bytes += total;
            s.clock += total as f64 * self.cfg.cost.seconds_per_disk_byte
                / self.cfg.machines as f64;
        }
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a broadcast of `bytes` from the driver to every machine
    /// (pipelined: time is one traversal; traffic is `bytes × machines`).
    pub fn broadcast_charge(&self, bytes: u64) -> Result<()> {
        let mut s = self.state.lock();
        s.broadcast_bytes += bytes * self.cfg.machines as u64;
        s.clock += bytes as f64 * self.cfg.cost.seconds_per_net_byte;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a gather of per-machine bytes to the driver (`collect`).
    pub fn collect_charge(&self, per_machine_bytes: &[u64]) -> Result<()> {
        let mut s = self.state.lock();
        let total: u64 = per_machine_bytes.iter().sum();
        s.clock += total as f64 * self.cfg.cost.seconds_per_net_byte;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Manually advance the virtual clock (driver-side computation).
    pub fn advance(&self, seconds: f64) -> Result<()> {
        let mut s = self.state.lock();
        s.clock += seconds;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Convenience: account driver-side flops (single machine, no cores).
    pub fn charge_driver_flops(&self, flops: f64) -> Result<()> {
        self.advance(flops * self.cfg.cost.seconds_per_flop)
    }

    fn check_budget_locked(s: &State, cfg: &ClusterConfig) -> Result<()> {
        if let Some(budget) = cfg.time_budget {
            if s.clock > budget {
                return Err(DataflowError::OutOfTime { elapsed: s.clock, budget });
            }
        }
        Ok(())
    }
}

/// RAII guard over [`Cluster::reserve`]/[`Cluster::release`]: every
/// reservation made through the guard is released when it drops, so an
/// early `?` return between reservations can no longer leak resident
/// bytes. Dropping the guard models a job tearing down — its cached
/// partitions are evicted whether the job succeeded or failed.
#[derive(Debug)]
pub struct MemoryReservation<'c> {
    cluster: &'c Cluster,
    held: Vec<(usize, u64)>,
}

impl<'c> MemoryReservation<'c> {
    /// An empty guard holding nothing on `cluster`.
    pub fn new(cluster: &'c Cluster) -> Self {
        MemoryReservation { cluster, held: Vec::new() }
    }

    /// Reserve `bytes` on `machine`; the reservation is released when the
    /// guard drops.
    pub fn reserve(&mut self, machine: usize, bytes: u64) -> Result<()> {
        self.cluster.reserve(machine, bytes)?;
        self.held.push((machine, bytes));
        Ok(())
    }

    /// Total bytes this guard currently holds.
    pub fn held_bytes(&self) -> u64 {
        self.held.iter().map(|&(_, b)| b).sum()
    }
}

impl Drop for MemoryReservation<'_> {
    fn drop(&mut self) {
        for &(machine, bytes) in &self.held {
            // Machines were validated at reserve time; the saturating
            // release also absorbs a crashed machine whose resident
            // bytes were already wiped.
            let _ = self.cluster.release(machine, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;
    use crate::fault::FaultPlan;

    fn cluster(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::test(machines))
    }

    #[test]
    fn stage_time_is_slowest_machine() {
        let c = Cluster::new(ClusterConfig {
            cost: CostModel {
                stage_latency: 0.0,
                seconds_per_flop: 1.0e-9,
                ..CostModel::default()
            },
            ..ClusterConfig::test(2)
        });
        // Machine 0: 2e9 flops, machine 1: 4e9 flops; 2 cores each at 1e-9
        // s/flop ⇒ 1 s vs 2 s ⇒ stage takes 2 s.
        c.run_stage(&[
            TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 },
            TaskCost { machine: 1, flops: 4e9, input_bytes: 0, output_bytes: 0 },
        ])
        .unwrap();
        assert!((c.now() - 2.0).abs() < 1e-9, "clock = {}", c.now());
    }

    #[test]
    fn stage_latency_added_per_stage() {
        let c = cluster(1);
        c.run_stage(&[]).unwrap();
        c.run_stage(&[]).unwrap();
        let m = c.metrics();
        assert_eq!(m.stages, 2);
        let want = 2.0 * c.config().cost.stage_latency;
        assert!((m.virtual_seconds - want).abs() < 1e-12);
    }

    #[test]
    fn oom_when_working_set_exceeds_capacity() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(1000));
        let err = c
            .run_stage(&[TaskCost {
                machine: 0,
                flops: 0.0,
                input_bytes: 800,
                output_bytes: 300,
            }])
            .unwrap_err();
        assert!(matches!(err, DataflowError::OutOfMemory { machine: 0, needed: 1100, .. }));
    }

    #[test]
    fn resident_memory_counts_against_stages() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(1000));
        c.reserve(0, 700).unwrap();
        assert!(c
            .run_stage(&[TaskCost { machine: 0, flops: 0.0, input_bytes: 400, output_bytes: 0 }])
            .is_err());
        c.release(0, 700).unwrap();
        assert!(c
            .run_stage(&[TaskCost { machine: 0, flops: 0.0, input_bytes: 400, output_bytes: 0 }])
            .is_ok());
    }

    #[test]
    fn reserve_beyond_capacity_fails() {
        let c = Cluster::new(ClusterConfig::test(2).with_memory(100));
        assert!(c.reserve(0, 90).is_ok());
        assert!(c.reserve(0, 20).is_err());
        assert!(c.reserve(1, 90).is_ok(), "machines are independent");
    }

    #[test]
    fn shuffle_counts_bytes_and_time() {
        let c = cluster(2);
        c.shuffle(&[100, 50], &[50, 100]).unwrap();
        let m = c.metrics();
        assert_eq!(m.shuffled_bytes, 150);
        // Slowest machine moves 150 bytes at the network rate.
        let want = 150.0 * c.config().cost.seconds_per_net_byte;
        assert!((m.virtual_seconds - want).abs() < 1e-15);
    }

    #[test]
    fn mapreduce_charges_disk() {
        let spark = Cluster::new(ClusterConfig::test(1));
        let mr = Cluster::new(ClusterConfig::test(1).with_mode(Platform::MapReduce));
        let task = TaskCost { machine: 0, flops: 1e6, input_bytes: 1 << 20, output_bytes: 1 << 20 };
        spark.run_stage(&[task]).unwrap();
        mr.run_stage(&[task]).unwrap();
        assert!(mr.now() > spark.now(), "MapReduce must be slower per stage");
        assert_eq!(mr.metrics().disk_bytes, 2 << 20);
        assert_eq!(spark.metrics().disk_bytes, 0);
    }

    #[test]
    fn mapreduce_persist_goes_to_disk_not_ram() {
        let mr = Cluster::new(
            ClusterConfig::test(1)
                .with_mode(Platform::MapReduce)
                .with_memory(100),
        );
        // Far beyond RAM, but MapReduce spills, so no OOM.
        mr.reserve(0, 10_000).unwrap();
        assert_eq!(mr.metrics().disk_bytes, 10_000);
        assert_eq!(mr.metrics().peak_resident, 0);
    }

    #[test]
    fn time_budget_trips_out_of_time() {
        let c = Cluster::new(ClusterConfig::test(1).with_time_budget(Some(1.0)));
        let err = c.advance(2.0).unwrap_err();
        assert!(matches!(err, DataflowError::OutOfTime { .. }));
    }

    #[test]
    fn straggler_slows_its_machine_only() {
        let mut cfg = ClusterConfig::test(2);
        cfg.cost.stage_latency = 0.0;
        cfg.straggler = Some((1, 10.0));
        let c = Cluster::new(cfg);
        // Balanced work, but machine 1 is 10× slower.
        c.run_stage(&[
            TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 },
            TaskCost { machine: 1, flops: 2e9, input_bytes: 0, output_bytes: 0 },
        ])
        .unwrap();
        let want = 2e9 * c.config().cost.seconds_per_flop / 2.0 * 10.0;
        assert!((c.now() - want).abs() < 1e-9);
    }

    #[test]
    fn broadcast_traffic_scales_with_machines() {
        let c = cluster(4);
        c.broadcast_charge(1000).unwrap();
        assert_eq!(c.metrics().broadcast_bytes, 4000);
    }

    #[test]
    fn peak_resident_tracks_high_water_mark() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(10_000));
        c.reserve(0, 4000).unwrap();
        c.release(0, 4000).unwrap();
        c.reserve(0, 1000).unwrap();
        assert_eq!(c.metrics().peak_resident, 4000);
    }

    #[test]
    fn bad_machine_is_a_typed_error_not_a_panic() {
        let c = cluster(2);
        let task = TaskCost { machine: 5, flops: 1.0, input_bytes: 0, output_bytes: 0 };
        assert!(matches!(
            c.run_stage(&[task]),
            Err(DataflowError::BadMachine { machine: 5, machines: 2 })
        ));
        assert!(matches!(c.reserve(9, 1), Err(DataflowError::BadMachine { machine: 9, .. })));
        assert!(matches!(c.release(9, 1), Err(DataflowError::BadMachine { machine: 9, .. })));
        // Nothing was charged by the rejected stage.
        assert_eq!(c.metrics().stages, 0);
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    fn shuffle_rejects_malformed_vectors() {
        let c = cluster(2);
        assert!(matches!(c.shuffle(&[1], &[1, 0]), Err(DataflowError::Invalid(_))));
        assert!(matches!(c.shuffle(&[5, 0], &[0, 4]), Err(DataflowError::Invalid(_))));
        assert_eq!(c.metrics().shuffled_bytes, 0);
    }

    #[test]
    fn machine_crash_charges_the_lost_attempt_and_wipes_resident() {
        let plan = FaultPlan::new(vec![Fault::MachineCrash { at_stage: 1, machine: 0 }]);
        let c = Cluster::new(ClusterConfig::test(2).with_faults(plan));
        c.reserve(0, 500).unwrap();
        let task = TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 };
        c.run_stage(&[task]).unwrap();
        let before = c.now();
        let err = c.run_stage(&[task]).unwrap_err();
        assert!(matches!(err, DataflowError::MachineLost { machine: 0, stage: 1 }));
        let m = c.metrics();
        // The doomed attempt's full cost (latency + work) was charged and
        // attributed to recovery.
        let attempt = c.config().cost.stage_latency
            + 2e9 * c.config().cost.seconds_per_flop / c.config().cores_per_machine as f64;
        assert!((c.now() - before - attempt).abs() < 1e-12);
        assert!((m.recovery_seconds - attempt).abs() < 1e-12);
        assert_eq!(m.machines_lost, 1);
        assert_eq!(m.faults_injected, 1);
        // Resident memory on the victim is gone; the stage after recovery
        // can use its full capacity again.
        c.reserve(0, c.config().mem_per_machine).unwrap();
        // The crash fired once: re-running the stage succeeds.
        c.release(0, c.config().mem_per_machine).unwrap();
        assert!(c.run_stage(&[task]).is_ok());
    }

    #[test]
    fn crash_surfaces_in_shuffle_too() {
        let plan = FaultPlan::new(vec![Fault::MachineCrash { at_stage: 0, machine: 1 }]);
        let c = Cluster::new(ClusterConfig::test(2).with_faults(plan));
        c.reserve(1, 100).unwrap();
        let err = c.shuffle(&[10, 10], &[10, 10]).unwrap_err();
        assert!(matches!(err, DataflowError::MachineLost { machine: 1, stage: 0 }));
        // Aborted before charging: no bytes or time recorded.
        let m = c.metrics();
        assert_eq!(m.shuffled_bytes, 0);
        assert_eq!(m.virtual_seconds, 0.0);
        assert_eq!(m.machines_lost, 1);
        // One-shot: the next shuffle goes through.
        assert!(c.shuffle(&[10, 10], &[10, 10]).is_ok());
    }

    #[test]
    fn transient_failure_stretches_stage_and_counts_retries() {
        let plan = FaultPlan::new(vec![Fault::TransientTask {
            at_stage: 0,
            machine: 0,
            failures: 2,
        }]);
        let mut cfg = ClusterConfig::test(1).with_faults(plan);
        cfg.cost.stage_latency = 0.0;
        let c = Cluster::new(cfg);
        let task = TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 };
        c.run_stage(&[task]).unwrap();
        let clean = 2e9 * c.config().cost.seconds_per_flop / 2.0;
        // 2 failures within the default budget of 3 retries ⇒ 3 runs.
        assert!((c.now() - 3.0 * clean).abs() < 1e-9, "clock = {}", c.now());
        let m = c.metrics();
        assert_eq!(m.task_retries, 2);
        assert_eq!(m.faults_injected, 1);
        assert!((m.recovery_seconds - 2.0 * clean).abs() < 1e-9);
        // One-shot: the next stage runs clean.
        let before = c.now();
        c.run_stage(&[task]).unwrap();
        assert!((c.now() - before - clean).abs() < 1e-9);
    }

    #[test]
    fn transient_past_retry_budget_aborts_with_task_failed() {
        let plan = FaultPlan::new(vec![Fault::TransientTask {
            at_stage: 0,
            machine: 0,
            failures: 9,
        }])
        .with_max_task_retries(2);
        let c = Cluster::new(ClusterConfig::test(1).with_faults(plan));
        let task = TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 };
        let err = c.run_stage(&[task]).unwrap_err();
        assert!(matches!(
            err,
            DataflowError::TaskFailed { machine: 0, stage: 0, attempts: 3 }
        ));
        // All three attempts were charged before the abort.
        let m = c.metrics();
        assert_eq!(m.task_retries, 2);
        let clean = 2e9 * c.config().cost.seconds_per_flop / 2.0;
        assert!((m.recovery_seconds - 2.0 * clean).abs() < 1e-9);
    }

    #[test]
    fn straggler_event_slows_a_window_then_expires() {
        let plan = FaultPlan::new(vec![Fault::Straggler {
            at_stage: 1,
            machine: 0,
            factor: 4.0,
            stages: 2,
        }]);
        let mut cfg = ClusterConfig::test(1).with_faults(plan);
        cfg.cost.stage_latency = 0.0;
        let c = Cluster::new(cfg);
        let task = TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 };
        let clean = 2e9 * c.config().cost.seconds_per_flop / 2.0;
        let mut spans = Vec::new();
        for _ in 0..4 {
            let before = c.now();
            c.run_stage(&[task]).unwrap();
            spans.push(c.now() - before);
        }
        assert!((spans[0] - clean).abs() < 1e-9, "before the window");
        assert!((spans[1] - 4.0 * clean).abs() < 1e-9, "window stage 1");
        assert!((spans[2] - 4.0 * clean).abs() < 1e-9, "window stage 2");
        assert!((spans[3] - clean).abs() < 1e-9, "after the window");
        let m = c.metrics();
        assert_eq!(m.faults_injected, 1, "a window counts once");
        assert!((m.recovery_seconds - 2.0 * 3.0 * clean).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let a = Cluster::new(ClusterConfig::test(2));
        let b = Cluster::new(ClusterConfig::test(2).with_faults(FaultPlan::none()));
        for c in [&a, &b] {
            c.reserve(0, 1000).unwrap();
            c.run_stage(&[TaskCost { machine: 1, flops: 3e7, input_bytes: 64, output_bytes: 8 }])
                .unwrap();
            c.shuffle(&[40, 0], &[0, 40]).unwrap();
        }
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma, mb);
        assert_eq!(ma.virtual_seconds.to_bits(), mb.virtual_seconds.to_bits());
        assert_eq!(ma.recovery_seconds, 0.0);
        assert_eq!(ma.faults_injected, 0);
    }

    #[test]
    fn reservation_guard_releases_on_drop() {
        let c = Cluster::new(ClusterConfig::test(2).with_memory(1000));
        {
            let mut guard = MemoryReservation::new(&c);
            guard.reserve(0, 600).unwrap();
            guard.reserve(1, 400).unwrap();
            assert_eq!(guard.held_bytes(), 1000);
            // A failed reservation is not held.
            assert!(guard.reserve(0, 600).is_err());
            assert_eq!(guard.held_bytes(), 1000);
        }
        // Everything the guard held was released; capacity is free again.
        assert!(c.reserve(0, 1000).is_ok());
        assert!(c.reserve(1, 1000).is_ok());
        // The high-water mark still remembers the guard's footprint.
        assert_eq!(c.metrics().peak_resident, 1000);
    }

    #[test]
    fn reservation_guard_survives_a_crash_wipe() {
        let plan = FaultPlan::new(vec![Fault::MachineCrash { at_stage: 0, machine: 0 }]);
        let c = Cluster::new(ClusterConfig::test(1).with_memory(1000).with_faults(plan));
        let mut guard = MemoryReservation::new(&c);
        guard.reserve(0, 800).unwrap();
        let err = c.run_stage(&[]).unwrap_err();
        assert!(matches!(err, DataflowError::MachineLost { .. }));
        drop(guard); // releases bytes the crash already wiped — harmless
        assert!(c.reserve(0, 1000).is_ok());
    }
}
