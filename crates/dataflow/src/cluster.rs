//! The simulated cluster: virtual clock, memory ledger, traffic counters.

use crate::config::{ClusterConfig, Platform};
use crate::exec::Executor;
use crate::{DataflowError, Result};
use parking_lot::Mutex;

/// One task of a stage, described by the resources it consumes. The engine
/// derives virtual time and memory pressure purely from these numbers; the
/// actual Rust closure producing the data runs separately (and its real
/// wall-clock time is irrelevant to the model).
#[derive(Debug, Clone, Copy)]
pub struct TaskCost {
    /// Machine the task runs on.
    pub machine: usize,
    /// Floating-point (or equivalent) operations performed.
    pub flops: f64,
    /// Bytes of input the task reads.
    pub input_bytes: u64,
    /// Bytes of output the task produces.
    pub output_bytes: u64,
}

/// Snapshot of the cluster's accounting counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Virtual seconds elapsed since construction.
    pub virtual_seconds: f64,
    /// Number of stages executed.
    pub stages: u64,
    /// Bytes that crossed machine boundaries in shuffles.
    pub shuffled_bytes: u64,
    /// Bytes replicated to machines by broadcasts.
    pub broadcast_bytes: u64,
    /// Bytes spilled to / read from disk (MapReduce mode only).
    pub disk_bytes: u64,
    /// Largest per-machine resident footprint observed, in bytes.
    pub peak_resident: u64,
}

#[derive(Debug)]
struct State {
    clock: f64,
    resident: Vec<u64>,
    peak_resident: Vec<u64>,
    shuffled_bytes: u64,
    broadcast_bytes: u64,
    disk_bytes: u64,
    stages: u64,
}

/// The simulated cluster. All mutation happens behind a mutex so `&Cluster`
/// can be shared freely by distributed collections.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    state: Mutex<State>,
    exec: Executor,
}

impl Cluster {
    /// Create a cluster from its configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero machines or zero cores.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.machines > 0, "cluster needs at least one machine");
        assert!(cfg.cores_per_machine > 0, "machines need at least one core");
        let m = cfg.machines;
        let exec = Executor::new(cfg.exec);
        Cluster {
            cfg,
            exec,
            state: Mutex::new(State {
                clock: 0.0,
                resident: vec![0; m],
                peak_resident: vec![0; m],
                shuffled_bytes: 0,
                broadcast_bytes: 0,
                disk_bytes: 0,
                stages: 0,
            }),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The host execution backend the cluster's real computation runs on
    /// (built once from [`ClusterConfig::exec`]). Algorithms run their
    /// per-partition closures through this; the choice never changes a
    /// result bit, only host wall time.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// Deterministic machine assignment for a partition index.
    pub fn machine_for_partition(&self, part: usize) -> usize {
        part % self.cfg.machines
    }

    /// Current accounting snapshot.
    pub fn metrics(&self) -> Metrics {
        let s = self.state.lock();
        Metrics {
            virtual_seconds: s.clock,
            stages: s.stages,
            shuffled_bytes: s.shuffled_bytes,
            broadcast_bytes: s.broadcast_bytes,
            disk_bytes: s.disk_bytes,
            peak_resident: s.peak_resident.iter().copied().max().unwrap_or(0),
        }
    }

    /// Virtual seconds elapsed.
    pub fn now(&self) -> f64 {
        self.state.lock().clock
    }

    /// Reserve `bytes` of resident memory on `machine` (persisting a
    /// dataset partition, caching factor blocks, …). In MapReduce mode
    /// nothing stays resident — the bytes are spilled to disk instead,
    /// charged at disk rate.
    pub fn reserve(&self, machine: usize, bytes: u64) -> Result<()> {
        let mut s = self.state.lock();
        match self.cfg.mode {
            Platform::Spark => {
                let new = s.resident[machine] + bytes;
                if new > self.cfg.mem_per_machine {
                    return Err(DataflowError::OutOfMemory {
                        machine,
                        needed: new,
                        capacity: self.cfg.mem_per_machine,
                    });
                }
                s.resident[machine] = new;
                s.peak_resident[machine] = s.peak_resident[machine].max(new);
                Ok(())
            }
            Platform::MapReduce => {
                s.disk_bytes += bytes;
                s.clock += bytes as f64 * self.cfg.cost.seconds_per_disk_byte;
                Ok(())
            }
        }
    }

    /// Release resident memory reserved earlier (no-op in MapReduce mode,
    /// mirroring [`Cluster::reserve`]).
    pub fn release(&self, machine: usize, bytes: u64) {
        if self.cfg.mode == Platform::Spark {
            let mut s = self.state.lock();
            s.resident[machine] = s.resident[machine].saturating_sub(bytes);
        }
    }

    /// Execute (account) one stage. Per machine: compute time is total
    /// task flops divided across its cores; the working set (inputs +
    /// outputs of its tasks) must fit beside resident data; MapReduce mode
    /// additionally pays disk I/O for all task inputs and outputs. Stage
    /// duration is the per-stage latency plus the slowest machine.
    pub fn run_stage(&self, tasks: &[TaskCost]) -> Result<()> {
        let m = self.cfg.machines;
        let mut flops = vec![0.0_f64; m];
        let mut working = vec![0u64; m];
        for t in tasks {
            assert!(t.machine < m, "task names machine {} of {m}", t.machine);
            flops[t.machine] += t.flops;
            working[t.machine] += t.input_bytes + t.output_bytes;
        }

        let mut s = self.state.lock();
        // Memory check first: a stage that cannot fit never runs.
        for (mach, &work) in working.iter().enumerate() {
            let needed = s.resident[mach] + work;
            if needed > self.cfg.mem_per_machine {
                return Err(DataflowError::OutOfMemory {
                    machine: mach,
                    needed,
                    capacity: self.cfg.mem_per_machine,
                });
            }
            s.peak_resident[mach] = s.peak_resident[mach].max(needed);
        }

        let cores = self.cfg.cores_per_machine as f64;
        let mut slowest = 0.0_f64;
        for mach in 0..m {
            let mut t = flops[mach] * self.cfg.cost.seconds_per_flop / cores;
            if let Some((straggler, slowdown)) = self.cfg.straggler {
                if mach == straggler {
                    t *= slowdown;
                }
            }
            if self.cfg.mode == Platform::MapReduce {
                t += working[mach] as f64 * self.cfg.cost.seconds_per_disk_byte;
            }
            slowest = slowest.max(t);
        }
        let latency = match self.cfg.mode {
            Platform::Spark => self.cfg.cost.stage_latency,
            Platform::MapReduce => {
                s.disk_bytes += working.iter().sum::<u64>();
                self.cfg.cost.mr_job_latency
            }
        };
        s.clock += latency + slowest;
        s.stages += 1;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a shuffle: `sent[m]` / `received[m]` are the bytes machine
    /// `m` sends and receives. Transfers proceed in parallel, so the time
    /// is the slowest machine's `(sent + received)` at network rate.
    pub fn shuffle(&self, sent: &[u64], received: &[u64]) -> Result<()> {
        assert_eq!(sent.len(), self.cfg.machines);
        assert_eq!(received.len(), self.cfg.machines);
        let total: u64 = sent.iter().sum();
        debug_assert_eq!(total, received.iter().sum::<u64>(), "shuffle must conserve bytes");
        let slowest = sent
            .iter()
            .zip(received)
            .map(|(&a, &b)| a + b)
            .max()
            .unwrap_or(0);
        let mut s = self.state.lock();
        s.shuffled_bytes += total;
        s.clock += slowest as f64 * self.cfg.cost.seconds_per_net_byte;
        if self.cfg.mode == Platform::MapReduce {
            // Map outputs are materialized to disk before reducers fetch.
            s.disk_bytes += total;
            s.clock += total as f64 * self.cfg.cost.seconds_per_disk_byte
                / self.cfg.machines as f64;
        }
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a broadcast of `bytes` from the driver to every machine
    /// (pipelined: time is one traversal; traffic is `bytes × machines`).
    pub fn broadcast_charge(&self, bytes: u64) -> Result<()> {
        let mut s = self.state.lock();
        s.broadcast_bytes += bytes * self.cfg.machines as u64;
        s.clock += bytes as f64 * self.cfg.cost.seconds_per_net_byte;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Account a gather of per-machine bytes to the driver (`collect`).
    pub fn collect_charge(&self, per_machine_bytes: &[u64]) -> Result<()> {
        let mut s = self.state.lock();
        let total: u64 = per_machine_bytes.iter().sum();
        s.clock += total as f64 * self.cfg.cost.seconds_per_net_byte;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Manually advance the virtual clock (driver-side computation).
    pub fn advance(&self, seconds: f64) -> Result<()> {
        let mut s = self.state.lock();
        s.clock += seconds;
        Self::check_budget_locked(&s, &self.cfg)
    }

    /// Convenience: account driver-side flops (single machine, no cores).
    pub fn charge_driver_flops(&self, flops: f64) -> Result<()> {
        self.advance(flops * self.cfg.cost.seconds_per_flop)
    }

    fn check_budget_locked(s: &State, cfg: &ClusterConfig) -> Result<()> {
        if let Some(budget) = cfg.time_budget {
            if s.clock > budget {
                return Err(DataflowError::OutOfTime { elapsed: s.clock, budget });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostModel;

    fn cluster(machines: usize) -> Cluster {
        Cluster::new(ClusterConfig::test(machines))
    }

    #[test]
    fn stage_time_is_slowest_machine() {
        let c = Cluster::new(ClusterConfig {
            cost: CostModel {
                stage_latency: 0.0,
                seconds_per_flop: 1.0e-9,
                ..CostModel::default()
            },
            ..ClusterConfig::test(2)
        });
        // Machine 0: 2e9 flops, machine 1: 4e9 flops; 2 cores each at 1e-9
        // s/flop ⇒ 1 s vs 2 s ⇒ stage takes 2 s.
        c.run_stage(&[
            TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 },
            TaskCost { machine: 1, flops: 4e9, input_bytes: 0, output_bytes: 0 },
        ])
        .unwrap();
        assert!((c.now() - 2.0).abs() < 1e-9, "clock = {}", c.now());
    }

    #[test]
    fn stage_latency_added_per_stage() {
        let c = cluster(1);
        c.run_stage(&[]).unwrap();
        c.run_stage(&[]).unwrap();
        let m = c.metrics();
        assert_eq!(m.stages, 2);
        let want = 2.0 * c.config().cost.stage_latency;
        assert!((m.virtual_seconds - want).abs() < 1e-12);
    }

    #[test]
    fn oom_when_working_set_exceeds_capacity() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(1000));
        let err = c
            .run_stage(&[TaskCost {
                machine: 0,
                flops: 0.0,
                input_bytes: 800,
                output_bytes: 300,
            }])
            .unwrap_err();
        assert!(matches!(err, DataflowError::OutOfMemory { machine: 0, needed: 1100, .. }));
    }

    #[test]
    fn resident_memory_counts_against_stages() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(1000));
        c.reserve(0, 700).unwrap();
        assert!(c
            .run_stage(&[TaskCost { machine: 0, flops: 0.0, input_bytes: 400, output_bytes: 0 }])
            .is_err());
        c.release(0, 700);
        assert!(c
            .run_stage(&[TaskCost { machine: 0, flops: 0.0, input_bytes: 400, output_bytes: 0 }])
            .is_ok());
    }

    #[test]
    fn reserve_beyond_capacity_fails() {
        let c = Cluster::new(ClusterConfig::test(2).with_memory(100));
        assert!(c.reserve(0, 90).is_ok());
        assert!(c.reserve(0, 20).is_err());
        assert!(c.reserve(1, 90).is_ok(), "machines are independent");
    }

    #[test]
    fn shuffle_counts_bytes_and_time() {
        let c = cluster(2);
        c.shuffle(&[100, 50], &[50, 100]).unwrap();
        let m = c.metrics();
        assert_eq!(m.shuffled_bytes, 150);
        // Slowest machine moves 150 bytes at the network rate.
        let want = 150.0 * c.config().cost.seconds_per_net_byte;
        assert!((m.virtual_seconds - want).abs() < 1e-15);
    }

    #[test]
    fn mapreduce_charges_disk() {
        let spark = Cluster::new(ClusterConfig::test(1));
        let mr = Cluster::new(ClusterConfig::test(1).with_mode(Platform::MapReduce));
        let task = TaskCost { machine: 0, flops: 1e6, input_bytes: 1 << 20, output_bytes: 1 << 20 };
        spark.run_stage(&[task]).unwrap();
        mr.run_stage(&[task]).unwrap();
        assert!(mr.now() > spark.now(), "MapReduce must be slower per stage");
        assert_eq!(mr.metrics().disk_bytes, 2 << 20);
        assert_eq!(spark.metrics().disk_bytes, 0);
    }

    #[test]
    fn mapreduce_persist_goes_to_disk_not_ram() {
        let mr = Cluster::new(
            ClusterConfig::test(1)
                .with_mode(Platform::MapReduce)
                .with_memory(100),
        );
        // Far beyond RAM, but MapReduce spills, so no OOM.
        mr.reserve(0, 10_000).unwrap();
        assert_eq!(mr.metrics().disk_bytes, 10_000);
        assert_eq!(mr.metrics().peak_resident, 0);
    }

    #[test]
    fn time_budget_trips_out_of_time() {
        let c = Cluster::new(ClusterConfig::test(1).with_time_budget(Some(1.0)));
        let err = c.advance(2.0).unwrap_err();
        assert!(matches!(err, DataflowError::OutOfTime { .. }));
    }

    #[test]
    fn straggler_slows_its_machine_only() {
        let mut cfg = ClusterConfig::test(2);
        cfg.cost.stage_latency = 0.0;
        cfg.straggler = Some((1, 10.0));
        let c = Cluster::new(cfg);
        // Balanced work, but machine 1 is 10× slower.
        c.run_stage(&[
            TaskCost { machine: 0, flops: 2e9, input_bytes: 0, output_bytes: 0 },
            TaskCost { machine: 1, flops: 2e9, input_bytes: 0, output_bytes: 0 },
        ])
        .unwrap();
        let want = 2e9 * c.config().cost.seconds_per_flop / 2.0 * 10.0;
        assert!((c.now() - want).abs() < 1e-9);
    }

    #[test]
    fn broadcast_traffic_scales_with_machines() {
        let c = cluster(4);
        c.broadcast_charge(1000).unwrap();
        assert_eq!(c.metrics().broadcast_bytes, 4000);
    }

    #[test]
    fn peak_resident_tracks_high_water_mark() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(10_000));
        c.reserve(0, 4000).unwrap();
        c.release(0, 4000);
        c.reserve(0, 1000).unwrap();
        assert_eq!(c.metrics().peak_resident, 4000);
    }
}
