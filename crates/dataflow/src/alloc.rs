//! Counting global allocator (behind the `alloc-count` feature).
//!
//! Enabling the feature installs [`CountingAllocator`] as the program's
//! `#[global_allocator]`: every allocation is forwarded to the system
//! allocator after bumping two sets of counters —
//!
//! * **global** (`AtomicU64`): every allocation on every thread, which is
//!   what a threaded solver run accumulates (thread-pool job boxes
//!   included), and
//! * **thread-local** (`Cell`, const-initialized so the counter itself
//!   never allocates): allocations made by *the current thread only*,
//!   which is what the sequential allocation-budget test asserts to be
//!   exactly zero per steady-state iteration.
//!
//! Deallocations are intentionally not tracked: the budget contract is
//! about allocation *pressure* (allocator traffic in the hot loop), and
//! counting frees would double-charge buffer swaps.
//!
//! The counters are observed through [`snapshot`] and compared with
//! [`AllocSnapshot::delta`]; see `tests/alloc_budget.rs` and
//! `benches/solver_core.rs` for the two consumers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static LOCAL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A pass-through allocator that counts allocations before delegating to
/// [`System`]. Installed as the global allocator by this crate when the
/// `alloc-count` feature is on.
pub struct CountingAllocator;

#[inline]
fn record(bytes: usize) {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    GLOBAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    // `try_with`: thread-local storage may already be gone during thread
    // teardown; those allocations still land in the global counters.
    let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = LOCAL_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

// SAFETY: pure pass-through to `System`; the counters are plain atomics /
// const-initialized thread-locals and never allocate themselves.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocations on every thread since process start.
    pub global_allocs: u64,
    /// Total bytes requested on every thread since process start.
    pub global_bytes: u64,
    /// Allocations made by the calling thread since it started.
    pub thread_allocs: u64,
    /// Bytes requested by the calling thread since it started.
    pub thread_bytes: u64,
}

impl AllocSnapshot {
    /// Counter increments between `since` and `self` (later minus
    /// earlier; both snapshots must come from the same thread for the
    /// `thread_*` fields to be meaningful).
    pub fn delta(self, since: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            global_allocs: self.global_allocs - since.global_allocs,
            global_bytes: self.global_bytes - since.global_bytes,
            thread_allocs: self.thread_allocs - since.thread_allocs,
            thread_bytes: self.thread_bytes - since.thread_bytes,
        }
    }
}

/// Read the current counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        global_allocs: GLOBAL_ALLOCS.load(Ordering::Relaxed),
        global_bytes: GLOBAL_BYTES.load(Ordering::Relaxed),
        thread_allocs: LOCAL_ALLOCS.with(Cell::get),
        thread_bytes: LOCAL_BYTES.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_an_allocation() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&v);
        let d = snapshot().delta(before);
        assert!(d.thread_allocs >= 1, "Vec::with_capacity must be counted");
        assert!(d.thread_bytes >= 8 * 1024);
        assert!(d.global_allocs >= d.thread_allocs);
    }

    #[test]
    fn zero_delta_without_allocations() {
        let buf = vec![0u64; 64];
        let before = snapshot();
        let s: u64 = std::hint::black_box(&buf).iter().sum();
        std::hint::black_box(s);
        let d = snapshot().delta(before);
        assert_eq!(d.thread_allocs, 0);
        assert_eq!(d.thread_bytes, 0);
    }
}
