//! A Spark-like in-process dataflow engine with resource accounting.
//!
//! The paper runs DisTenC on a 10-node Spark cluster (9 executors × 8
//! cores, 12 GB each) and compares against MapReduce-based systems. This
//! crate is the substitution for that infrastructure (DESIGN.md §2): a
//! deterministic, single-process engine that executes real computation
//! over partitioned collections while accounting for the three resources
//! the paper's evaluation measures —
//!
//! * **virtual time** — per-stage wall-clock model: `max` over machines of
//!   (compute ÷ cores) plus network transfer, per-stage scheduling
//!   latency, and (in MapReduce mode) disk spills between stages;
//! * **memory** — per-machine resident bytes for persisted datasets plus
//!   per-stage working sets, with out-of-memory failures surfacing as
//!   [`DataflowError::OutOfMemory`] (the "O.O.M." entries of Fig. 3);
//! * **shuffled bytes** — every record that crosses a machine boundary is
//!   counted (the quantity of Lemma 3).
//!
//! "Machines" are accounting domains decoupled from the host's physical
//! cores: results are assembled in partition order regardless of which
//! host thread computed what, which keeps every run bit-for-bit
//! reproducible even under [`ExecMode::Threads`] (see [`exec`]).
//! Spark-vs-Hadoop is modelled by [`Platform`]: `MapReduce` charges disk
//! I/O for every stage's inputs and outputs and makes caching worthless,
//! which is the paper's explanation for SCouT/FlexiFact's slow
//! convergence (Figs. 6b, 7b).

#![warn(missing_docs)]

#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod cluster;
pub mod config;
pub mod dist;
pub mod exec;
pub mod fault;
#[cfg(feature = "pass-count")]
pub mod passes;

/// With `alloc-count` enabled, every crate in the workspace that links
/// this one gets the counting allocator installed process-wide, so the
/// allocation-budget test and `benches/solver_core.rs` can observe the
/// solver's heap traffic without instrumenting call sites.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static COUNTING_ALLOCATOR: alloc::CountingAllocator = alloc::CountingAllocator;

pub use cluster::{Cluster, MemoryReservation, Metrics};
pub use config::{ClusterConfig, CostModel, Platform};
pub use dist::{Broadcast, Dist};
pub use exec::{even_ranges, ExecMode, Executor};
pub use fault::{Fault, FaultPlan};

/// Errors surfaced by the engine. `OutOfMemory` and `OutOfTime` are
/// *results* of the simulation (they reproduce the paper's O.O.M./O.O.T.
/// table entries), not bugs.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// A stage's working set plus resident data exceeded a machine's
    /// memory capacity.
    OutOfMemory {
        /// Machine that overflowed.
        machine: usize,
        /// Bytes the stage needed on that machine.
        needed: u64,
        /// The machine's capacity.
        capacity: u64,
    },
    /// The virtual clock passed the configured time budget (the paper's
    /// 8-hour out-of-time cutoff).
    OutOfTime {
        /// Virtual seconds elapsed.
        elapsed: f64,
        /// The configured budget.
        budget: f64,
    },
    /// An operation was invoked with inconsistent arguments (e.g. joining
    /// collections from different clusters).
    Invalid(String),
    /// A machine was lost mid-operation (injected via
    /// [`fault::FaultPlan`]): its resident data is gone and the driver
    /// must recover — restore a checkpoint or recompute lineage — before
    /// retrying. The failed attempt's virtual time has been charged.
    MachineLost {
        /// The machine that died.
        machine: usize,
        /// Global stage number at which it died.
        stage: u64,
    },
    /// A task kept failing past the fault plan's retry budget; the stage
    /// aborted after charging every attempt.
    TaskFailed {
        /// Machine the flaky task ran on.
        machine: usize,
        /// Global stage number of the aborted stage.
        stage: u64,
        /// Attempts made (original run plus retries).
        attempts: u32,
    },
    /// An operation named a machine outside the cluster. Replaces the
    /// pre-fault-model panic: malformed input on the failure path must
    /// surface as a typed error, never a panic.
    BadMachine {
        /// The out-of-range machine index.
        machine: usize,
        /// Number of machines in the cluster.
        machines: usize,
    },
}

impl std::fmt::Display for DataflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowError::OutOfMemory { machine, needed, capacity } => write!(
                f,
                "out of memory on machine {machine}: needed {needed} B of {capacity} B"
            ),
            DataflowError::OutOfTime { elapsed, budget } => {
                write!(f, "out of time: {elapsed:.1}s elapsed of {budget:.1}s budget")
            }
            DataflowError::Invalid(msg) => write!(f, "invalid dataflow operation: {msg}"),
            DataflowError::MachineLost { machine, stage } => {
                write!(f, "machine {machine} lost at stage {stage}")
            }
            DataflowError::TaskFailed { machine, stage, attempts } => write!(
                f,
                "task on machine {machine} failed {attempts} attempts at stage {stage}"
            ),
            DataflowError::BadMachine { machine, machines } => {
                write!(f, "operation names machine {machine} of a {machines}-machine cluster")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataflowError>;
