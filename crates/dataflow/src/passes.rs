//! Pass-count instrument: how many times do kernels sweep the nonzeros?
//!
//! DisTenC's §III-D complexity argument says every iteration is `O(nnz)`;
//! the remaining constant factor is *how many* passes over the entry list
//! each iteration makes. This module (compiled only under the
//! `pass-count` feature, mirroring `alloc-count`) gives tests a
//! host-independent way to pin that constant: each entry-sweeping kernel
//! calls [`record_sweep`] exactly **once per kernel invocation** — never
//! per thread, chunk, or partition — so the count is identical whatever
//! `DISTENC_THREADS` or `available_parallelism` says.
//!
//! What counts as a sweep: one full traversal of the nonzero entry list
//! that loads factor rows per entry (MTTKRP, residual evaluation, the
//! fused refresh+MTTKRP kernel, CSF root walks). Values-only folds
//! (`frob_norm_sq`, `CsfTensor::set_values`) touch no indices or factor
//! rows — they are memory-bound on an `nnz`-length `f64` slice, not on
//! the entry structure — and are deliberately not counted.
//!
//! The counter is process-global and monotonic; tests difference it
//! around the region of interest (see `tests/pass_count.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

static SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Record one full entry-list sweep. Called once per kernel invocation.
#[inline]
pub fn record_sweep() {
    SWEEPS.fetch_add(1, Ordering::Relaxed);
}

/// Total sweeps recorded since process start (monotonic; difference two
/// readings to count a region).
#[inline]
pub fn sweeps() -> u64 {
    SWEEPS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = sweeps();
        record_sweep();
        record_sweep();
        assert!(sweeps() >= before + 2);
    }
}
