//! Pass-count instrument: how many times do kernels sweep the nonzeros?
//!
//! DisTenC's §III-D complexity argument says every iteration is `O(nnz)`;
//! the remaining constant factor is *how many* passes over the entry list
//! each iteration makes. This module (compiled only under the
//! `pass-count` feature, mirroring `alloc-count`) gives tests a
//! host-independent way to pin that constant: each entry-sweeping kernel
//! calls [`record_sweep`] exactly **once per kernel invocation** — never
//! per thread, chunk, or partition — so the count is identical whatever
//! `DISTENC_THREADS` or `available_parallelism` says.
//!
//! What counts as a sweep: one full traversal of the nonzero entry list
//! that loads factor rows per entry (MTTKRP, residual evaluation, the
//! fused refresh+MTTKRP kernel, CSF root walks). Values-only folds
//! (`frob_norm_sq`, `CsfTensor::set_values`) touch no indices or factor
//! rows — they are memory-bound on an `nnz`-length `f64` slice, not on
//! the entry structure — and are deliberately not counted.
//!
//! Alongside sweeps, the instrument counts **entries touched**: how many
//! entry records a kernel actually loaded factor rows for. For the exact
//! kernels a sweep touches every nonzero, so `entries = sweeps × nnz`; the
//! sketched solver tier gathers only its sampled subset per step, and the
//! entries counter is what proves — host-independently — that a sketched
//! iteration costs `O(samples·N)` entry loads instead of `O(nnz·N)`
//! (`tests/pass_count.rs` pins both).
//!
//! The counters are process-global and monotonic; tests difference them
//! around the region of interest (see `tests/pass_count.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

static SWEEPS: AtomicU64 = AtomicU64::new(0);
static ENTRIES: AtomicU64 = AtomicU64::new(0);

/// Record one full entry-list sweep over `entries` nonzeros. Called once
/// per kernel invocation.
#[inline]
pub fn record_sweep(entries: usize) {
    SWEEPS.fetch_add(1, Ordering::Relaxed);
    ENTRIES.fetch_add(entries as u64, Ordering::Relaxed);
}

/// Record a partial gather that touched `entries` nonzeros without
/// traversing the full list (the sketched tier's sampled kernels). Ticks
/// the entries counter only — a sampled gather is not a sweep.
#[inline]
pub fn record_gather(entries: usize) {
    ENTRIES.fetch_add(entries as u64, Ordering::Relaxed);
}

/// Total sweeps recorded since process start (monotonic; difference two
/// readings to count a region).
#[inline]
pub fn sweeps() -> u64 {
    SWEEPS.load(Ordering::Relaxed)
}

/// Total entries touched since process start (monotonic; difference two
/// readings to count a region).
#[inline]
pub fn entries_touched() -> u64 {
    ENTRIES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_gather_skips_sweeps() {
        // One test (not several) because the counters are process-global
        // and other tests may tick them concurrently — only lower bounds
        // on our own contributions are assertable.
        let sweeps_before = sweeps();
        let entries_before = entries_touched();
        record_sweep(10);
        record_sweep(7);
        record_gather(25);
        assert!(sweeps() >= sweeps_before + 2);
        assert!(entries_touched() >= entries_before + 42);
    }
}
