//! Typed distributed collections (the engine's RDD analog).
//!
//! A [`Dist<T>`] is a list of partitions pinned to machines
//! (`partition i → machine i mod M`). Transformations execute the real
//! Rust closure over every partition *and* account the stage's resources
//! on the owning [`Cluster`]; shuffling transformations additionally count
//! cross-machine record movement. The op set mirrors what the paper's
//! §III-F implementation uses: `map`, `flatMap`, `mapPartitions`,
//! `reduceByKey`, `aggregateByKey`(= [`Dist::group_by_key`]), `join`,
//! broadcast variables, and persistence.

use crate::cluster::{Cluster, TaskCost};
use crate::{DataflowError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A partitioned, machine-pinned collection bound to a cluster.
#[derive(Debug)]
pub struct Dist<'c, T> {
    cluster: &'c Cluster,
    parts: Vec<Vec<T>>,
    record_bytes: usize,
    persisted_bytes: Option<Vec<u64>>,
}

impl<'c, T> Dist<'c, T> {
    /// Distribute `data` round-robin over `num_parts` partitions,
    /// accounting the initial placement stage (the `O(nnz)` initial
    /// shuffle of Lemma 3).
    pub fn from_vec(cluster: &'c Cluster, data: Vec<T>, num_parts: usize) -> Result<Self> {
        if num_parts == 0 {
            return Err(DataflowError::Invalid("need at least one partition".into()));
        }
        let record_bytes = std::mem::size_of::<T>().max(1);
        let mut parts: Vec<Vec<T>> = (0..num_parts).map(|_| Vec::new()).collect();
        for (i, item) in data.into_iter().enumerate() {
            parts[i % num_parts].push(item);
        }
        let d = Dist { cluster, parts, record_bytes, persisted_bytes: None };
        // Loading counts as a scatter from the driver (hosted on machine 0)
        // plus one output-only stage.
        let mut sent = vec![0u64; cluster.machines()];
        let mut received = vec![0u64; cluster.machines()];
        for (p, part) in d.parts.iter().enumerate() {
            received[cluster.machine_for_partition(p)] += (part.len() * record_bytes) as u64;
        }
        sent[0] = received.iter().sum();
        cluster.shuffle(&sent, &received)?;
        d.stage(0.0, 1.0)?;
        Ok(d)
    }

    /// Wrap explicit partitions without any placement charge (used when a
    /// partitioner has already decided the layout, e.g. Algorithm 2's
    /// blocks).
    pub fn from_parts(cluster: &'c Cluster, parts: Vec<Vec<T>>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        Dist {
            cluster,
            parts,
            record_bytes: std::mem::size_of::<T>().max(1),
            persisted_bytes: None,
        }
    }

    /// Override the per-record byte estimate (for records owning heap data
    /// the engine cannot see through `size_of`).
    pub fn with_record_bytes(mut self, bytes: usize) -> Self {
        self.record_bytes = bytes.max(1);
        self
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &'c Cluster {
        self.cluster
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Total records across partitions (driver-side metadata; free).
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// True when the collection holds no records.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Read-only view of the partitions (driver-side; used by algorithms
    /// for local iteration after the distributed stages are accounted).
    pub fn parts(&self) -> &[Vec<T>] {
        &self.parts
    }

    /// Per-record byte estimate.
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Pin this collection in executor memory (Spark `persist`). Memory is
    /// released on drop or [`Dist::unpersist`].
    pub fn persist(&mut self) -> Result<()> {
        if self.persisted_bytes.is_some() {
            return Ok(());
        }
        let mut per_machine = vec![0u64; self.cluster.machines()];
        for (p, part) in self.parts.iter().enumerate() {
            per_machine[self.cluster.machine_for_partition(p)] +=
                (part.len() * self.record_bytes) as u64;
        }
        for (m, &b) in per_machine.iter().enumerate() {
            if b > 0 {
                self.cluster.reserve(m, b)?;
            }
        }
        self.persisted_bytes = Some(per_machine);
        Ok(())
    }

    /// Release persisted memory.
    pub fn unpersist(&mut self) {
        if let Some(per_machine) = self.persisted_bytes.take() {
            for (m, &b) in per_machine.iter().enumerate() {
                if b > 0 {
                    // Machine indices come from machine_for_partition,
                    // so the release cannot name a bad machine.
                    let _ = self.cluster.release(m, b);
                }
            }
        }
    }

    /// Account one narrow stage over this collection's partitions.
    fn stage(&self, flops_per_record: f64, out_ratio: f64) -> Result<()> {
        let tasks: Vec<TaskCost> = self
            .parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                let bytes = (part.len() * self.record_bytes) as u64;
                TaskCost {
                    machine: self.cluster.machine_for_partition(p),
                    flops: part.len() as f64 * flops_per_record,
                    input_bytes: bytes,
                    output_bytes: (bytes as f64 * out_ratio) as u64,
                }
            })
            .collect();
        self.cluster.run_stage(&tasks)
    }

    /// Element-wise transformation (Spark `map`). `flops_per_record` feeds
    /// the time model; pass the per-record cost of `f`.
    pub fn map<U>(&self, flops_per_record: f64, f: impl Fn(&T) -> U + Sync) -> Result<Dist<'c, U>>
    where
        T: Sync,
        U: Send,
    {
        let out_bytes = std::mem::size_of::<U>().max(1);
        self.stage(flops_per_record, out_bytes as f64 / self.record_bytes as f64)?;
        let parts = self
            .cluster
            .executor()
            .run(&self.parts, |_, part| part.iter().map(&f).collect());
        Ok(Dist { cluster: self.cluster, parts, record_bytes: out_bytes, persisted_bytes: None })
    }

    /// One-to-many transformation (Spark `flatMap`).
    pub fn flat_map<U>(
        &self,
        flops_per_record: f64,
        f: impl Fn(&T) -> Vec<U> + Sync,
    ) -> Result<Dist<'c, U>>
    where
        T: Sync,
        U: Send,
    {
        let out_bytes = std::mem::size_of::<U>().max(1);
        let parts: Vec<Vec<U>> = self
            .cluster
            .executor()
            .run(&self.parts, |_, part| part.iter().flat_map(&f).collect());
        let out = Dist {
            cluster: self.cluster,
            parts,
            record_bytes: out_bytes,
            persisted_bytes: None,
        };
        // Charge with actual output sizes.
        let tasks: Vec<TaskCost> = self
            .parts
            .iter()
            .zip(&out.parts)
            .enumerate()
            .map(|(p, (inp, outp))| TaskCost {
                machine: self.cluster.machine_for_partition(p),
                flops: inp.len() as f64 * flops_per_record,
                input_bytes: (inp.len() * self.record_bytes) as u64,
                output_bytes: (outp.len() * out_bytes) as u64,
            })
            .collect();
        self.cluster.run_stage(&tasks)?;
        Ok(out)
    }

    /// Keep records satisfying the predicate (Spark `filter`).
    pub fn filter(&self, f: impl Fn(&T) -> bool + Sync) -> Result<Dist<'c, T>>
    where
        T: Clone + Send + Sync,
    {
        self.stage(1.0, 1.0)?;
        let parts = self
            .cluster
            .executor()
            .run(&self.parts, |_, part| part.iter().filter(|t| f(t)).cloned().collect());
        Ok(Dist {
            cluster: self.cluster,
            parts,
            record_bytes: self.record_bytes,
            persisted_bytes: None,
        })
    }

    /// Whole-partition transformation (Spark `mapPartitionsWithIndex`).
    /// `f` receives the partition index and its records; `flops` receives
    /// the record count and returns the task's compute cost.
    pub fn map_partitions<U>(
        &self,
        flops: impl Fn(usize) -> f64,
        f: impl Fn(usize, &[T]) -> Vec<U> + Sync,
    ) -> Result<Dist<'c, U>>
    where
        T: Sync,
        U: Send,
    {
        let out_bytes = std::mem::size_of::<U>().max(1);
        let parts: Vec<Vec<U>> =
            self.cluster.executor().run(&self.parts, |p, part| f(p, part));
        let tasks: Vec<TaskCost> = self
            .parts
            .iter()
            .zip(&parts)
            .enumerate()
            .map(|(p, (inp, outp))| TaskCost {
                machine: self.cluster.machine_for_partition(p),
                flops: flops(inp.len()),
                input_bytes: (inp.len() * self.record_bytes) as u64,
                output_bytes: (outp.len() * out_bytes) as u64,
            })
            .collect();
        self.cluster.run_stage(&tasks)?;
        Ok(Dist { cluster: self.cluster, parts, record_bytes: out_bytes, persisted_bytes: None })
    }

    /// Concatenate two collections partition-wise (Spark `union`): no
    /// shuffle, partitions of `other` append after `self`'s.
    pub fn union(&self, other: &Dist<'c, T>) -> Result<Dist<'c, T>>
    where
        T: Clone,
    {
        if !std::ptr::eq(self.cluster, other.cluster) {
            return Err(DataflowError::Invalid("union across different clusters".into()));
        }
        let mut parts: Vec<Vec<T>> = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        let out = Dist {
            cluster: self.cluster,
            parts,
            record_bytes: self.record_bytes.max(other.record_bytes),
            persisted_bytes: None,
        };
        out.stage(0.0, 1.0)?;
        Ok(out)
    }

    /// Deterministic Bernoulli sampling (Spark `sample` without
    /// replacement): keeps each record with probability `fraction`, using
    /// a per-partition seeded RNG stream (stable across runs).
    pub fn sample(&self, fraction: f64, seed: u64) -> Result<Dist<'c, T>>
    where
        T: Clone,
    {
        let fraction = fraction.clamp(0.0, 1.0);
        self.stage(1.0, fraction)?;
        let parts = self
            .parts
            .iter()
            .enumerate()
            .map(|(p, part)| {
                // Simple splitmix64 stream; no rand dependency in the
                // engine.
                let mut state = seed ^ (p as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    (z ^ (z >> 31)) as f64 / u64::MAX as f64
                };
                part.iter().filter(|_| next() < fraction).cloned().collect()
            })
            .collect();
        Ok(Dist {
            cluster: self.cluster,
            parts,
            record_bytes: self.record_bytes,
            persisted_bytes: None,
        })
    }

    /// Gather every record to the driver (Spark `collect`), paying network
    /// for all bytes.
    pub fn collect(&self) -> Result<Vec<T>>
    where
        T: Clone,
    {
        let per_machine: Vec<u64> = {
            let mut v = vec![0u64; self.cluster.machines()];
            for (p, part) in self.parts.iter().enumerate() {
                v[self.cluster.machine_for_partition(p)] +=
                    (part.len() * self.record_bytes) as u64;
            }
            v
        };
        self.cluster.collect_charge(&per_machine)?;
        Ok(self.parts.iter().flatten().cloned().collect())
    }
}

/// Deterministic record hash for shuffle routing (FNV-1a; stable across
/// runs and platforms, unlike `RandomState`).
fn route<K: std::hash::Hash>(key: &K, parts: usize) -> usize {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
        }
    }
    let mut h = Fnv(0xcbf29ce484222325);
    std::hash::Hash::hash(key, &mut h);
    (std::hash::Hasher::finish(&h) % parts as u64) as usize
}

impl<'c, K, V> Dist<'c, (K, V)>
where
    K: Clone + Ord + std::hash::Hash + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Hash-partition records by key into `num_parts` partitions,
    /// accounting cross-machine movement. The building block of
    /// `reduceByKey` / `groupByKey` / `join`.
    fn shuffle_by_key(&self, num_parts: usize) -> Result<Vec<Vec<(K, V)>>> {
        let m = self.cluster.machines();
        let mut sent = vec![0u64; m];
        let mut received = vec![0u64; m];
        let mut out: Vec<Vec<(K, V)>> = (0..num_parts).map(|_| Vec::new()).collect();
        for (p, part) in self.parts.iter().enumerate() {
            let src = self.cluster.machine_for_partition(p);
            for (k, v) in part {
                let dst_part = route(k, num_parts);
                let dst = self.cluster.machine_for_partition(dst_part);
                if dst != src {
                    let b = self.record_bytes as u64;
                    sent[src] += b;
                    received[dst] += b;
                }
                out[dst_part].push((k.clone(), v.clone()));
            }
        }
        self.cluster.shuffle(&sent, &received)?;
        Ok(out)
    }

    /// Spark `reduceByKey`: merge values sharing a key with `merge`,
    /// after map-side combining (which is why this is cheaper than
    /// `group_by_key` — the paper's §III-F replaces `groupByKey` with
    /// `reduceByKey`/`combineByKey` for exactly this reason).
    pub fn reduce_by_key(
        &self,
        num_parts: usize,
        flops_per_record: f64,
        merge: impl Fn(&mut V, V) + Sync,
    ) -> Result<Dist<'c, (K, V)>> {
        // Map-side combine: shrink each partition before the shuffle.
        // Partitions combine independently (BTreeMap keeps each one's
        // key order), so this runs on the executor.
        let combined: Vec<Vec<(K, V)>> =
            self.cluster.executor().run(&self.parts, |_, part| {
                let mut acc: BTreeMap<K, V> = BTreeMap::new();
                for (k, v) in part {
                    match acc.get_mut(k) {
                        Some(cur) => merge(cur, v.clone()),
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
                acc.into_iter().collect()
            });
        let pre = Dist {
            cluster: self.cluster,
            parts: combined,
            record_bytes: self.record_bytes,
            persisted_bytes: None,
        };
        pre.stage(flops_per_record, 1.0)?;
        let shuffled = pre.shuffle_by_key(num_parts)?;
        // Reduce side: again one independent task per partition.
        let mut shuffled = shuffled;
        let mut parts: Vec<Vec<(K, V)>> =
            (0..shuffled.len()).map(|_| Vec::new()).collect();
        self.cluster.executor().run_mut(&mut shuffled, |_, part| {
            let mut acc: BTreeMap<K, V> = BTreeMap::new();
            for (k, v) in part.drain(..) {
                match acc.get_mut(&k) {
                    Some(cur) => merge(cur, v),
                    None => {
                        acc.insert(k, v);
                    }
                }
            }
            part.extend(acc);
        });
        for (dst, src) in parts.iter_mut().zip(shuffled) {
            *dst = src;
        }
        let out = Dist {
            cluster: self.cluster,
            parts,
            record_bytes: self.record_bytes,
            persisted_bytes: None,
        };
        out.stage(flops_per_record, 1.0)?;
        Ok(out)
    }

    /// Transform values only, keeping keys and partitioning (Spark
    /// `mapValues`).
    pub fn map_values<W>(
        &self,
        flops_per_record: f64,
        f: impl Fn(&V) -> W + Sync,
    ) -> Result<Dist<'c, (K, W)>>
    where
        W: Send,
    {
        self.map(flops_per_record, |(k, v)| (k.clone(), f(v)))
    }

    /// Count records per key (Spark `countByKey`, but distributed rather
    /// than driver-side).
    pub fn count_by_key(&self, num_parts: usize) -> Result<Dist<'c, (K, u64)>> {
        self.map_values(1.0, |_| 1u64)?
            .reduce_by_key(num_parts, 1.0, |a, b| *a += b)
    }

    /// Keep one record per key (Spark `distinct` over keys): later
    /// duplicates are dropped after a shuffle.
    pub fn distinct_by_key(&self, num_parts: usize) -> Result<Dist<'c, (K, V)>> {
        self.reduce_by_key(num_parts, 1.0, |_keep, _dup| {})
    }

    /// Spark `groupByKey`: collect all values per key (no map-side
    /// combine, so the full data volume crosses the network).
    pub fn group_by_key(&self, num_parts: usize) -> Result<Dist<'c, (K, Vec<V>)>> {
        self.stage(1.0, 1.0)?;
        let shuffled = self.shuffle_by_key(num_parts)?;
        let parts: Vec<Vec<(K, Vec<V>)>> = shuffled
            .into_iter()
            .map(|part| {
                let mut acc: BTreeMap<K, Vec<V>> = BTreeMap::new();
                for (k, v) in part {
                    acc.entry(k).or_default().push(v);
                }
                acc.into_iter().collect()
            })
            .collect();
        let out = Dist {
            cluster: self.cluster,
            parts,
            record_bytes: self.record_bytes,
            persisted_bytes: None,
        };
        out.stage(1.0, 1.0)?;
        Ok(out)
    }

    /// Zero-shuffle inner join of two collections that are *already*
    /// co-partitioned (same partition count, same key routing). §III-F:
    /// "we keep the same partitions when applying join to two RDDs" —
    /// this is that optimization; [`Dist::join`] is the general path.
    ///
    /// Returns an error if the partition counts differ; key placement is
    /// the caller's contract (both sides must have been produced by
    /// key-routing ops with the same partition count).
    pub fn join_aligned<W>(&self, other: &Dist<'c, (K, W)>) -> Result<Dist<'c, (K, (V, W))>>
    where
        W: Clone,
    {
        if !std::ptr::eq(self.cluster, other.cluster) {
            return Err(DataflowError::Invalid("join across different clusters".into()));
        }
        if self.num_parts() != other.num_parts() {
            return Err(DataflowError::Invalid(format!(
                "join_aligned needs equal partition counts, got {} and {}",
                self.num_parts(),
                other.num_parts()
            )));
        }
        let parts: Vec<Vec<(K, (V, W))>> = self
            .parts
            .iter()
            .zip(&other.parts)
            .map(|(l, r)| {
                let mut rmap: BTreeMap<&K, Vec<&W>> = BTreeMap::new();
                for (k, w) in r {
                    rmap.entry(k).or_default().push(w);
                }
                let mut out = Vec::new();
                for (k, v) in l {
                    if let Some(ws) = rmap.get(k) {
                        for &w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                out
            })
            .collect();
        let record_bytes = std::mem::size_of::<(K, (V, W))>().max(1);
        let out = Dist { cluster: self.cluster, parts, record_bytes, persisted_bytes: None };
        out.stage(1.0, 1.0)?;
        Ok(out)
    }

    /// Spark inner `join`: co-partition both sides by key, emit every
    /// `(K, (V, W))` combination.
    pub fn join<W>(&self, other: &Dist<'c, (K, W)>, num_parts: usize) -> Result<Dist<'c, (K, (V, W))>>
    where
        W: Clone + Send + Sync,
    {
        if !std::ptr::eq(self.cluster, other.cluster) {
            return Err(DataflowError::Invalid(
                "join across different clusters".into(),
            ));
        }
        let left = self.shuffle_by_key(num_parts)?;
        let right = other.shuffle_by_key(num_parts)?;
        let parts: Vec<Vec<(K, (V, W))>> = left
            .into_iter()
            .zip(right)
            .map(|(l, r)| {
                let mut rmap: BTreeMap<K, Vec<W>> = BTreeMap::new();
                for (k, w) in r {
                    rmap.entry(k).or_default().push(w);
                }
                let mut out = Vec::new();
                for (k, v) in l {
                    if let Some(ws) = rmap.get(&k) {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                out
            })
            .collect();
        let record_bytes = std::mem::size_of::<(K, (V, W))>().max(1);
        let out = Dist { cluster: self.cluster, parts, record_bytes, persisted_bytes: None };
        out.stage(1.0, 1.0)?;
        Ok(out)
    }
}

impl<T> Drop for Dist<'_, T> {
    fn drop(&mut self) {
        self.unpersist();
    }
}

/// A broadcast variable: one logical value replicated (and charged) to
/// every machine. Cheap to clone; contents are shared.
#[derive(Debug, Clone)]
pub struct Broadcast<B> {
    value: Arc<B>,
}

impl<B> Broadcast<B> {
    /// Replicate `value` to all machines, charging `bytes` of network per
    /// machine (§III-F broadcasts eigenvalue arrays and `R×R`
    /// self-products this way).
    pub fn new(cluster: &Cluster, value: B, bytes: u64) -> Result<Broadcast<B>> {
        cluster.broadcast_charge(bytes)?;
        Ok(Broadcast { value: Arc::new(value) })
    }

    /// Access the broadcast value.
    pub fn get(&self) -> &B {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::test(3).with_time_budget(None))
    }

    #[test]
    fn from_vec_round_robin() {
        let c = cluster();
        let d = Dist::from_vec(&c, (0..10).collect(), 4).unwrap();
        assert_eq!(d.num_parts(), 4);
        assert_eq!(d.len(), 10);
        assert_eq!(d.parts()[0], vec![0, 4, 8]);
        assert_eq!(d.parts()[3], vec![3, 7]);
    }

    #[test]
    fn from_vec_zero_parts_errors() {
        let c = cluster();
        let err = match Dist::from_vec(&c, vec![1, 2, 3], 0) {
            Err(e) => e,
            Ok(_) => panic!("zero partitions must be rejected"),
        };
        match err {
            DataflowError::Invalid(msg) => {
                assert!(msg.contains("partition"), "message names the problem: {msg}")
            }
            other => panic!("expected Invalid error, got {other:?}"),
        }
    }

    #[test]
    fn threaded_cluster_matches_sequential_ops() {
        use crate::exec::ExecMode;
        let seq = Cluster::new(ClusterConfig::test(3).with_exec(ExecMode::Sequential));
        let par = Cluster::new(ClusterConfig::test(3).with_exec(ExecMode::Threads(4)));
        for c in [&seq, &par] {
            let d = Dist::from_vec(c, (0..100i64).collect(), 7).unwrap();
            let mapped = d.map(1.0, |x| x * 3 + 1).unwrap();
            let kv = mapped.map(1.0, |&x| (x % 5, x as f64)).unwrap();
            let summed = kv.reduce_by_key(4, 1.0, |a, b| *a += b).unwrap();
            let mut got = summed.collect().unwrap();
            got.sort_by_key(|&(k, _)| k);
            let mut want = std::collections::BTreeMap::new();
            for x in 0..100i64 {
                let y = x * 3 + 1;
                *want.entry(y % 5).or_insert(0.0) += y as f64;
            }
            assert_eq!(got, want.into_iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_preserves_partitioning() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![1, 2, 3, 4], 2).unwrap();
        let doubled = d.map(1.0, |x| x * 2).unwrap();
        assert_eq!(doubled.parts()[0], vec![2, 6]);
        assert_eq!(doubled.parts()[1], vec![4, 8]);
    }

    #[test]
    fn flat_map_expands() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![1, 3], 1).unwrap();
        let out = d.flat_map(1.0, |&x| vec![x; x as usize]).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn filter_keeps_matching() {
        let c = cluster();
        let d = Dist::from_vec(&c, (0..10).collect(), 3).unwrap();
        let evens = d.filter(|x| x % 2 == 0).unwrap();
        let mut v = evens.collect().unwrap();
        v.sort();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = cluster();
        let d = Dist::from_vec(
            &c,
            vec![("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)],
            3,
        )
        .unwrap();
        let r = d.reduce_by_key(2, 1.0, |acc, v| *acc += v).unwrap();
        let mut out = r.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![("a", 4), ("b", 6), ("c", 5)]);
    }

    #[test]
    fn group_by_key_collects_values() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![(1, 10), (2, 20), (1, 30)], 2).unwrap();
        let g = d.group_by_key(2).unwrap();
        let mut out = g.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![(1, vec![10, 30]), (2, vec![20])]);
    }

    #[test]
    fn join_inner_semantics() {
        let c = cluster();
        let left = Dist::from_vec(&c, vec![(1, "l1"), (2, "l2"), (3, "l3")], 2).unwrap();
        let right = Dist::from_vec(&c, vec![(1, 100), (1, 101), (3, 300)], 2).unwrap();
        let j = left.join(&right, 2).unwrap();
        let mut out = j.collect().unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![(1, ("l1", 100)), (1, ("l1", 101)), (3, ("l3", 300))]
        );
    }

    #[test]
    fn union_concatenates_without_shuffle() {
        let c = cluster();
        let a = Dist::from_vec(&c, vec![1, 2, 3], 2).unwrap();
        let b = Dist::from_vec(&c, vec![4, 5], 1).unwrap();
        let before = c.metrics().shuffled_bytes;
        let u = a.union(&b).unwrap();
        assert_eq!(c.metrics().shuffled_bytes, before);
        assert_eq!(u.num_parts(), 3);
        let mut v = u.collect().unwrap();
        v.sort();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let c = cluster();
        let d = Dist::from_vec(&c, (0..10_000u32).collect(), 4).unwrap();
        let s1 = d.sample(0.3, 7).unwrap();
        let s2 = d.sample(0.3, 7).unwrap();
        assert_eq!(s1.collect().unwrap(), s2.collect().unwrap());
        let n = s1.len() as f64;
        assert!((2_500.0..3_500.0).contains(&n), "kept {n} of 10k at 30%");
        assert_eq!(d.sample(0.0, 1).unwrap().len(), 0);
        assert_eq!(d.sample(1.0, 1).unwrap().len(), 10_000);
    }

    #[test]
    fn map_values_and_count_by_key() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![("a", 2), ("b", 3), ("a", 4)], 2).unwrap();
        let doubled = d.map_values(1.0, |v| v * 2).unwrap();
        let mut v = doubled.collect().unwrap();
        v.sort();
        assert_eq!(v, vec![("a", 4), ("a", 8), ("b", 6)]);
        let mut counts = d.count_by_key(2).unwrap().collect().unwrap();
        counts.sort();
        assert_eq!(counts, vec![("a", 2), ("b", 1)]);
    }

    #[test]
    fn distinct_by_key_keeps_one_per_key() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![(1, "x"), (2, "y"), (1, "z")], 2).unwrap();
        let mut v = d.distinct_by_key(2).unwrap().collect().unwrap();
        v.sort_by_key(|&(k, _)| k);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].0, 1);
        assert_eq!(v[1].0, 2);
    }

    #[test]
    fn join_aligned_matches_join_without_shuffle() {
        let c = cluster();
        let left = Dist::from_vec(&c, vec![(1u64, "a"), (2, "b"), (3, "c")], 2).unwrap();
        let right = Dist::from_vec(&c, vec![(1u64, 10), (3, 30), (3, 31)], 2).unwrap();
        // Co-partition both through the same reduce (identity merge).
        let l2 = left.reduce_by_key(3, 1.0, |_, _| {}).unwrap();
        let r2 = right
            .map(1.0, |&(k, v)| (k, vec![v]))
            .unwrap()
            .reduce_by_key(3, 1.0, |a, b| a.extend(b))
            .unwrap();
        let before = c.metrics().shuffled_bytes;
        let joined = l2.join_aligned(&r2).unwrap();
        assert_eq!(c.metrics().shuffled_bytes, before, "aligned join must not shuffle");
        let mut out: Vec<(u64, Vec<i32>)> = joined
            .collect()
            .unwrap()
            .into_iter()
            .map(|(k, (_, mut w))| {
                // Value order within a key follows partition order; sort
                // for a stable comparison.
                w.sort();
                (k, w)
            })
            .collect();
        out.sort();
        assert_eq!(out, vec![(1, vec![10]), (3, vec![30, 31])]);
    }

    #[test]
    fn join_aligned_rejects_mismatched_partitions() {
        let c = cluster();
        let left = Dist::from_vec(&c, vec![(1u64, 1u64)], 2).unwrap();
        let right = Dist::from_vec(&c, vec![(1u64, 1u64)], 3).unwrap();
        assert!(matches!(
            left.join_aligned(&right),
            Err(DataflowError::Invalid(_))
        ));
    }

    #[test]
    fn shuffle_counts_cross_machine_traffic_only() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![(1u64, 1u64); 100], 3).unwrap();
        let before = c.metrics().shuffled_bytes;
        // All records share a key, so all land on one partition; records
        // already on that machine shouldn't count.
        let _ = d.reduce_by_key(3, 1.0, |a, b| *a += b).unwrap();
        let after = c.metrics().shuffled_bytes;
        // Map-side combine shrinks each of 3 partitions to one record, so
        // at most 2 records cross machines.
        assert!(after - before <= 2 * d.record_bytes() as u64);
    }

    #[test]
    fn persist_reserves_and_drop_releases() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(10_000));
        {
            let mut d = Dist::from_vec(&c, vec![0u64; 100], 1).unwrap();
            d.persist().unwrap();
            assert!(c.metrics().peak_resident >= 800);
            // Reserving almost everything else should now fail.
            assert!(c.reserve(0, 9_500).is_err());
        }
        // Dropped: memory released.
        assert!(c.reserve(0, 9_500).is_ok());
    }

    #[test]
    fn collect_charges_network() {
        let c = cluster();
        let d = Dist::from_vec(&c, vec![1u8; 1000], 2).unwrap();
        let t0 = c.now();
        let v = d.collect().unwrap();
        assert_eq!(v.len(), 1000);
        assert!(c.now() > t0);
    }

    #[test]
    fn broadcast_provides_value_and_charges() {
        let c = cluster();
        let b = Broadcast::new(&c, vec![1.0f64; 10], 80).unwrap();
        assert_eq!(b.get().len(), 10);
        assert_eq!(c.metrics().broadcast_bytes, 240);
    }

    #[test]
    fn deterministic_routing() {
        // Same keys must route identically across calls (FNV is stable).
        assert_eq!(route(&42u64, 7), route(&42u64, 7));
        assert_eq!(route(&"key", 5), route(&"key", 5));
    }

    #[test]
    fn oom_propagates_from_stage() {
        let c = Cluster::new(ClusterConfig::test(1).with_memory(64));
        let err = Dist::from_vec(&c, vec![0u64; 1000], 1).unwrap_err();
        assert!(matches!(err, DataflowError::OutOfMemory { .. }));
    }
}
