//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is part of [`crate::ClusterConfig`]: a list of fault
//! events pinned to global *stage numbers* (the cluster's `stages`
//! counter, which every driver advances deterministically), so a plan
//! replays bit-identically for a fixed workload. Three fault kinds are
//! modeled, mirroring what Spark's lineage story has to survive:
//!
//! * [`Fault::MachineCrash`] — an executor is lost: its resident memory
//!   is zeroed and the in-flight operation returns
//!   [`crate::DataflowError::MachineLost`]. The failed attempt's virtual
//!   time has already been charged (the work ran, then was lost), and
//!   the driver must re-reserve and recompute or restore state.
//! * [`Fault::TransientTask`] — a task fails and is re-executed up to
//!   [`FaultPlan::max_task_retries`] times. Retries re-run the victim
//!   machine's work serially, stretching the stage; if the failure count
//!   exceeds the retry budget the stage returns
//!   [`crate::DataflowError::TaskFailed`] (after charging all attempts),
//!   matching Spark aborting a job when a task exhausts its retries.
//! * [`Fault::Straggler`] — a machine runs slower by a factor for a
//!   window of stages. Unlike [`crate::ClusterConfig::straggler`] (a
//!   permanent hardware property), this models transient contention and
//!   its slowdown is attributed to `Metrics::recovery_seconds`.
//!
//! An empty plan (the default) leaves every charge bit-identical to a
//! cluster built without fault support — the golden traces pin this.
//!
//! Machine indices in a plan are clamped to the cluster size rather than
//! rejected: a plan is injected configuration (like the cost model), not
//! runtime input, and clamping keeps randomly generated plans valid for
//! any cluster. Events whose `at_stage` never arrives simply never fire.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected fault event. Stage numbers refer to the cluster's global
/// stage counter (`Metrics::stages`); an event with `at_stage = k` fires
/// the first time the counter is at `k` or beyond (stages skipped because
/// the driver shuffled instead still trigger the event on the next
/// opportunity), and fires exactly once (stragglers: once per window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Lose `machine` at stage `at_stage`: resident bytes vanish and the
    /// operation fails with [`crate::DataflowError::MachineLost`].
    MachineCrash {
        /// Global stage number at which the machine dies.
        at_stage: u64,
        /// Victim machine (clamped to the cluster size).
        machine: usize,
    },
    /// A task on `machine` fails `failures` times at stage `at_stage`
    /// before (possibly) succeeding on a retry.
    TransientTask {
        /// Global stage number at which the task starts flaking.
        at_stage: u64,
        /// Victim machine (clamped to the cluster size).
        machine: usize,
        /// Number of failed attempts before one would succeed. When this
        /// exceeds [`FaultPlan::max_task_retries`] the stage aborts with
        /// [`crate::DataflowError::TaskFailed`].
        failures: u32,
    },
    /// `machine` runs `factor`× slower for `stages` consecutive stages
    /// starting at `at_stage`.
    Straggler {
        /// First global stage number of the slow window.
        at_stage: u64,
        /// Victim machine (clamped to the cluster size).
        machine: usize,
        /// Compute-time multiplier (≥ 1 to slow down).
        factor: f64,
        /// Length of the slow window, in stages.
        stages: u64,
    },
}

/// A deterministic schedule of fault events plus the cluster's retry
/// policy. The default plan is empty: no faults, bit-identical accounting
/// to a fault-free cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fault events, fired in schedule order as their stages arrive.
    pub events: Vec<Fault>,
    /// How many times a failed task is retried before the stage aborts
    /// with [`crate::DataflowError::TaskFailed`]. Mirrors Spark's
    /// `spark.task.maxFailures - 1`. Default: 3.
    pub max_task_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults are ever injected.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new(), max_task_retries: 3 }
    }

    /// A plan with the given events and the default retry budget.
    pub fn new(events: Vec<Fault>) -> Self {
        FaultPlan { events, max_task_retries: 3 }
    }

    /// Override the per-task retry budget.
    pub fn with_max_task_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = retries;
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a random plan from a seed: one to three events of mixed
    /// kinds over the first `horizon_stages` stages of a run on
    /// `machines` machines. Same seed ⇒ same plan, always — this is the
    /// entry point the fault-injection proptests drive.
    pub fn seeded(seed: u64, machines: usize, horizon_stages: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let machines = machines.max(1);
        let horizon = horizon_stages.max(1);
        let n = rng.random_range(1..=3usize);
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let at_stage = rng.random_range(0..horizon);
            let machine = rng.random_range(0..machines);
            events.push(match rng.random_range(0..3u32) {
                0 => Fault::MachineCrash { at_stage, machine },
                1 => Fault::TransientTask {
                    at_stage,
                    machine,
                    failures: rng.random_range(1..=5u32),
                },
                _ => Fault::Straggler {
                    at_stage,
                    machine,
                    factor: 2.0 + 8.0 * rng.random::<f64>(),
                    stages: rng.random_range(1..=5u64),
                },
            });
        }
        FaultPlan::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert_eq!(FaultPlan::default().max_task_retries, 3);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 4, 100);
        let b = FaultPlan::seeded(42, 4, 100);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 4, 100);
        assert_ne!(a, c, "different seeds should differ (for this pair)");
    }

    #[test]
    fn seeded_events_respect_bounds() {
        for seed in 0..50 {
            let p = FaultPlan::seeded(seed, 3, 20);
            assert!((1..=3).contains(&p.events.len()));
            for e in &p.events {
                match *e {
                    Fault::MachineCrash { at_stage, machine } => {
                        assert!(at_stage < 20 && machine < 3);
                    }
                    Fault::TransientTask { at_stage, machine, failures } => {
                        assert!(at_stage < 20 && machine < 3);
                        assert!((1..=5).contains(&failures));
                    }
                    Fault::Straggler { at_stage, machine, factor, stages } => {
                        assert!(at_stage < 20 && machine < 3);
                        assert!((2.0..10.0).contains(&factor));
                        assert!((1..=5).contains(&stages));
                    }
                }
            }
        }
    }
}
