//! Cluster configuration and the calibrated cost model.

use crate::exec::ExecMode;
use crate::fault::FaultPlan;

/// Execution substrate being modelled (formerly `ExecMode`; renamed when
/// [`ExecMode`] became the *host* thread-backend selector — the two are
/// orthogonal axes: what the simulation charges vs how fast the host
/// actually computes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// In-memory iteration à la Spark: persisted datasets stay resident,
    /// stages exchange data over the network only.
    Spark,
    /// Hadoop-style MapReduce: every stage reads its inputs from disk and
    /// writes its outputs back to disk; persisting buys nothing. Used for
    /// the SCouT and FlexiFact baselines.
    MapReduce,
}

/// Per-resource cost constants translating accounted work into virtual
/// seconds. Defaults approximate commodity 2010s hardware (the paper's
/// Xeon E5410 cluster): ~1 GFLOP/s effective per core on sparse irregular
/// code, ~1 Gb/s network, ~100 MB/s disk. `distenc-eval`'s calibration can
/// refit `seconds_per_flop` against measured small-scale runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per floating-point operation (per core).
    pub seconds_per_flop: f64,
    /// Seconds per byte crossing a machine boundary.
    pub seconds_per_net_byte: f64,
    /// Seconds per byte read from or written to disk (MapReduce mode).
    pub seconds_per_disk_byte: f64,
    /// Fixed per-stage scheduling/launch overhead in seconds (Spark).
    pub stage_latency: f64,
    /// Fixed per-job launch overhead in MapReduce mode. Hadoop job
    /// start-up (JVM spawn, scheduling, HDFS metadata) is notoriously
    /// orders of magnitude above a Spark stage — the root cause of the
    /// convergence-time gap in Figs. 6b/7b.
    pub mr_job_latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Sparse, irregular tensor kernels run far below peak FLOPs on
            // the paper's Xeon E5410 era hardware: ~250 MFLOP/s effective.
            seconds_per_flop: 4.0e-9,
            seconds_per_net_byte: 3.0e-9,
            seconds_per_disk_byte: 1.0e-8,
            stage_latency: 0.001,
            mr_job_latency: 2.0,
        }
    }
}

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker machines (accounting domains).
    pub machines: usize,
    /// Cores per machine: compute on one machine is divided by this.
    pub cores_per_machine: usize,
    /// Memory capacity per machine, in bytes.
    pub mem_per_machine: u64,
    /// Spark or MapReduce semantics.
    pub mode: Platform,
    /// Host execution backend for the real computation behind stages
    /// (sequential or thread pool). Does not affect results — only wall
    /// time; see [`ExecMode`].
    pub exec: ExecMode,
    /// Cost constants.
    pub cost: CostModel,
    /// Optional virtual-time budget; exceeding it fails stages with
    /// [`crate::DataflowError::OutOfTime`].
    pub time_budget: Option<f64>,
    /// Optional straggler: `(machine, slowdown)` multiplies that machine's
    /// compute time (failure-injection testing).
    pub straggler: Option<(usize, f64)>,
    /// Deterministic fault schedule (crashes, transient task failures,
    /// straggler windows). Empty by default — a fault-free cluster's
    /// accounting is bit-identical with or without the fault machinery.
    pub faults: FaultPlan,
}

impl ClusterConfig {
    /// The paper's cluster (§IV-A): 9 executors × 8 cores, 12 GB each,
    /// Spark, with the experiments' 8-hour cutoff.
    pub fn paper_spark() -> Self {
        ClusterConfig {
            machines: 9,
            cores_per_machine: 8,
            mem_per_machine: 12 * (1 << 30),
            mode: Platform::Spark,
            exec: ExecMode::default(),
            cost: CostModel::default(),
            time_budget: Some(8.0 * 3600.0),
            straggler: None,
            faults: FaultPlan::none(),
        }
    }

    /// The same hardware driven as a MapReduce cluster (SCouT, FlexiFact).
    pub fn paper_mapreduce() -> Self {
        ClusterConfig { mode: Platform::MapReduce, ..Self::paper_spark() }
    }

    /// A single 16 GB machine (the TFAI baseline's environment — one
    /// cluster node, §IV-A).
    pub fn single_machine() -> Self {
        ClusterConfig {
            machines: 1,
            cores_per_machine: 4,
            mem_per_machine: 16 * (1 << 30),
            mode: Platform::Spark,
            exec: ExecMode::default(),
            cost: CostModel::default(),
            time_budget: Some(8.0 * 3600.0),
            straggler: None,
            faults: FaultPlan::none(),
        }
    }

    /// Small deterministic test cluster.
    pub fn test(machines: usize) -> Self {
        ClusterConfig {
            machines,
            cores_per_machine: 2,
            mem_per_machine: 1 << 30,
            mode: Platform::Spark,
            exec: ExecMode::default(),
            cost: CostModel::default(),
            time_budget: None,
            straggler: None,
            faults: FaultPlan::none(),
        }
    }

    /// Builder-style override of the machine count (Fig. 4 sweeps 1→8).
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Builder-style override of the execution mode.
    pub fn with_mode(mut self, mode: Platform) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style override of the host execution backend.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Builder-style override of per-machine memory.
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.mem_per_machine = bytes;
        self
    }

    /// Builder-style override of the time budget.
    pub fn with_time_budget(mut self, seconds: Option<f64>) -> Self {
        self.time_budget = seconds;
        self
    }

    /// Builder-style override of the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_section_iv_a() {
        let spark = ClusterConfig::paper_spark();
        assert_eq!(spark.machines, 9);
        assert_eq!(spark.cores_per_machine, 8);
        assert_eq!(spark.mem_per_machine, 12 * (1 << 30));
        assert_eq!(spark.mode, Platform::Spark);
        let mr = ClusterConfig::paper_mapreduce();
        assert_eq!(mr.mode, Platform::MapReduce);
        assert_eq!(mr.machines, 9);
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterConfig::paper_spark()
            .with_machines(4)
            .with_memory(1024)
            .with_time_budget(None)
            .with_exec(ExecMode::Threads(4));
        assert_eq!(c.machines, 4);
        assert_eq!(c.mem_per_machine, 1024);
        assert_eq!(c.time_budget, None);
        assert_eq!(c.exec, ExecMode::Threads(4));
    }
}
