//! Synthetic query traces for load-testing the serving stack.
//!
//! Real recommendation traffic is heavily skewed — a few users/items
//! absorb most queries — so the generator draws every index from a Zipf
//! distribution. The skew is what makes the top-K LRU cache earn its
//! keep: popular fixed-index tuples recur, and the replay reports a
//! meaningful hit rate instead of the zero a uniform trace would give.
//!
//! For SLO benchmarking, [`open_loop_trace`] adds *timing* to a trace:
//! each request carries a submit offset drawn from a Poisson process at a
//! configured QPS, plus a Zipf-assigned tenant. Open-loop (arrivals do
//! not wait for completions) is the honest way to measure a serving
//! system: a closed loop self-throttles under overload and hides the
//! latency cliff that real traffic — which does not slow down because the
//! server is slow — runs straight into.

use crate::queue::Request;
use crate::topk::TopKQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Samples `0..n` with probability `P(i) ∝ 1/(i+1)^s` via inverse-CDF
/// binary search (build O(n), sample O(log n)).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `0..n` with skew exponent `s` (`s = 0` is
    /// uniform; larger `s` concentrates mass on small indices).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs a non-empty domain");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Domain size `n`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff the domain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// Shape of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total requests to generate.
    pub queries: usize,
    /// Fraction of requests that are point lookups.
    pub point_frac: f64,
    /// Fraction of requests that are batch lookups.
    pub batch_frac: f64,
    /// Entries per batch request.
    pub batch_size: usize,
    /// `k` for top-K requests (the remainder after point/batch fractions).
    pub k: usize,
    /// Optional per-query scan budget attached to top-K requests.
    pub topk_budget: Option<Duration>,
    /// Zipf skew exponent shared by every mode.
    pub zipf_exponent: f64,
    /// RNG seed — the same seed always yields the same trace.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            queries: 100_000,
            point_frac: 0.6,
            batch_frac: 0.2,
            batch_size: 32,
            k: 10,
            topk_budget: None,
            zipf_exponent: 1.1,
            seed: 42,
        }
    }
}

/// Generate a deterministic Zipf-skewed request trace against `shape`.
pub fn synth_trace(shape: &[usize], cfg: &TraceConfig) -> Vec<Request> {
    assert!(!shape.is_empty(), "trace needs a non-empty shape");
    assert!(
        cfg.point_frac >= 0.0 && cfg.batch_frac >= 0.0
            && cfg.point_frac + cfg.batch_frac <= 1.0,
        "query-type fractions must be non-negative and sum to at most 1"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let samplers: Vec<ZipfSampler> = shape
        .iter()
        .map(|&d| ZipfSampler::new(d, cfg.zipf_exponent))
        .collect();
    let draw = |rng: &mut StdRng| -> Vec<usize> {
        samplers.iter().map(|s| s.sample(rng)).collect()
    };
    let mut trace = Vec::with_capacity(cfg.queries);
    for _ in 0..cfg.queries {
        let u: f64 = rng.random();
        let req = if u < cfg.point_frac {
            Request::Point { index: draw(&mut rng) }
        } else if u < cfg.point_frac + cfg.batch_frac {
            let indices = (0..cfg.batch_size.max(1)).map(|_| draw(&mut rng)).collect();
            Request::Batch { indices }
        } else {
            let mode = rng.random_range(0..shape.len());
            Request::TopK {
                query: TopKQuery { mode, at: draw(&mut rng), k: cfg.k },
                budget: cfg.topk_budget,
            }
        };
        trace.push(req);
    }
    trace
}

/// Shape of an open-loop (offered-load) trace.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in queries per second (Poisson arrivals).
    pub qps: f64,
    /// Number of tenants to spread requests across.
    pub tenants: usize,
    /// Zipf skew of the tenant assignment (`0` = uniform; larger values
    /// concentrate traffic on tenant 0, the "hot" tenant).
    pub tenant_zipf: f64,
    /// The request mix (reuses the replay trace generator).
    pub trace: TraceConfig,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig { qps: 50_000.0, tenants: 1, tenant_zipf: 1.0, trace: TraceConfig::default() }
    }
}

/// One request of an open-loop trace: what to submit, when, and for whom.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    /// Submit time, as an offset from the start of the run.
    pub offset: Duration,
    /// Tenant lane the request belongs to (`0..tenants`).
    pub tenant: usize,
    /// The request itself.
    pub request: Request,
}

/// Generate a deterministic open-loop trace: `cfg.trace.queries` requests
/// with exponential inter-arrival gaps at `cfg.qps` (a Poisson arrival
/// process) and Zipf-skewed tenant assignment. The request mix is exactly
/// [`synth_trace`]`(shape, &cfg.trace)`; the timing/tenant stream uses an
/// independent RNG derived from the same seed, so changing the QPS never
/// changes which requests are generated.
pub fn open_loop_trace(shape: &[usize], cfg: &OpenLoopConfig) -> Vec<TimedRequest> {
    assert!(cfg.qps.is_finite() && cfg.qps > 0.0, "qps must be positive and finite");
    assert!(cfg.tenants >= 1, "need at least one tenant");
    let requests = synth_trace(shape, &cfg.trace);
    let mut rng = StdRng::seed_from_u64(cfg.trace.seed ^ 0x9e37_79b9_7f4a_7c15);
    let tenant_sampler = ZipfSampler::new(cfg.tenants, cfg.tenant_zipf);
    let mut clock = 0.0f64; // seconds
    requests
        .into_iter()
        .map(|request| {
            let u: f64 = rng.random();
            // Inverse-CDF exponential gap; (1 - u) keeps ln's argument in
            // (0, 1] for u in [0, 1).
            clock += -(1.0 - u).ln() / cfg.qps;
            TimedRequest {
                offset: Duration::from_secs_f64(clock),
                tenant: tenant_sampler.sample(&mut rng),
                request,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_trace_paces_at_the_configured_qps() {
        let shape = [50, 30, 7];
        let cfg = OpenLoopConfig {
            qps: 10_000.0,
            tenants: 3,
            tenant_zipf: 1.0,
            trace: TraceConfig { queries: 20_000, ..Default::default() },
        };
        let a = open_loop_trace(&shape, &cfg);
        let b = open_loop_trace(&shape, &cfg);
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.len(), 20_000);
        // Offsets are non-decreasing; mean arrival rate is within 5% of
        // the configured QPS (20k draws tightly concentrate the mean).
        for w in a.windows(2) {
            assert!(w[0].offset <= w[1].offset);
        }
        let span = a.last().unwrap().offset.as_secs_f64();
        let rate = a.len() as f64 / span;
        assert!((rate / cfg.qps - 1.0).abs() < 0.05, "measured {rate:.0} qps");
        // Every tenant appears; tenant 0 is the hottest under Zipf.
        let mut counts = [0usize; 3];
        for t in &a {
            counts[t.tenant] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
        // The request mix is untouched by the timing overlay.
        let plain = synth_trace(&shape, &cfg.trace);
        assert!(a.iter().map(|t| &t.request).eq(plain.iter()));
    }

    #[test]
    fn zipf_is_skewed_toward_small_indices() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        let draws = 10_000;
        for _ in 0..draws {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 1% of indices should absorb far more than 1% of draws.
        assert!(head > draws / 5, "only {head}/{draws} in the head");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn trace_is_deterministic_and_in_bounds() {
        let shape = [50, 30, 7];
        let cfg = TraceConfig { queries: 500, ..Default::default() };
        let a = synth_trace(&shape, &cfg);
        let b = synth_trace(&shape, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let mut kinds = [0usize; 3];
        for req in &a {
            match req {
                Request::Point { index } => {
                    kinds[0] += 1;
                    for (i, d) in index.iter().zip(&shape) {
                        assert!(i < d);
                    }
                }
                Request::Batch { indices } => {
                    kinds[1] += 1;
                    assert_eq!(indices.len(), cfg.batch_size);
                }
                Request::TopK { query, .. } => {
                    kinds[2] += 1;
                    assert!(query.mode < 3);
                    assert_eq!(query.k, cfg.k);
                }
            }
        }
        // All three query types must appear at the default fractions.
        assert!(kinds.iter().all(|&k| k > 0), "kinds {kinds:?}");
    }
}
