//! A small, exact LRU cache for repeated top-K queries.
//!
//! Implemented as a slab of doubly-linked nodes plus a `HashMap` from key
//! to slab slot, so `get`/`put` are O(1) and eviction is the true
//! least-recently-used entry (no sampling). Capacity 0 disables the cache
//! entirely: `put` is a no-op and `get` always misses.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map from `K` to `V`.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Configured maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(&self.nodes[slot].value)
    }

    /// Insert or overwrite `key`, evicting the least-recently-used entry
    /// if the cache is full. No-op when capacity is 0.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.nodes[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        let slot = if self.map.len() >= self.capacity {
            // Recycle the LRU slot in place.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.nodes[victim].key = key.clone();
            self.nodes[victim].value = value;
            victim
        } else if let Some(slot) = self.free.pop() {
            self.nodes[slot].key = key.clone();
            self.nodes[slot].value = value;
            slot
        } else {
            self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
            self.nodes.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Drop every entry for which `keep` returns `false`, preserving the
    /// recency order of the survivors. Used to flush entries made stale
    /// by an external event (e.g. a model publish invalidating every
    /// cached result from older generations).
    pub fn retain<F: FnMut(&K, &V) -> bool>(&mut self, mut keep: F) {
        let victims: Vec<usize> = self
            .map
            .values()
            .copied()
            .filter(|&slot| !keep(&self.nodes[slot].key, &self.nodes[slot].value))
            .collect();
        for slot in victims {
            self.unlink(slot);
            let key = self.nodes[slot].key.clone();
            self.map.remove(&key);
            self.free.push(slot);
        }
    }

    /// Drop every entry, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.free.clear();
        self.free.extend(0..self.nodes.len());
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("c", 3); // evicts "a"
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_promotes_to_front() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "b" is now LRU
        c.put("c", 3); // evicts "b"
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
    }

    #[test]
    fn put_overwrites_and_promotes() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // overwrite, "b" becomes LRU
        c.put("c", 3); // evicts "b"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_then_reuse() {
        let mut c = LruCache::new(3);
        c.put(1, "x");
        c.put(2, "y");
        c.clear();
        assert!(c.is_empty());
        c.put(3, "z");
        assert_eq!(c.get(&3), Some(&"z"));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn retain_drops_matching_entries_and_reuses_slots() {
        let mut c = LruCache::new(4);
        c.put((1u64, "a"), 10);
        c.put((1u64, "b"), 11);
        c.put((2u64, "a"), 20);
        c.retain(|k, _| k.0 >= 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&(1u64, "a")), None);
        assert_eq!(c.get(&(1u64, "b")), None);
        assert_eq!(c.get(&(2u64, "a")), Some(&20));
        // Freed slots are recyclable and the LRU chain stays sound.
        c.put((2u64, "b"), 21);
        c.put((2u64, "c"), 22);
        c.put((2u64, "d"), 23);
        c.put((2u64, "e"), 24); // evicts the LRU entry, (2, "a")
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(&(2u64, "a")), None);
        assert_eq!(c.get(&(2u64, "e")), Some(&24));
    }

    #[test]
    fn retain_everything_is_a_noop() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.retain(|_, _| true);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&1));
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000usize {
            c.put(i % 13, i);
            assert!(c.len() <= 8);
        }
        // The 8 most recently inserted distinct keys must be present.
        let mut found = 0;
        for k in 0..13usize {
            if c.get(&k).is_some() {
                found += 1;
            }
        }
        assert_eq!(found, 8);
    }
}
