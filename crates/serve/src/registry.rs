//! Multi-model registry: one process serving several completed tensors.
//!
//! A [`ModelRegistry`] maps tenant names to independent [`LiveEngine`]s —
//! each tenant gets its own sharded [`FactorStore`], its own hot-swap
//! generation stream, its own top-K cache, and its own per-tenant
//! [`ServeMetrics`]. On top the registry keeps a *fleet* metrics block
//! for cross-tenant accounting (queue depth, sheds, end-to-end latency),
//! which is what a [`crate::ServeQueue`] running in registry mode counts
//! into.
//!
//! The tenant map is read-mostly: queries resolve tenants through a
//! shared read lock, registration takes the write lock briefly.
//! Publishing a new model for a tenant does **not** lock the map at all —
//! it clones the tenant's `Arc<LiveEngine>` under the read lock and then
//! runs the build + atomic swap entirely on that engine.
//!
//! [`FactorStore`]: crate::store::FactorStore

use crate::engine::EngineConfig;
use crate::live::LiveEngine;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::{Result, ServeError};
use distenc_tensor::KruskalTensor;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A keyed collection of independently hot-swappable serving engines.
#[derive(Debug)]
pub struct ModelRegistry {
    tenants: RwLock<BTreeMap<Arc<str>, Arc<LiveEngine>>>,
    /// Fleet-level counters (queue accounting across all tenants).
    metrics: Arc<ServeMetrics>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            tenants: RwLock::new(BTreeMap::new()),
            metrics: Arc::new(ServeMetrics::new()),
        }
    }

    /// Register `name` serving `model` (as its generation 1). Each tenant
    /// may carry its own [`EngineConfig`] — e.g. an approximate top-K
    /// tier for latency-sensitive tenants, exact for the rest. Errors
    /// with [`ServeError::AlreadyRegistered`] on a duplicate name.
    pub fn register(&self, name: &str, model: &KruskalTensor, cfg: EngineConfig) -> Result<()> {
        let engine = Arc::new(LiveEngine::new(model, cfg)?);
        let mut map = self.tenants.write().expect("registry lock");
        if map.contains_key(name) {
            return Err(ServeError::AlreadyRegistered(name.to_string()));
        }
        map.insert(Arc::from(name), engine);
        Ok(())
    }

    /// Hot-publish a new model generation for `name` (see
    /// [`LiveEngine::publish`]). The registry lock is held only to clone
    /// the tenant handle; the build and swap run outside it.
    pub fn publish(&self, name: &str, model: &KruskalTensor) -> Result<u64> {
        let engine = self
            .engine(name)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))?;
        engine.publish(model)
    }

    /// The tenant's live engine, if registered.
    pub fn engine(&self, name: &str) -> Option<Arc<LiveEngine>> {
        self.tenants.read().expect("registry lock").get(name).cloned()
    }

    /// True iff `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.read().expect("registry lock").contains_key(name)
    }

    /// Registered tenant names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tenants.read().expect("registry lock").keys().map(|k| k.to_string()).collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock").len()
    }

    /// True iff no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.read().expect("registry lock").is_empty()
    }

    /// Fleet-level counters (what a registry-backed queue counts into).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Clonable handle to the fleet counters.
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Snapshot of the fleet counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Per-tenant metric snapshots, sorted by tenant name.
    pub fn tenant_snapshots(&self) -> Vec<(String, MetricsSnapshot)> {
        self.tenants
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, engine)| (name.to_string(), engine.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopKQuery;

    #[test]
    fn tenants_serve_their_own_models() {
        let reg = ModelRegistry::new();
        let ma = KruskalTensor::random(&[20, 10, 5], 3, 1);
        let mb = KruskalTensor::random(&[8, 8], 2, 2);
        reg.register("alpha", &ma, EngineConfig::default()).unwrap();
        reg.register("beta", &mb, EngineConfig::default()).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["alpha".to_string(), "beta".to_string()]);

        let a = reg.engine("alpha").unwrap().point(&[3, 4, 2]).unwrap();
        assert_eq!(a.value.to_bits(), ma.eval(&[3, 4, 2]).to_bits());
        let b = reg.engine("beta").unwrap().point(&[7, 1]).unwrap();
        assert_eq!(b.value.to_bits(), mb.eval(&[7, 1]).to_bits());
        assert!(reg.engine("gamma").is_none());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = ModelRegistry::new();
        let m = KruskalTensor::random(&[5, 5], 2, 0);
        reg.register("a", &m, EngineConfig::default()).unwrap();
        assert!(matches!(
            reg.register("a", &m, EngineConfig::default()),
            Err(ServeError::AlreadyRegistered(_))
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn publish_swaps_one_tenant_only() {
        let reg = ModelRegistry::new();
        let ma1 = KruskalTensor::random(&[20, 10], 2, 3);
        let mb = KruskalTensor::random(&[20, 10], 2, 4);
        reg.register("a", &ma1, EngineConfig::default()).unwrap();
        reg.register("b", &mb, EngineConfig::default()).unwrap();

        let ma2 = KruskalTensor::random(&[20, 10], 2, 5);
        assert_eq!(reg.publish("a", &ma2).unwrap(), 2);
        let a = reg.engine("a").unwrap().point(&[1, 2]).unwrap();
        assert_eq!(a.generation, 2);
        assert_eq!(a.value.to_bits(), ma2.eval(&[1, 2]).to_bits());
        let b = reg.engine("b").unwrap().point(&[1, 2]).unwrap();
        assert_eq!(b.generation, 1);
        assert_eq!(b.value.to_bits(), mb.eval(&[1, 2]).to_bits());

        assert!(matches!(
            reg.publish("missing", &ma2),
            Err(ServeError::UnknownTenant(_))
        ));
    }

    #[test]
    fn per_tenant_configs_and_snapshots() {
        let reg = ModelRegistry::new();
        let m = KruskalTensor::random(&[200, 10, 10], 3, 6);
        reg.register("exact", &m, EngineConfig::default()).unwrap();
        reg.register(
            "approx",
            &m,
            EngineConfig {
                // A cap below k: the heap can never fill, so the norm
                // bound can never end the scan first — the cap always
                // fires and the result is deterministically approximate.
                approx_topk: Some(crate::engine::ApproxTopK::ScanLimit(16)),
                recall_check_every: 1,
                ..Default::default()
            },
        )
        .unwrap();

        let q = TopKQuery { mode: 0, at: vec![0, 2, 3], k: 20 };
        let e = reg.engine("exact").unwrap().topk(&q, None).unwrap();
        assert!(!e.value.approx);
        let a = reg.engine("approx").unwrap().topk(&q, None).unwrap();
        assert!(a.value.approx);

        let snaps = reg.tenant_snapshots();
        assert_eq!(snaps.len(), 2);
        let approx_snap = &snaps.iter().find(|(n, _)| n == "approx").unwrap().1;
        assert_eq!(approx_snap.approx_topk_queries, 1);
        assert_eq!(approx_snap.recall_checks, 1);
        let exact_snap = &snaps.iter().find(|(n, _)| n == "exact").unwrap().1;
        assert_eq!(exact_snap.approx_topk_queries, 0);
    }
}
