//! # distenc-serve — model serving for completed tensors
//!
//! The solver's end product is a CP model `[[A⁽¹⁾…A⁽ᴺ⁾]]`; this crate
//! turns that model into a *workload*: an immutable, mode-sharded factor
//! store behind an [`Engine`] answering three query types —
//!
//! * [`Engine::point`] — one completed entry `x̂(i₁,…,i_N)`,
//! * [`Engine::batch`] — many entries in one pass, amortizing factor-row
//!   gathers over a shared rank loop,
//! * [`Engine::topk`] — the best `k` indices along one free mode with all
//!   other modes fixed (recommendation / link-scoring), pruned by
//!   Cauchy–Schwarz norm bounds derived from the same factor-Gram
//!   structure the solver exploits for `UᵀU` (Eqs. 11–13).
//!
//! Around the engine sit the production pieces: a bounded request queue
//! with a configurable batching window ([`ServeQueue`]), per-query
//! deadlines with graceful degradation (top-K returns best-so-far),
//! an LRU cache for repeated top-K queries, and a [`ServeMetrics`]
//! counter block mirroring the accounting style of `dataflow::Metrics`.
//!
//! ```
//! use distenc_serve::{Engine, EngineConfig, TopKQuery};
//! use distenc_tensor::KruskalTensor;
//!
//! let model = KruskalTensor::random(&[100, 50, 10], 4, 7);
//! let engine = Engine::new(&model, EngineConfig::default()).unwrap();
//! let score = engine.point(&[3, 17, 2]).unwrap();
//! assert!((score - model.eval(&[3, 17, 2])).abs() == 0.0);
//! let top = engine
//!     .topk(&TopKQuery { mode: 1, at: vec![3, 0, 2], k: 5 }, None)
//!     .unwrap();
//! assert_eq!(top.items.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod live;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod store;
pub mod topk;
pub mod workload;

pub use cache::LruCache;
pub use engine::{ApproxTopK, Engine, EngineConfig};
pub use live::{LiveEngine, Pinned, Tagged};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use queue::{
    AdmissionControl, QueueConfig, Request, Response, RetryPolicy, ServeQueue, ShedReason, Ticket,
};
pub use registry::ModelRegistry;
pub use store::FactorStore;
pub use topk::{TopKItem, TopKQuery, TopKResult};
pub use workload::{open_loop_trace, synth_trace, OpenLoopConfig, TimedRequest, TraceConfig, ZipfSampler};

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A query index tuple does not match the model's shape.
    BadQuery(String),
    /// An engine/store/queue configuration value is invalid.
    BadConfig(String),
    /// The bounded request queue is at capacity.
    QueueFull {
        /// Configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The queue has shut down and no longer accepts work.
    ShuttingDown,
    /// A tenant name is not present in the model registry.
    UnknownTenant(String),
    /// A tenant name is already present in the model registry.
    AlreadyRegistered(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServeError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "serve queue is shutting down"),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::AlreadyRegistered(name) => {
                write!(f, "tenant {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ServeError>;
