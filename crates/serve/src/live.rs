//! Live model swap: serve one model generation while publishing the next.
//!
//! A [`LiveEngine`] wraps an epoch-versioned [`Engine`] handle in an
//! `arc-swap` cell (vendored shim). Readers resolve the handle **once per
//! query** — every row gather, cache probe, and top-K scan inside that
//! query sees one coherent `(engine, generation)` pair, so a response is
//! always attributable to exactly one model generation even if a publish
//! lands mid-query. Publishing builds the new engine off to the side
//! (sharding is the expensive part) and then swaps the handle with a
//! single atomic store; queries in flight finish on the generation they
//! pinned, new queries see the new model. No reader ever blocks and no
//! read can fail because of a swap.
//!
//! Memory ordering: correctness rests on the cell's Release-store /
//! Acquire-load pair (see the `arc-swap` shim docs for the full
//! argument); the generation tag travels *inside* the swapped value, so
//! it can never be observed torn from its engine. The
//! [`ServeMetrics::publish`] counters are relaxed — they feed reporting,
//! not the swap protocol.

use crate::cache::LruCache;
use crate::engine::{Engine, EngineConfig, SharedTopKCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::topk::{TopKQuery, TopKResult};
use crate::Result;
use arc_swap::ArcSwap;
use distenc_tensor::KruskalTensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A query response tagged with the model generation that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged<T> {
    /// The response payload.
    pub value: T,
    /// The generation of the model that served this query (1-based;
    /// generation 1 is the model the engine was created with).
    pub generation: u64,
}

/// One published model generation: an engine plus its epoch tag, swapped
/// as a unit so the two can never be observed out of sync.
#[derive(Debug)]
struct GenerationSlot {
    engine: Engine,
    generation: u64,
}

/// A hot-swappable serving engine.
///
/// All query methods mirror [`Engine`]'s, returning [`Tagged`] responses.
/// [`LiveEngine::publish`] atomically replaces the served model; the
/// top-K cache starts cold on the new generation (its entries describe
/// the old model), while [`ServeMetrics`] counters continue across
/// generations as one stream.
#[derive(Debug)]
pub struct LiveEngine {
    slot: ArcSwap<GenerationSlot>,
    metrics: Arc<ServeMetrics>,
    cfg: EngineConfig,
    next_generation: AtomicU64,
    /// One top-K cache shared by every generation. Entries are keyed by
    /// the generation that computed them, so a query pinned to an old
    /// slot can still hit its own entries — and can never see a newer
    /// model's. Publishing flushes all pre-publish generations.
    cache: SharedTopKCache,
}

impl LiveEngine {
    /// Start serving `model` as generation 1.
    pub fn new(model: &KruskalTensor, cfg: EngineConfig) -> Result<Self> {
        let metrics = Arc::new(ServeMetrics::new());
        let cache: SharedTopKCache = Arc::new(Mutex::new(LruCache::new(cfg.topk_cache)));
        let mut engine = Engine::with_shared_cache(
            model,
            cfg.clone(),
            Arc::clone(&metrics),
            Arc::clone(&cache),
        )?;
        engine.set_generation(1);
        metrics.publish(1);
        Ok(LiveEngine {
            slot: ArcSwap::new(Arc::new(GenerationSlot { engine, generation: 1 })),
            metrics,
            cfg,
            next_generation: AtomicU64::new(2),
            cache,
        })
    }

    /// Build and atomically publish a new model generation, returning its
    /// tag. Sharding happens before the swap, so the served model is
    /// stale-but-consistent during the build and the cutover itself is
    /// one atomic store. The new model may have any shape/rank (streaming
    /// growth changes both). Top-K cache entries computed by older
    /// generations are flushed — queries already pinned to an old slot
    /// recompute rather than repopulate, so no reader can ever observe a
    /// stale hit after the swap.
    pub fn publish(&self, model: &KruskalTensor) -> Result<u64> {
        // Build first, allocate the generation second: a model that fails
        // to shard must not burn a generation number.
        let mut engine = match Engine::with_shared_cache(
            model,
            self.cfg.clone(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.cache),
        ) {
            Ok(e) => e,
            Err(e) => {
                // Publish-on-success only: a model the engine cannot shard
                // never replaces the serving generation.
                self.metrics.publish_failed();
                return Err(e);
            }
        };
        let generation = self.next_generation.fetch_add(1, Ordering::SeqCst);
        engine.set_generation(generation);
        self.slot.store(Arc::new(GenerationSlot { engine, generation }));
        self.metrics.publish(generation);
        // Flush every pre-publish entry. Readers pinned to an old slot
        // race this benignly: an old-generation entry they re-insert
        // afterwards is still keyed by *their* generation, so new-model
        // queries (keyed by `generation`) can never hit it.
        self.cache.lock().expect("topk cache lock").retain(|k, _| k.0 >= generation);
        Ok(generation)
    }

    /// Run a refresh solve and publish its model — or keep serving the
    /// previous generation if the solve fails.
    ///
    /// This is the serving tier's graceful-degradation contract: the
    /// refresh closure (typically a re-solve over updated observations,
    /// which can die to an injected machine loss, a memory/time budget,
    /// or a numerical failure) runs entirely off the serving path. On
    /// `Ok(model)` the model is built and swapped in atomically, exactly
    /// like [`LiveEngine::publish`]. On `Err` nothing about the serving
    /// state changes — queries continue against the current generation —
    /// and the failure is counted in
    /// [`MetricsSnapshot::models_failed`]. The solve error comes back to
    /// the caller either way so it can retry or alert.
    pub fn refresh_with<E, F>(&self, solve: F) -> std::result::Result<u64, E>
    where
        F: FnOnce() -> std::result::Result<KruskalTensor, E>,
        E: From<crate::ServeError>,
    {
        match solve() {
            Ok(model) => self.publish(&model).map_err(|e| {
                // `publish` already counted the failure.
                E::from(e)
            }),
            Err(e) => {
                self.metrics.publish_failed();
                Err(e)
            }
        }
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.slot.load_full().generation
    }

    /// Shape of the currently served model.
    pub fn shape(&self) -> Vec<usize> {
        self.slot.load_full().engine.shape().to_vec()
    }

    /// Live counters, continuous across generations.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Snapshot the counters for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// One completed entry (see [`Engine::point`]), tagged with the
    /// generation that scored it.
    pub fn point(&self, index: &[usize]) -> Result<Tagged<f64>> {
        let slot = self.slot.load_full();
        let value = slot.engine.point(index)?;
        Ok(Tagged { value, generation: slot.generation })
    }

    /// Batch scoring (see [`Engine::batch`]); the whole batch is served
    /// by one generation.
    pub fn batch<I: AsRef<[usize]>>(&self, indices: &[I]) -> Result<Tagged<Vec<f64>>> {
        let slot = self.slot.load_full();
        let value = slot.engine.batch(indices)?;
        Ok(Tagged { value, generation: slot.generation })
    }

    /// Top-K search (see [`Engine::topk`]); cache and scan both run
    /// against the pinned generation.
    pub fn topk(&self, query: &TopKQuery, budget: Option<Duration>) -> Result<Tagged<TopKResult>> {
        let slot = self.slot.load_full();
        let value = slot.engine.topk(query, budget)?;
        Ok(Tagged { value, generation: slot.generation })
    }

    /// Approximate top-K with an explicit scan cap (see
    /// [`Engine::topk_approx`]), served by one pinned generation.
    pub fn topk_approx(
        &self,
        query: &TopKQuery,
        budget: Option<Duration>,
        scan_limit: usize,
    ) -> Result<Tagged<TopKResult>> {
        let slot = self.slot.load_full();
        let value = slot.engine.topk_approx(query, budget, scan_limit)?;
        Ok(Tagged { value, generation: slot.generation })
    }

    /// Pin the current generation for a run of queries. Unlike the
    /// per-query methods (which pin per call), the returned handle keeps
    /// one `(engine, generation)` pair alive for its whole lifetime — the
    /// queue uses this to serve an entire drained batch from a single
    /// coherent model even if a publish lands mid-batch.
    pub fn pin(&self) -> Pinned {
        Pinned { slot: self.slot.load_full() }
    }
}

/// One pinned model generation (see [`LiveEngine::pin`]). Holding a
/// `Pinned` keeps its generation's engine alive; publishes proceed
/// unblocked and new pins see the new model.
#[derive(Debug)]
pub struct Pinned {
    slot: Arc<GenerationSlot>,
}

impl Pinned {
    /// The pinned engine; every query through it is served by one model.
    pub fn engine(&self) -> &Engine {
        &self.slot.engine
    }

    /// The pinned generation tag.
    pub fn generation(&self) -> u64 {
        self.slot.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_and_tags_generations() {
        let m1 = KruskalTensor::random(&[20, 15, 10], 3, 1);
        let live = LiveEngine::new(&m1, EngineConfig::default()).unwrap();
        let r = live.point(&[3, 4, 5]).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.value.to_bits(), m1.eval(&[3, 4, 5]).to_bits());

        let m2 = KruskalTensor::random(&[20, 15, 10], 3, 2);
        assert_eq!(live.publish(&m2).unwrap(), 2);
        let r = live.point(&[3, 4, 5]).unwrap();
        assert_eq!(r.generation, 2);
        assert_eq!(r.value.to_bits(), m2.eval(&[3, 4, 5]).to_bits());
        assert_eq!(live.generation(), 2);

        let s = live.snapshot();
        assert_eq!(s.models_published, 2);
        assert_eq!(s.serving_generation, 2);
        // Counters are continuous across the swap.
        assert_eq!(s.point_queries, 2);
    }

    #[test]
    fn publish_accepts_grown_models() {
        let m1 = KruskalTensor::random(&[10, 8], 2, 3);
        let live = LiveEngine::new(&m1, EngineConfig::default()).unwrap();
        assert!(live.point(&[10, 0]).is_err(), "out of range on gen 1");
        let m2 = KruskalTensor::random(&[12, 8], 2, 4);
        live.publish(&m2).unwrap();
        assert_eq!(live.shape(), vec![12, 8]);
        let r = live.point(&[10, 0]).unwrap();
        assert_eq!(r.generation, 2);
    }

    #[test]
    fn failed_refresh_keeps_previous_generation_serving() {
        let m1 = KruskalTensor::random(&[20, 15, 10], 3, 7);
        let live = LiveEngine::new(&m1, EngineConfig::default()).unwrap();

        // A refresh whose solve dies: nothing about serving changes.
        let err = live
            .refresh_with(|| Err::<KruskalTensor, crate::ServeError>(crate::ServeError::BadQuery(
                "simulated solve failure".into(),
            )))
            .unwrap_err();
        assert!(matches!(err, crate::ServeError::BadQuery(_)));
        assert_eq!(live.generation(), 1);
        let r = live.point(&[1, 2, 3]).unwrap();
        assert_eq!(r.generation, 1);
        assert_eq!(r.value.to_bits(), m1.eval(&[1, 2, 3]).to_bits());

        // A refresh that succeeds publishes as usual.
        let m2 = KruskalTensor::random(&[20, 15, 10], 3, 8);
        let generation = live
            .refresh_with(|| Ok::<_, crate::ServeError>(m2.clone()))
            .unwrap();
        assert_eq!(generation, 2);
        assert_eq!(live.generation(), 2);

        let s = live.snapshot();
        assert_eq!(s.models_failed, 1);
        assert_eq!(s.models_published, 2);
        assert_eq!(s.serving_generation, 2);
    }

    #[test]
    fn publish_mid_stream_never_serves_stale_topk() {
        // Regression test for generation-unaware caching: a top-K result
        // cached before a publish must never be returned after it.
        let m1 = KruskalTensor::random(&[60, 8, 8], 3, 41);
        let live = LiveEngine::new(&m1, EngineConfig::default()).unwrap();
        let q = TopKQuery { mode: 0, at: vec![0, 3, 5], k: 5 };

        // Warm the cache on generation 1 and confirm it hits.
        let warm = live.topk(&q, None).unwrap();
        assert_eq!(warm.generation, 1);
        let hit = live.topk(&q, None).unwrap();
        assert_eq!(hit.value, warm.value);
        assert_eq!(live.snapshot().cache_hits, 1);

        // A pinned gen-1 handle taken before the publish.
        let pinned = live.pin();
        assert_eq!(pinned.generation(), 1);

        // Publish mid-stream; the same query must be recomputed against
        // the new model, not served from the gen-1 cache entry.
        let m2 = KruskalTensor::random(&[60, 8, 8], 3, 42);
        live.publish(&m2).unwrap();
        let fresh = live.topk(&q, None).unwrap();
        assert_eq!(fresh.generation, 2);
        let s = live.snapshot();
        assert_eq!(s.cache_misses, 2, "post-publish query must miss, not hit stale");
        for item in &fresh.value.items {
            let mut idx = q.at.clone();
            idx[q.mode] = item.index;
            assert_eq!(
                item.score.to_bits(),
                m2.eval(&idx).to_bits(),
                "served score must come from the published model"
            );
        }

        // The old pinned handle recomputes gen-1 results correctly (its
        // cache entries were flushed, its model was not).
        let old = pinned.engine().topk(&q, None).unwrap();
        for item in &old.items {
            let mut idx = q.at.clone();
            idx[q.mode] = item.index;
            assert_eq!(item.score.to_bits(), m1.eval(&idx).to_bits());
        }
    }

    #[test]
    fn topk_cache_does_not_leak_across_generations() {
        let m1 = KruskalTensor::random(&[50, 6, 6], 3, 5);
        let live = LiveEngine::new(&m1, EngineConfig::default()).unwrap();
        let q = TopKQuery { mode: 0, at: vec![0, 2, 3], k: 4 };
        let first = live.topk(&q, None).unwrap();
        let m2 = KruskalTensor::random(&[50, 6, 6], 3, 6);
        live.publish(&m2).unwrap();
        let second = live.topk(&q, None).unwrap();
        assert_eq!(second.generation, 2);
        assert_ne!(first.value.items, second.value.items, "gen-2 top-K must be recomputed");
    }
}
