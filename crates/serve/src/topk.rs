//! Exact top-K search over one free mode with norm-bound pruning.
//!
//! Fix every index but one; the score of candidate `i` along the free
//! mode is `x̂(…, i, …) = Σᵣ a_i[r] · w[r]` where
//! `w[r] = ∏_{n≠mode} A⁽ⁿ⁾[iₙ, r]` is the rank-space weight vector of the
//! fixed indices. By Cauchy–Schwarz, `score(i) ≤ ‖a_i‖·‖w‖`, so scanning
//! candidates in norm-descending order (precomputed by [`FactorStore`])
//! lets the search stop as soon as the bound for the next candidate falls
//! strictly below the current k-th best score — every skipped candidate is
//! provably outside the top K. This is the serving-side payoff of the same
//! Gram/row-norm structure the solver exploits for `UᵀU` (Eqs. 11–13).
//!
//! Scores are computed with the exact multiply ordering of
//! [`KruskalTensor::eval`] (per rank: modes in increasing order), so a
//! returned score is bit-identical to evaluating the completed tensor at
//! that index.
//!
//! [`FactorStore`]: crate::store::FactorStore
//! [`KruskalTensor::eval`]: distenc_tensor::KruskalTensor::eval

use crate::store::FactorStore;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::time::Instant;

/// The floating-point norms and scores are rounded, so the mathematical
/// bound `score ≤ ‖a‖‖w‖` can be violated by a few ulps in computed
/// arithmetic. Inflating the bound by one part in 10⁹ keeps pruning exact
/// at a negligible cost in pruning power.
const BOUND_SAFETY: f64 = 1.0 + 1e-9;

/// A top-K request: the best `k` indices along `mode` with every other
/// mode pinned to `at` (the entry of `at` at position `mode` is ignored).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopKQuery {
    /// The free mode to rank over.
    pub mode: usize,
    /// Full-length index tuple; the `mode` slot is a placeholder.
    pub at: Vec<usize>,
    /// How many results to return (clamped to the mode's length).
    pub k: usize,
}

/// One ranked result: a free-mode index and its completed-tensor score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKItem {
    /// Index along the query's free mode.
    pub index: usize,
    /// Completed-tensor value at that index (bit-exact vs `eval`).
    pub score: f64,
}

/// Result of a top-K search, with pruning/degradation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// Ranked items, best first (ties broken by ascending index).
    pub items: Vec<TopKItem>,
    /// True iff the deadline expired mid-scan and `items` is only the
    /// best-so-far over the candidates scanned before it fired.
    pub degraded: bool,
    /// Candidates exactly scored.
    pub scanned: usize,
    /// Candidates skipped by the norm bound (provably outside the top K).
    pub pruned: usize,
    /// True iff the approximate tier's scan cap ended the scan before the
    /// norm bound proved the result exact. Candidates left unexamined by
    /// the cap are counted neither `scanned` nor `pruned`, so
    /// `scanned + pruned == dim` holds only for exact results.
    pub approx: bool,
}

/// Heap entry ordered "better-first": higher score wins, ties go to the
/// smaller index — the same total order brute force sorting uses, so
/// results match it exactly even with tied scores.
#[derive(Debug, PartialEq)]
struct Cand {
    score: f64,
    index: usize,
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.index.cmp(&self.index))
    }
}

/// Run the pruned scan. Inputs are pre-validated by the engine.
///
/// `scan_limit` is the approximate tier's hook: `Some(n)` caps the scan at
/// `n` exactly-scored candidates. Because candidates arrive in
/// norm-descending order, the first `n` are precisely the rows the
/// Cauchy–Schwarz bound says *can* carry large scores — the cap trades a
/// provably-exact tail for latency while keeping every returned score
/// bit-exact. If the norm bound proves the result exact before the cap
/// fires, the result is exact and `approx` stays false.
pub(crate) fn search(
    store: &FactorStore,
    query: &TopKQuery,
    deadline: Option<Instant>,
    check_every: usize,
    scan_limit: Option<usize>,
) -> TopKResult {
    let r = store.rank();
    let dim = store.shape()[query.mode];
    let k = query.k.min(dim);
    if k == 0 {
        return TopKResult { items: Vec::new(), degraded: false, scanned: 0, pruned: 0, approx: false };
    }

    // pre[r]: running product of the fixed modes *before* the free mode,
    // multiplied in mode order. tail: fixed-mode rows *after* it. Folding
    // a candidate row between them reproduces `eval`'s exact multiply
    // sequence, keeping scores bit-identical to the completed tensor.
    let mut pre = vec![1.0; r];
    for m in 0..query.mode {
        for (p, &v) in pre.iter_mut().zip(store.row(m, query.at[m])) {
            *p *= v;
        }
    }
    let tail: Vec<&[f64]> = (query.mode + 1..store.order())
        .map(|m| store.row(m, query.at[m]))
        .collect();

    // Rank-space weight vector for the pruning bound.
    let mut w = pre.clone();
    for t in &tail {
        for (wv, &v) in w.iter_mut().zip(*t) {
            *wv *= v;
        }
    }
    let w_norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();

    let order = store.by_norm(query.mode);
    let mut heap: BinaryHeap<Reverse<Cand>> = BinaryHeap::with_capacity(k + 1);
    let mut scanned = 0usize;
    let mut pruned = 0usize;
    let mut degraded = false;
    let mut approx = false;

    for (pos, &i) in order.iter().enumerate() {
        if heap.len() == k {
            let bound = store.row_norm(query.mode, i) * w_norm * BOUND_SAFETY;
            // Strict `<`: a candidate whose bound ties the k-th best could
            // still displace it on the index tie-break, so it must be scanned.
            if bound < heap.peek().expect("heap is full").0.score {
                pruned = dim - pos;
                break;
            }
        }
        if let Some(lim) = scan_limit {
            // Checked after the bound: a scan the bound already proved
            // exact is reported exact even under a cap.
            if scanned >= lim {
                approx = true;
                break;
            }
        }
        if let Some(dl) = deadline {
            if scanned > 0 && scanned.is_multiple_of(check_every) && Instant::now() >= dl {
                degraded = true;
                break;
            }
        }
        let row = store.row(query.mode, i);
        let mut score = 0.0;
        for rr in 0..r {
            let mut prod = pre[rr] * row[rr];
            for t in &tail {
                prod *= t[rr];
            }
            score += prod;
        }
        scanned += 1;
        let cand = Cand { score, index: i };
        if heap.len() < k {
            heap.push(Reverse(cand));
        } else if cand > heap.peek().expect("heap is full").0 {
            heap.pop();
            heap.push(Reverse(cand));
        }
    }

    let mut items: Vec<TopKItem> = heap
        .into_iter()
        .map(|Reverse(c)| TopKItem { index: c.index, score: c.score })
        .collect();
    items.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
    TopKResult { items, degraded, scanned, pruned, approx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distenc_tensor::KruskalTensor;

    fn brute_force(model: &KruskalTensor, q: &TopKQuery) -> Vec<TopKItem> {
        let dim = model.shape()[q.mode];
        let mut all: Vec<TopKItem> = (0..dim)
            .map(|i| {
                let mut idx = q.at.clone();
                idx[q.mode] = i;
                TopKItem { index: i, score: model.eval(&idx) }
            })
            .collect();
        all.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        all.truncate(q.k.min(dim));
        all
    }

    #[test]
    fn matches_brute_force_exactly() {
        let model = KruskalTensor::random(&[200, 40, 15], 6, 31);
        let store = FactorStore::new(&model, 64).unwrap();
        for (mode, k) in [(0, 1), (0, 10), (1, 5), (2, 15), (0, 200)] {
            let q = TopKQuery { mode, at: vec![7, 3, 2], k };
            let got = search(&store, &q, None, 128, None);
            let want = brute_force(&model, &q);
            assert!(!got.degraded);
            assert_eq!(got.items, want, "mode {mode} k {k}");
            assert_eq!(got.scanned + got.pruned, model.shape()[mode]);
        }
    }

    #[test]
    fn pruning_actually_skips_candidates() {
        // Uniform [0,1) factors give spread-out row norms, so a small k on
        // a large mode must prune a sizable tail.
        let model = KruskalTensor::random(&[5000, 10, 10], 4, 7);
        let store = FactorStore::new(&model, 512).unwrap();
        let q = TopKQuery { mode: 0, at: vec![0, 4, 4], k: 5 };
        let res = search(&store, &q, None, 128, None);
        assert!(res.pruned > 0, "expected pruning, scanned {}", res.scanned);
        assert_eq!(res.items, brute_force(&model, &q)[..5]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let model = KruskalTensor::random(&[10, 10], 2, 3);
        let store = FactorStore::new(&model, 4).unwrap();
        let none = search(&store, &TopKQuery { mode: 0, at: vec![0, 1], k: 0 }, None, 128, None);
        assert!(none.items.is_empty());
        let all = search(&store, &TopKQuery { mode: 1, at: vec![2, 0], k: 99 }, None, 128, None);
        assert_eq!(all.items.len(), 10);
    }

    #[test]
    fn scan_cap_marks_approx_and_scores_stay_bit_exact() {
        let model = KruskalTensor::random(&[800, 12, 12], 5, 19);
        let store = FactorStore::new(&model, 128).unwrap();
        let q = TopKQuery { mode: 0, at: vec![0, 3, 7], k: 10 };
        let exact = search(&store, &q, None, 128, None);
        assert!(!exact.approx);

        let capped = search(&store, &q, None, 128, Some(40));
        assert!(capped.approx, "cap of 40 must end the scan early");
        assert_eq!(capped.scanned, 40);
        assert_eq!(capped.pruned, 0, "cap exits are not pruning proofs");
        assert_eq!(capped.items.len(), 10);
        // Every returned score is bit-identical to the completed tensor.
        for item in &capped.items {
            let mut idx = q.at.clone();
            idx[q.mode] = item.index;
            assert_eq!(item.score.to_bits(), model.eval(&idx).to_bits());
        }
        // The capped result is a subset-quality result: its best item can
        // never beat the exact best.
        assert!(capped.items[0].score <= exact.items[0].score);

        // A cap the bound beats: result stays exact under a huge cap.
        let loose = search(&store, &q, None, 128, Some(usize::MAX));
        assert!(!loose.approx);
        assert_eq!(loose.items, exact.items);
    }

    #[test]
    fn expired_deadline_degrades_gracefully() {
        let model = KruskalTensor::random(&[4000, 8, 8], 4, 11);
        let store = FactorStore::new(&model, 512).unwrap();
        let q = TopKQuery { mode: 0, at: vec![0, 2, 3], k: 50 };
        // A deadline already in the past: the scan still covers at least one
        // check window before noticing, so the result is a valid prefix.
        // check_every=16 < k=50 guarantees the deadline check runs before
        // the heap fills, i.e. before bound-pruning could end the scan.
        let res = search(&store, &q, Some(Instant::now()), 16, None);
        assert!(res.degraded);
        assert!(res.scanned >= 16);
        assert_eq!(res.items.len(), res.scanned.min(50));
        assert!(res.items.len() <= 50);
        // Well-formed: sorted best-first.
        for w in res.items.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
